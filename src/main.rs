//! `flowmax` command-line interface.
//!
//! ```text
//! flowmax solve  --graph g.txt --query 0 --budget 20 [--algorithm FT+M]
//!                [--samples 1000] [--seed 42] [--threads 8] [--lanes 8]
//!                [--include-query] [--trace] [--dot out.dot]
//! flowmax stats  --graph g.txt
//! flowmax exact  --graph g.txt --query 0 --budget 5
//! flowmax generate --dataset erdos --vertices 1000 --degree 6 [--seed 42] > g.txt
//! ```
//!
//! Graphs use the `flowmax-graph v1` text format (see `flowmax::graph::io`);
//! `generate` writes one to stdout so the commands compose. Unknown options
//! are rejected (not silently ignored), and `solve` streams per-iteration
//! selection steps with `--trace`.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

use flowmax::core::{exact_max_flow, Algorithm, CiEngine, SelectionStep, Session};
use flowmax::datasets::{
    CollaborationConfig, ErdosConfig, PartitionedConfig, PreferentialConfig, RoadConfig,
    SocialCircleConfig, WsnConfig,
};
use flowmax::graph::{io as gio, EdgeSubset, GraphStats, ProbabilisticGraph, VertexId};

struct Args {
    values: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `--name value` pairs and bare `--name` flags against a
    /// command's allowlists. Anything not listed is an error — a typo like
    /// `--bugdet 5` must fail loudly instead of silently running with the
    /// default budget.
    fn parse(
        raw: &[String],
        allowed_values: &[&str],
        allowed_flags: &[&str],
    ) -> Result<Args, String> {
        let mut values = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?} (options start with --)"));
            };
            if allowed_flags.contains(&name) {
                flags.push(name.to_string());
            } else if allowed_values.contains(&name) {
                let Some(value) = raw.get(i + 1) else {
                    return Err(format!("option --{name} requires a value"));
                };
                values.push((name.to_string(), value.clone()));
                i += 1;
            } else {
                let mut known: Vec<String> = allowed_values
                    .iter()
                    .chain(allowed_flags)
                    .map(|n| format!("--{n}"))
                    .collect();
                known.sort();
                return Err(format!(
                    "unknown option --{name} (expected one of: {})",
                    known.join(", ")
                ));
            }
            i += 1;
        }
        Ok(Args { values, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required option --{name}"))
    }

    fn parse_opt<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v:?}")),
        }
    }

    fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

fn load_graph(path: &str) -> Result<ProbabilisticGraph, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    gio::read_text(BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let graph = load_graph(args.require("graph")?)?;
    println!("{}", GraphStats::compute(&graph));
    Ok(())
}

fn cmd_solve(args: &Args) -> Result<(), String> {
    let graph = load_graph(args.require("graph")?)?;
    let query = VertexId(args.parse_opt("query", 0u32)?);
    let budget: usize = args.parse_opt("budget", 10)?;
    if budget == 0 {
        return Err("--budget must be at least 1 (k edges to select)".to_string());
    }
    let algorithm: Algorithm = args
        .get("algorithm")
        .unwrap_or("FT+M")
        .parse()
        .map_err(|e: flowmax::core::CoreError| e.to_string())?;
    // `--threads 0` is clamped to 1 with the shared one-time warning — the
    // same story as `FLOWMAX_THREADS` and `Session::with_threads`.
    let threads: usize = args.parse_opt("threads", flowmax::sampling::default_threads())?;
    let threads = flowmax::sampling::clamp_threads(threads, "--threads");
    // Sampling lane width in 64-world words per BFS block (1, 4, or 8 —
    // 64/256/512 worlds). Results are bit-identical at every width; an
    // unsupported width clamps to 1 with the shared one-time warning, the
    // same story as `FLOWMAX_LANES` and `Session::with_lane_words`.
    let lane_words: usize = args.parse_opt("lanes", flowmax::sampling::default_lane_words())?;
    let lane_words = flowmax::sampling::clamp_lane_words(lane_words, "--lanes");
    // §6.3 race engine for the CI variants: "batched" (default) drives
    // rounds as multi-candidate jobs on the parallel sampler; "scalar" is
    // the pinned reference race. Case-insensitive.
    let ci_engine = match args
        .get("ci-race")
        .unwrap_or("batched")
        .to_ascii_lowercase()
        .as_str()
    {
        "batched" => CiEngine::BatchedRace,
        "scalar" => CiEngine::ScalarReference,
        other => return Err(format!("unknown --ci-race {other:?} (batched, scalar)")),
    };

    // Worker threads shard the batched sampling engine; results are
    // identical at any thread count, only wall-clock time changes.
    let session = Session::new(&graph)
        .with_threads(threads)
        .with_lane_words(lane_words)
        .with_seed(args.parse_opt("seed", 42u64)?);
    let builder = session
        .query(query)
        .map_err(|e| e.to_string())?
        .algorithm(algorithm)
        .budget(budget)
        .samples(args.parse_opt("samples", 1000u32)?)
        .include_query(args.has_flag("include-query"))
        .ci_engine(ci_engine);
    let result = if args.has_flag("trace") {
        // Stream each committed edge as the greedy loop runs — the anytime
        // view: the first k lines are the answer for budget k.
        builder.run_with(&mut |step: &SelectionStep| {
            let (a, b) = graph.endpoints(step.edge);
            println!(
                "iter {:>3}: edge {} ({} -- {})  gain {:+.4}  flow {:.4}  pool {}",
                step.iteration, step.edge, a, b, step.gain, step.flow, step.pool
            );
        })
    } else {
        builder.run()
    }
    .map_err(|e| e.to_string())?;
    println!(
        "algorithm={} budget={} selected={} flow={:.6} time={:.3?}",
        algorithm.name(),
        budget,
        result.selected.len(),
        result.flow,
        result.elapsed
    );
    for &e in &result.selected {
        let (a, b) = graph.endpoints(e);
        println!("  edge {e}: {a} -- {b} (p={})", graph.probability(e));
    }
    if let Some(dot_path) = args.get("dot") {
        let subset = EdgeSubset::from_edges(graph.edge_count(), result.selected.iter().copied());
        let f = File::create(dot_path).map_err(|e| format!("cannot create {dot_path}: {e}"))?;
        let mut w = BufWriter::new(f);
        gio::write_dot(&graph, Some(&subset), &mut w)
            .and_then(|_| w.flush())
            .map_err(|e| format!("cannot write {dot_path}: {e}"))?;
        println!("wrote DOT with highlighted selection to {dot_path}");
    }
    Ok(())
}

fn cmd_exact(args: &Args) -> Result<(), String> {
    let graph = load_graph(args.require("graph")?)?;
    let query = VertexId(args.parse_opt("query", 0u32)?);
    let budget: usize = args.parse_opt("budget", 5)?;
    let sol = exact_max_flow(&graph, query, budget, args.has_flag("include-query"))
        .map_err(|e| e.to_string())?;
    println!(
        "exact optimum: flow={:.6} edges={:?} ({} subsets evaluated)",
        sol.flow,
        sol.edges.iter().map(|e| e.0).collect::<Vec<_>>(),
        sol.subsets_evaluated
    );
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let dataset = args.require("dataset")?;
    let seed: u64 = args.parse_opt("seed", 42)?;
    let vertices: usize = args.parse_opt("vertices", 1000)?;
    let graph = match dataset {
        "erdos" => ErdosConfig::paper(vertices, args.parse_opt("degree", 6.0)?).generate(seed),
        "partitioned" => {
            PartitionedConfig::paper(vertices, args.parse_opt("degree", 6)?).generate(seed)
        }
        "wsn" => {
            WsnConfig::paper(vertices, args.parse_opt("epsilon", 0.07)?)
                .generate(seed)
                .graph
        }
        "road" => {
            let side = (vertices as f64).sqrt().ceil() as usize;
            RoadConfig::paper(side.max(2), side.max(2))
                .generate(seed)
                .graph
        }
        "social-circle" => SocialCircleConfig::paper().generate(seed),
        "collaboration" => CollaborationConfig::paper_scaled(vertices).generate(seed),
        "preferential" => PreferentialConfig::paper_scaled(vertices).generate(seed),
        other => {
            return Err(format!(
                "unknown dataset {other:?} (erdos, partitioned, wsn, road, social-circle, \
                 collaboration, preferential)"
            ))
        }
    };
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    gio::write_text(&graph, &mut out)
        .and_then(|_| out.flush())
        .map_err(|e| e.to_string())?;
    Ok(())
}

const USAGE: &str = "\
flowmax — budgeted information-flow maximization in probabilistic graphs

USAGE:
  flowmax solve    --graph <file> [--query N] [--budget K] [--algorithm NAME]
                   [--samples N] [--seed N] [--threads N] [--lanes 1|4|8]
                   [--include-query] [--ci-race batched|scalar] [--trace]
                   [--dot <file>]
  flowmax exact    --graph <file> [--query N] [--budget K] [--include-query]
  flowmax stats    --graph <file>
  flowmax generate --dataset <name> [--vertices N] [--degree D] [--seed N]

Algorithms: Naive, Dijkstra, FT, FT+M, FT+M+CI, FT+M+DS, FT+M+CI+DS
Datasets:   erdos, partitioned, wsn, road, social-circle, collaboration, preferential
";

/// Per-command option allowlists: `(value options, flag options)`.
fn allowed_options(command: &str) -> Option<(&'static [&'static str], &'static [&'static str])> {
    match command {
        "solve" => Some((
            &[
                "graph",
                "query",
                "budget",
                "algorithm",
                "samples",
                "seed",
                "threads",
                "lanes",
                "ci-race",
                "dot",
            ],
            &["include-query", "trace"],
        )),
        "exact" => Some((&["graph", "query", "budget"], &["include-query"])),
        "stats" => Some((&["graph"], &[])),
        "generate" => Some((&["dataset", "seed", "vertices", "degree", "epsilon"], &[])),
        _ => None,
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().cloned() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        cmd => match allowed_options(cmd) {
            None => Err(format!("unknown command {cmd:?}\n{USAGE}")),
            Some((values, flags)) => {
                Args::parse(&raw[1..], values, flags).and_then(|args| match cmd {
                    "solve" => cmd_solve(&args),
                    "exact" => cmd_exact(&args),
                    "stats" => cmd_stats(&args),
                    "generate" => cmd_generate(&args),
                    _ => unreachable!("allowed_options covers exactly the commands"),
                })
            }
        },
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}
