//! # flowmax
//!
//! A from-scratch Rust reproduction of
//!
//! > C. Frey, A. Züfle, T. Emrich, M. Renz —
//! > *"Efficient Information Flow Maximization in Probabilistic Graphs"*,
//! > IEEE TKDE 30(5), 2018 (ICDE'18 extended abstract).
//!
//! Given an uncertain graph (independent edge-existence probabilities,
//! per-vertex information weights), a query vertex `Q` and an edge budget
//! `k`, `flowmax` selects the `k`-edge subgraph that (near-)maximizes the
//! expected total weight of vertices connected to `Q` — using the paper's
//! **F-tree** decomposition to compute flow analytically on tree-like parts
//! and by component-local Monte-Carlo sampling on cyclic parts.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`graph`] — probabilistic-graph substrate (possible worlds, exact
//!   enumeration, biconnected components, spanning trees);
//! * [`sampling`] — Monte-Carlo estimators and confidence intervals;
//! * [`datasets`] — every workload of the paper's evaluation (§7.1);
//! * [`core`] — the F-tree, the greedy selection with M/CI/DS heuristics,
//!   and the Naive/Dijkstra baselines.
//!
//! ## Quick start
//!
//! A [`core::Session`] owns the per-graph state (worker configuration,
//! seeds, the shared evaluator, per-graph caches) and serves any number of
//! queries
//! through a typed builder:
//!
//! ```
//! use flowmax::prelude::*;
//!
//! // Build a small uncertain graph.
//! let mut b = GraphBuilder::new();
//! let q = b.add_vertex(Weight::ZERO);
//! let a = b.add_vertex(Weight::new(5.0).unwrap());
//! let c = b.add_vertex(Weight::new(3.0).unwrap());
//! b.add_edge(q, a, Probability::new(0.8).unwrap()).unwrap();
//! b.add_edge(a, c, Probability::new(0.5).unwrap()).unwrap();
//! b.add_edge(q, c, Probability::new(0.4).unwrap()).unwrap();
//! let graph = b.build();
//!
//! // Select the best 2 edges for query q with the FT+M algorithm.
//! let session = Session::new(&graph).with_seed(42);
//! let run = session.query(q)?.algorithm(Algorithm::FtM).budget(2).run()?;
//! assert_eq!(run.selected.len(), 2);
//! assert!(run.flow > 4.0);
//! // One run answers every budget ≤ 2 (the anytime property).
//! assert!(run.flow_at(1) <= run.flow + 1e-9);
//! # Ok::<(), flowmax::core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use flowmax_core as core;
pub use flowmax_datasets as datasets;
pub use flowmax_graph as graph;
pub use flowmax_sampling as sampling;

/// One-stop imports for typical users.
pub mod prelude {
    pub use flowmax_core::{
        evaluate_selection, exact_max_flow, greedy_select, Algorithm, EstimatorConfig, FTree,
        FlowServer, GreedyConfig, QueryBuilder, QueryParams, QuerySpec, SamplingProvider,
        SelectionObserver, SelectionStep, ServeConfig, ServeEvent, Session, SessionState,
        SolveResult, SolveRun,
    };
    #[allow(deprecated)]
    pub use flowmax_core::{solve, SolverConfig};
    pub use flowmax_datasets::{suggest_query, DatasetSpec};
    pub use flowmax_graph::{
        EdgeId, EdgeSubset, GraphBuilder, ProbabilisticGraph, Probability, VertexId, Weight,
    };
    pub use flowmax_sampling::{ParallelEstimator, SeedSequence};
}
