//! `flowmax-serve` — the long-lived query-serving daemon.
//!
//! A thin line-protocol TCP front-end over [`flowmax::core::FlowServer`]:
//! every serving decision (graph residency, admission control, coalescing,
//! streaming, deterministic replay) lives in the library, so this binary
//! only parses lines and relays events. See `flowmax-serve --help` and the
//! README's "Serving" section for the protocol.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use flowmax::core::{
    Algorithm, FlowServer, QueryParams, ServeConfig, ServeError, ServeEvent, ServeResult,
};
use flowmax::graph::{io as gio, VertexId};

const USAGE: &str = "\
flowmax-serve — long-lived flow-maximization query daemon

USAGE:
    flowmax-serve [OPTIONS]

OPTIONS:
    --port <N>            TCP port to listen on (default 7878; 0 picks an
                          ephemeral port). The daemon prints `LISTENING <port>`
                          on stdout once it accepts connections.
    --threads <N>         Sampling worker threads per executing batch
                          (default: FLOWMAX_THREADS or 1; 0 is clamped to 1
                          with a warning).
    --max-graphs <N>      Graphs kept resident, LRU beyond that (default 4).
    --queue-capacity <N>  Bounded admission queue; a full queue rejects with
                          `ERR OVERLOADED retry_after_ms=<hint>` (default 64).
    --coalesce-max <N>    Queued queries against the same graph coalesced
                          into one batch (default 16).
    --retry-after-ms <N>  Backoff hint attached to overload rejections
                          (default 50).
    --seed <N>            Server-default master seed for queries that don't
                          pin one (default 42).
    --help                Print this help.

PROTOCOL (one command per line):
    LOAD <path>
        Parse a `flowmax-graph v1` text file and make it resident.
        -> OK LOADED <fingerprint> vertices=<n> edges=<m>
    SOLVE <fingerprint> query=<v> budget=<k> [algorithm=<name>]
          [samples=<n>] [seed=<n>] [stream]
        Run one query. With `stream`, one `STEP <iter> <edge> <gain> <flow>`
        line per committed edge arrives while the query runs (anytime
        partial answers), then the final line either way:
        -> OK RESULT flow=<f> algorithm_flow=<f> seed=<n> edges=<e1,e2,...>
    STATS
        -> OK STATS resident=<n> queued=<n> completed=<n> rejected=<n> batches=<n>
    QUIT
        -> OK BYE (closes this connection; the daemon keeps serving)
    SHUTDOWN
        -> OK BYE (stops the whole daemon)

DETERMINISTIC REPLAY:
    A query's result is a pure function of (graph fingerprint, query
    parameters, seed). Replaying the same SOLVE line — any queue state,
    any coalescing, any thread count — returns a bit-identical selection
    and flow.
";

struct Options {
    port: u16,
    config: ServeConfig,
}

fn parse_options(raw: &[String]) -> Result<Options, String> {
    let mut port = 7878u16;
    let mut config = ServeConfig::default();
    let mut i = 0;
    while i < raw.len() {
        let name = raw[i].as_str();
        if name == "--help" {
            return Err(String::new()); // caller prints usage
        }
        let value = raw
            .get(i + 1)
            .ok_or_else(|| format!("option {name} requires a value"))?;
        let bad = |what: &str| format!("invalid value for {what}: {value:?}");
        match name {
            "--port" => port = value.parse().map_err(|_| bad("--port"))?,
            "--threads" => config.threads = value.parse().map_err(|_| bad("--threads"))?,
            "--max-graphs" => {
                config.max_resident_graphs = value.parse().map_err(|_| bad("--max-graphs"))?
            }
            "--queue-capacity" => {
                config.queue_capacity = value.parse().map_err(|_| bad("--queue-capacity"))?
            }
            "--coalesce-max" => {
                config.coalesce_max = value.parse().map_err(|_| bad("--coalesce-max"))?
            }
            "--retry-after-ms" => {
                let ms: u64 = value.parse().map_err(|_| bad("--retry-after-ms"))?;
                config.retry_after = Duration::from_millis(ms);
            }
            "--seed" => config.seed = value.parse().map_err(|_| bad("--seed"))?,
            other => return Err(format!("unknown option {other} (see --help)")),
        }
        i += 2;
    }
    Ok(Options { port, config })
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_options(&raw) {
        Ok(options) => options,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("flowmax-serve: {msg}");
            eprintln!("run `flowmax-serve --help` for usage");
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(("127.0.0.1", options.port)) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("flowmax-serve: cannot bind 127.0.0.1:{}: {e}", options.port);
            return ExitCode::FAILURE;
        }
    };
    let port = listener.local_addr().map(|a| a.port()).unwrap_or(0);
    let server = Arc::new(FlowServer::new(options.config));
    // The scripted-client handshake: clients (and CI) read this line to
    // learn the ephemeral port.
    println!("LISTENING {port}");
    let _ = std::io::stdout().flush();
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let _ = handle_client(stream, &server);
                });
            }
            Err(e) => eprintln!("flowmax-serve: accept failed: {e}"),
        }
    }
    ExitCode::SUCCESS
}

/// Serves one connection until QUIT/SHUTDOWN/EOF. Protocol errors answer
/// with an `ERR` line and keep the connection alive.
fn handle_client(stream: TcpStream, server: &FlowServer) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        let mut tokens = line.split_whitespace();
        let reply_end = match tokens.next() {
            None => continue, // blank line
            Some("QUIT") => {
                writeln!(writer, "OK BYE")?;
                writer.flush()?;
                return Ok(());
            }
            Some("SHUTDOWN") => {
                writeln!(writer, "OK BYE")?;
                writer.flush()?;
                std::process::exit(0);
            }
            Some("LOAD") => cmd_load(tokens.next(), server),
            Some("SOLVE") => cmd_solve(&mut tokens, server, &mut writer)?,
            Some("STATS") => {
                let s = server.stats();
                Ok(format!(
                    "OK STATS resident={} queued={} completed={} rejected={} batches={}",
                    s.resident_graphs, s.queued, s.completed, s.rejected, s.batches
                ))
            }
            Some(other) => Err(format!(
                "unknown command {other:?} (LOAD, SOLVE, STATS, QUIT, SHUTDOWN)"
            )),
        };
        match reply_end {
            Ok(ok) => writeln!(writer, "{ok}")?,
            Err(err) => writeln!(writer, "ERR {err}")?,
        }
        writer.flush()?;
    }
}

fn cmd_load(path: Option<&str>, server: &FlowServer) -> Result<String, String> {
    let path = path.ok_or("LOAD requires a path")?;
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let graph =
        gio::read_text(BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let vertices = graph.vertex_count();
    let edges = graph.edge_count();
    let fingerprint = server.load_graph(graph);
    Ok(format!(
        "OK LOADED {fingerprint:016x} vertices={vertices} edges={edges}"
    ))
}

/// Parses and runs one SOLVE command, writing STEP lines inline when
/// streaming was requested. Returns the final reply line.
fn cmd_solve(
    tokens: &mut std::str::SplitWhitespace<'_>,
    server: &FlowServer,
    writer: &mut impl Write,
) -> std::io::Result<Result<String, String>> {
    let parsed = (|| -> Result<(u64, QueryParams, bool), String> {
        let fp_text = tokens.next().ok_or("SOLVE requires a graph fingerprint")?;
        let fingerprint = u64::from_str_radix(fp_text, 16)
            .map_err(|_| format!("invalid fingerprint {fp_text:?} (16 hex digits)"))?;
        let mut params = QueryParams::new(VertexId(0), 0);
        let mut stream = false;
        let mut saw_query = false;
        for token in tokens {
            if token == "stream" {
                stream = true;
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {token:?}"))?;
            let bad = || format!("invalid value for {key}: {value:?}");
            match key {
                "query" => {
                    params.vertex = VertexId(value.parse().map_err(|_| bad())?);
                    saw_query = true;
                }
                "budget" => params.budget = value.parse().map_err(|_| bad())?,
                "samples" => params.samples = value.parse().map_err(|_| bad())?,
                "seed" => params.seed = Some(value.parse().map_err(|_| bad())?),
                "algorithm" => {
                    params.algorithm = value.parse::<Algorithm>().map_err(|e| e.to_string())?
                }
                other => return Err(format!("unknown SOLVE key {other:?}")),
            }
        }
        if !saw_query {
            return Err("SOLVE requires query=<vertex>".into());
        }
        Ok((fingerprint, params, stream))
    })();
    let (fingerprint, params, stream) = match parsed {
        Ok(parsed) => parsed,
        Err(msg) => return Ok(Err(msg)),
    };
    let ticket = match server.submit(fingerprint, params) {
        Ok(ticket) => ticket,
        Err(ServeError::Overloaded { retry_after }) => {
            return Ok(Err(format!(
                "OVERLOADED retry_after_ms={}",
                retry_after.as_millis()
            )))
        }
        Err(e) => return Ok(Err(e.to_string())),
    };
    loop {
        match ticket.next_event() {
            Some(ServeEvent::Step(step)) => {
                if stream {
                    // f64 Display is shortest-roundtrip, so equal lines
                    // mean bit-equal values — the replay oracle works on
                    // the text protocol itself.
                    writeln!(
                        writer,
                        "STEP {} {} {} {}",
                        step.iteration, step.edge, step.gain, step.flow
                    )?;
                    writer.flush()?;
                }
            }
            Some(ServeEvent::Done(result)) => return Ok(Ok(format_result(&result))),
            Some(ServeEvent::Failed(e)) => return Ok(Err(e.to_string())),
            None => return Ok(Err("server shut down mid-query".into())),
        }
    }
}

fn format_result(result: &ServeResult) -> String {
    let edges: Vec<String> = result.selected.iter().map(|e| e.to_string()).collect();
    format!(
        "OK RESULT flow={} algorithm_flow={} seed={} edges={}",
        result.flow,
        result.algorithm_flow,
        result.params.seed.expect("server resolves the seed"),
        edges.join(",")
    )
}
