//! `flowmax-serve` — the long-lived query-serving daemon.
//!
//! A thin line-protocol TCP front-end over [`flowmax::core::FlowServer`]:
//! every serving decision (graph residency, admission control, coalescing,
//! streaming, deterministic replay, graceful shutdown) lives in the
//! library, so this binary only parses lines and relays events. See
//! `flowmax-serve --help` and the README's "Serving" section for the
//! protocol.
//!
//! Shutdown is orderly, never a silent hang-up: `SHUTDOWN` stops
//! admission, drains the executing batch, fails every admitted-but-
//! unstarted query, and hands every other open connection a terminal
//! `ERR SHUTDOWN server stopping` line before the process exits.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use flowmax::core::{
    Algorithm, CoreError, FlowServer, QueryParams, ServeConfig, ServeError, ServeEvent, ServeResult,
};
use flowmax::graph::{io as gio, VertexId};

const USAGE: &str = "\
flowmax-serve — long-lived flow-maximization query daemon

USAGE:
    flowmax-serve [OPTIONS]

OPTIONS:
    --port <N>            TCP port to listen on (default 7878; 0 picks an
                          ephemeral port). The daemon prints `LISTENING <port>`
                          on stdout once it accepts connections.
    --threads <N>         Sampling worker threads per executing batch
                          (default: FLOWMAX_THREADS or 1; 0 is clamped to 1
                          with a warning).
    --lanes <N>           Sampling lane width in 64-world lane words per BFS
                          block: 1, 4, or 8 (64, 256, or 512 worlds; default:
                          FLOWMAX_LANES or 1; unsupported widths clamp to 1
                          with a warning). Results never depend on this.
    --max-graphs <N>      Graphs kept resident, LRU beyond that (default 4).
    --queue-capacity <N>  Bounded admission queue; a full queue rejects with
                          `ERR OVERLOADED retry_after_ms=<hint>` (default 64).
    --coalesce-max <N>    Queued queries against the same graph coalesced
                          into one batch (default 16).
    --retry-after-ms <N>  Backoff hint attached to overload rejections
                          (default 50).
    --seed <N>            Server-default master seed for queries that don't
                          pin one (default 42).
    --start-paused        Admit queries without executing them until a
                          `RESUME` command arrives — for drain tests and
                          staged rollouts.
    --help                Print this help.

PROTOCOL (one command per line):
    LOAD <path>
        Parse a `flowmax-graph v1` text file and make it resident. The path
        is everything after the first space up to the end of the line, so
        paths containing spaces need no quoting.
        -> OK LOADED <fingerprint> vertices=<n> edges=<m>
    SOLVE <fingerprint> query=<v> budget=<k> [algorithm=<name>]
          [samples=<n>] [seed=<n>] [stream]
        Run one query. With `stream`, one `STEP <iter> <edge> <gain> <flow>`
        line per committed edge arrives while the query runs (anytime
        partial answers), then the final line either way:
        -> OK RESULT flow=<f> algorithm_flow=<f> seed=<n> edges=<e1,e2,...>
    STATS
        -> OK STATS resident=<n> queued=<n> completed=<n> rejected=<n> batches=<n>
    RESUME
        -> OK RESUMED (starts a `--start-paused` dispatcher; idempotent)
    QUIT
        -> OK BYE (closes this connection; the daemon keeps serving)
    SHUTDOWN
        -> OK BYE, then the daemon stops: no new queries are admitted, the
        executing batch drains, admitted-but-unstarted queries fail with
        `ERR SHUTDOWN server stopping`, every other open connection gets
        that same terminal line, and the process exits.
    STATS, RESUME, QUIT, and SHUTDOWN take no arguments; trailing tokens
    are a protocol error (`ERR ...`), not silently ignored.

DETERMINISTIC REPLAY:
    A query's result is a pure function of (graph fingerprint, query
    parameters, seed). Replaying the same SOLVE line — any queue state,
    any coalescing, any thread count, any lane width — returns a
    bit-identical selection and flow.
";

struct Options {
    port: u16,
    config: ServeConfig,
}

fn parse_options(raw: &[String]) -> Result<Options, String> {
    let mut port = 7878u16;
    let mut config = ServeConfig::default();
    let mut i = 0;
    while i < raw.len() {
        let name = raw[i].as_str();
        if name == "--help" {
            return Err(String::new()); // caller prints usage
        }
        if name == "--start-paused" {
            config.start_paused = true;
            i += 1;
            continue;
        }
        let value = raw
            .get(i + 1)
            .ok_or_else(|| format!("option {name} requires a value"))?;
        let bad = |what: &str| format!("invalid value for {what}: {value:?}");
        match name {
            "--port" => port = value.parse().map_err(|_| bad("--port"))?,
            "--threads" => config.threads = value.parse().map_err(|_| bad("--threads"))?,
            "--lanes" => config.lane_words = value.parse().map_err(|_| bad("--lanes"))?,
            "--max-graphs" => {
                config.max_resident_graphs = value.parse().map_err(|_| bad("--max-graphs"))?
            }
            "--queue-capacity" => {
                config.queue_capacity = value.parse().map_err(|_| bad("--queue-capacity"))?
            }
            "--coalesce-max" => {
                config.coalesce_max = value.parse().map_err(|_| bad("--coalesce-max"))?
            }
            "--retry-after-ms" => {
                let ms: u64 = value.parse().map_err(|_| bad("--retry-after-ms"))?;
                config.retry_after = Duration::from_millis(ms);
            }
            "--seed" => config.seed = value.parse().map_err(|_| bad("--seed"))?,
            other => return Err(format!("unknown option {other} (see --help)")),
        }
        i += 2;
    }
    Ok(Options { port, config })
}

/// The daemon's shared state: the serving engine plus everything the
/// graceful shutdown needs to reach every blocked thread — the listening
/// port (to wake the accept loop) and one cloned handle per open
/// connection (to unblock its reader).
struct Daemon {
    server: FlowServer,
    port: u16,
    shutting_down: AtomicBool,
    next_conn: AtomicU64,
    connections: Mutex<HashMap<u64, TcpStream>>,
}

impl Daemon {
    fn lock_connections(&self) -> std::sync::MutexGuard<'_, HashMap<u64, TcpStream>> {
        self.connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Tracks a connection for shutdown wake-up; returns its registry key.
    fn register(&self, stream: &TcpStream) -> std::io::Result<u64> {
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let handle = stream.try_clone()?;
        self.lock_connections().insert(id, handle);
        Ok(id)
    }

    fn deregister(&self, id: u64) {
        self.lock_connections().remove(&id);
    }

    /// The orderly stop, idempotent. Ordering matters: mark the flag first
    /// (so readers waking from EOF know why), drain the serving engine
    /// (in-flight batch completes, queued queries fail with terminal
    /// events), then unblock every reader and the accept loop.
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.server.shutdown();
        for stream in self.lock_connections().values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        // Self-connect to wake the blocking accept; the accept loop sees
        // the flag and breaks.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_options(&raw) {
        Ok(options) => options,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("flowmax-serve: {msg}");
            eprintln!("run `flowmax-serve --help` for usage");
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(("127.0.0.1", options.port)) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("flowmax-serve: cannot bind 127.0.0.1:{}: {e}", options.port);
            return ExitCode::FAILURE;
        }
    };
    let port = listener.local_addr().map(|a| a.port()).unwrap_or(0);
    let daemon = Arc::new(Daemon {
        server: FlowServer::new(options.config),
        port,
        shutting_down: AtomicBool::new(false),
        next_conn: AtomicU64::new(0),
        connections: Mutex::new(HashMap::new()),
    });
    // The scripted-client handshake: clients (and CI) read this line to
    // learn the ephemeral port.
    println!("LISTENING {port}");
    let _ = std::io::stdout().flush();
    let mut handlers = Vec::new();
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                if daemon.shutting_down.load(Ordering::SeqCst) {
                    // Late arrival (or the shutdown wake-up connection):
                    // answer with the terminal line instead of raw EOF.
                    let mut writer = BufWriter::new(stream);
                    let _ = writeln!(writer, "ERR SHUTDOWN server stopping");
                    let _ = writer.flush();
                    break;
                }
                let daemon = Arc::clone(&daemon);
                // flowmax-lint: allow(L2, per-connection protocol handler threads: replies are serialized per connection and every solve runs on the audited WorkerPool, so connection scheduling cannot reorder any computation)
                handlers.push(std::thread::spawn(move || {
                    let _ = handle_client(&daemon, stream);
                }));
            }
            Err(e) => eprintln!("flowmax-serve: accept failed: {e}"),
        }
    }
    // Every handler either already saw the shutdown flag or wakes from its
    // closed read half; join so all terminal lines flush before exit.
    for handler in handlers {
        let _ = handler.join();
    }
    ExitCode::SUCCESS
}

/// Serves one connection until QUIT/SHUTDOWN/EOF, keeping it registered
/// for shutdown wake-up while it lives. Protocol errors answer with an
/// `ERR` line and keep the connection alive.
fn handle_client(daemon: &Daemon, stream: TcpStream) -> std::io::Result<()> {
    let id = daemon.register(&stream)?;
    let result = serve_connection(daemon, stream);
    daemon.deregister(id);
    result
}

fn serve_connection(daemon: &Daemon, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            // EOF: the client hung up — unless the daemon closed our read
            // half to shut down, in which case the protocol owes the
            // client a terminal line, not silence.
            if daemon.shutting_down.load(Ordering::SeqCst) {
                let _ = writeln!(writer, "ERR SHUTDOWN server stopping");
                let _ = writer.flush();
            }
            return Ok(());
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.trim().is_empty() {
            continue; // blank line
        }
        // Split off the command word only; LOAD needs the raw remainder
        // because paths may contain spaces.
        let (command, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((command, rest)) => (command, rest.trim()),
            None => (trimmed, ""),
        };
        let reply_end = match command {
            "QUIT" => match no_args("QUIT", rest) {
                Ok(()) => {
                    writeln!(writer, "OK BYE")?;
                    writer.flush()?;
                    return Ok(());
                }
                Err(e) => Err(e),
            },
            "SHUTDOWN" => match no_args("SHUTDOWN", rest) {
                Ok(()) => {
                    // Acknowledge first: this client's goodbye must not
                    // wait for the drain it is causing.
                    writeln!(writer, "OK BYE")?;
                    writer.flush()?;
                    daemon.begin_shutdown();
                    return Ok(());
                }
                Err(e) => Err(e),
            },
            "LOAD" => cmd_load(rest, &daemon.server),
            "SOLVE" => cmd_solve(rest, daemon, &mut writer)?,
            "STATS" => no_args("STATS", rest).map(|()| {
                let s = daemon.server.stats();
                format!(
                    "OK STATS resident={} queued={} completed={} rejected={} batches={}",
                    s.resident_graphs, s.queued, s.completed, s.rejected, s.batches
                )
            }),
            "RESUME" => no_args("RESUME", rest).map(|()| {
                daemon.server.resume();
                "OK RESUMED".to_string()
            }),
            other => Err(format!(
                "unknown command {other:?} (LOAD, SOLVE, STATS, RESUME, QUIT, SHUTDOWN)"
            )),
        };
        match reply_end {
            Ok(ok) => writeln!(writer, "{ok}")?,
            Err(err) => writeln!(writer, "ERR {err}")?,
        }
        writer.flush()?;
    }
}

/// Rejects trailing tokens on argument-less commands: `STATS now` is a
/// client bug the server must surface, not silently ignore.
fn no_args(command: &str, rest: &str) -> Result<(), String> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(format!("{command} takes no arguments (got {rest:?})"))
    }
}

fn cmd_load(path: &str, server: &FlowServer) -> Result<String, String> {
    if path.is_empty() {
        return Err("LOAD requires a path".into());
    }
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let graph =
        gio::read_text(BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let vertices = graph.vertex_count();
    let edges = graph.edge_count();
    let fingerprint = server.load_graph(graph);
    Ok(format!(
        "OK LOADED {fingerprint:016x} vertices={vertices} edges={edges}"
    ))
}

/// Parses and runs one SOLVE command, writing STEP lines inline when
/// streaming was requested. Returns the final reply line.
fn cmd_solve(
    rest: &str,
    daemon: &Daemon,
    writer: &mut impl Write,
) -> std::io::Result<Result<String, String>> {
    let parsed = (|| -> Result<(u64, QueryParams, bool), String> {
        let mut tokens = rest.split_whitespace();
        let fp_text = tokens.next().ok_or("SOLVE requires a graph fingerprint")?;
        let fingerprint = u64::from_str_radix(fp_text, 16)
            .map_err(|_| format!("invalid fingerprint {fp_text:?} (16 hex digits)"))?;
        let mut params = QueryParams::new(VertexId(0), 0);
        let mut stream = false;
        let mut saw_query = false;
        for token in tokens {
            if token == "stream" {
                stream = true;
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {token:?}"))?;
            let bad = || format!("invalid value for {key}: {value:?}");
            match key {
                "query" => {
                    params.vertex = VertexId(value.parse().map_err(|_| bad())?);
                    saw_query = true;
                }
                "budget" => params.budget = value.parse().map_err(|_| bad())?,
                "samples" => params.samples = value.parse().map_err(|_| bad())?,
                "seed" => params.seed = Some(value.parse().map_err(|_| bad())?),
                "algorithm" => {
                    params.algorithm = value.parse::<Algorithm>().map_err(|e| e.to_string())?
                }
                other => return Err(format!("unknown SOLVE key {other:?}")),
            }
        }
        if !saw_query {
            return Err("SOLVE requires query=<vertex>".into());
        }
        Ok((fingerprint, params, stream))
    })();
    let (fingerprint, params, stream) = match parsed {
        Ok(parsed) => parsed,
        Err(msg) => return Ok(Err(msg)),
    };
    let ticket = match daemon.server.submit(fingerprint, params) {
        Ok(ticket) => ticket,
        Err(ServeError::Overloaded { retry_after }) => {
            return Ok(Err(format!(
                "OVERLOADED retry_after_ms={}",
                retry_after.as_millis()
            )))
        }
        Err(ServeError::ShuttingDown) => return Ok(Err("SHUTDOWN server stopping".into())),
        Err(e) => return Ok(Err(e.to_string())),
    };
    loop {
        match ticket.next_event() {
            Some(ServeEvent::Step(step)) => {
                if stream {
                    // f64 Display is shortest-roundtrip, so equal lines
                    // mean bit-equal values — the replay oracle works on
                    // the text protocol itself.
                    writeln!(
                        writer,
                        "STEP {} {} {} {}",
                        step.iteration, step.edge, step.gain, step.flow
                    )?;
                    writer.flush()?;
                }
            }
            Some(ServeEvent::Done(result)) => return Ok(Ok(format_result(&result))),
            Some(ServeEvent::Failed(CoreError::ShuttingDown)) | None => {
                // The terminal line for queries the shutdown drained (the
                // stream only ends without a terminal event if the server
                // vanished, which is the same story for the client).
                return Ok(Err("SHUTDOWN server stopping".into()));
            }
            Some(ServeEvent::Failed(e)) => return Ok(Err(e.to_string())),
        }
    }
}

fn format_result(result: &ServeResult) -> String {
    let edges: Vec<String> = result.selected.iter().map(|e| e.to_string()).collect();
    format!(
        "OK RESULT flow={} algorithm_flow={} seed={} edges={}",
        result.flow,
        result.algorithm_flow,
        result.params.seed.expect("server resolves the seed"),
        edges.join(",")
    )
}
