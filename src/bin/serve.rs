//! `flowmax-serve` — the long-lived query-serving daemon.
//!
//! A thin line-protocol TCP front-end over [`flowmax::core::FlowServer`]:
//! every serving decision (graph residency, admission control, coalescing,
//! streaming, deterministic replay, graceful shutdown) lives in the
//! library, so this binary only parses lines and relays events. See
//! `flowmax-serve --help` and the README's "Serving" section for the
//! protocol.
//!
//! Shutdown is orderly, never a silent hang-up: `SHUTDOWN` stops
//! admission, drains the executing batch, fails every admitted-but-
//! unstarted query, and hands every other open connection a terminal
//! `ERR SHUTDOWN server stopping` line before the process exits.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use flowmax::core::{
    Algorithm, CancelToken, CoreError, FlowServer, QueryParams, ServeConfig, ServeError,
    ServeEvent, ServeResult,
};
use flowmax::graph::{io as gio, VertexId};

/// Longest accepted request line, in bytes. Anything longer is drained to
/// its newline and answered with `ERR LINE TOO LONG` — the daemon never
/// buffers an attacker-sized line and never desynchronizes the protocol.
const MAX_LINE_BYTES: usize = 64 * 1024;

const USAGE: &str = "\
flowmax-serve — long-lived flow-maximization query daemon

USAGE:
    flowmax-serve [OPTIONS]

OPTIONS:
    --port <N>            TCP port to listen on (default 7878; 0 picks an
                          ephemeral port). The daemon prints `LISTENING <port>`
                          on stdout once it accepts connections.
    --threads <N>         Sampling worker threads per executing batch
                          (default: FLOWMAX_THREADS or 1; 0 is clamped to 1
                          with a warning).
    --lanes <N>           Sampling lane width in 64-world lane words per BFS
                          block: 1, 4, or 8 (64, 256, or 512 worlds; default:
                          FLOWMAX_LANES or 1; unsupported widths clamp to 1
                          with a warning). Results never depend on this.
    --max-graphs <N>      Graphs kept resident, LRU beyond that (default 4).
    --queue-capacity <N>  Bounded admission queue; a full queue rejects with
                          `ERR OVERLOADED retry_after_ms=<hint>` (default 64).
    --coalesce-max <N>    Queued queries against the same graph coalesced
                          into one batch (default 16).
    --retry-after-ms <N>  Base backoff hint attached to overload rejections
                          (default 50). The live hint scales with queue
                          depth, capped at 32× the base.
    --seed <N>            Server-default master seed for queries that don't
                          pin one (default 42).
    --idle-timeout-ms <N> Close a connection after this long without a
                          complete request line, with a terminal
                          `ERR TIMEOUT ...` (default 300000; 0 disables).
    --fault-plan <SPEC>   Arm the deterministic fault-injection substrate
                          with a plan (`site[@key]=always|nth:..|rate:..`,
                          `;`-separated), seeded by --seed. Requires a
                          build with `--features faults`; errors otherwise.
    --start-paused        Admit queries without executing them until a
                          `RESUME` command arrives — for drain tests and
                          staged rollouts.
    --help                Print this help.

PROTOCOL (one command per line, at most 65536 bytes per line — longer
lines are drained and answered with `ERR LINE TOO LONG ...`):
    LOAD <path>
        Parse a `flowmax-graph v1` text file and make it resident. The path
        is everything after the first space up to the end of the line, so
        paths containing spaces need no quoting.
        -> OK LOADED <fingerprint> vertices=<n> edges=<m>
    SOLVE <fingerprint> query=<v> budget=<k> [algorithm=<name>]
          [samples=<n>] [seed=<n>] [deadline_ms=<n>] [ticket=<name>]
          [stream]
        Run one query. With `stream`, one `STEP <iter> <edge> <gain> <flow>`
        line per committed edge arrives while the query runs (anytime
        partial answers), then the final line either way:
        -> OK RESULT flow=<f> algorithm_flow=<f> seed=<n> edges=<e1,e2,...>
        With `deadline_ms=`, a query whose wall-clock budget expires stops
        between iterations and degrades gracefully instead of failing:
        -> OK DEGRADED steps_done=<j> budget=<k> flow=<f> algorithm_flow=<f>
           seed=<n> edges=<e1,...,ej>
        where the j selected edges are bit-identical to the first j edges
        of the same-seed full run. With `ticket=<name>`, the query is
        cancellable under that name (unique among in-flight queries) via
        CANCEL from any connection; a cancelled query also answers
        `OK DEGRADED ...`.
    CANCEL <name>
        Cancel the in-flight SOLVE registered as ticket=<name> (from any
        connection). The cancelled query stops at its next iteration
        boundary and its own connection receives `OK DEGRADED ...`.
        -> OK CANCELLED <name>
    STATS
        -> OK STATS resident=<n> queued=<n> completed=<n> rejected=<n> batches=<n>
    RESUME
        -> OK RESUMED (starts a `--start-paused` dispatcher; idempotent)
    QUIT
        -> OK BYE (closes this connection; the daemon keeps serving)
    SHUTDOWN
        -> OK BYE, then the daemon stops: no new queries are admitted, the
        executing batch drains, admitted-but-unstarted queries fail with
        `ERR SHUTDOWN server stopping`, every other open connection gets
        that same terminal line, and the process exits.
    STATS, RESUME, QUIT, and SHUTDOWN take no arguments; trailing tokens
    are a protocol error (`ERR ...`), not silently ignored.

DETERMINISTIC REPLAY:
    A query's result is a pure function of (graph fingerprint, query
    parameters, seed). Replaying the same SOLVE line — any queue state,
    any coalescing, any thread count, any lane width — returns a
    bit-identical selection and flow. Deadlines and cancellation only move
    the stop point between iterations; they never change what a committed
    step computes.
";

struct Options {
    port: u16,
    config: ServeConfig,
    idle_timeout: Option<Duration>,
    fault_plan: Option<String>,
}

fn parse_options(raw: &[String]) -> Result<Options, String> {
    let mut port = 7878u16;
    let mut config = ServeConfig::default();
    let mut idle_timeout_ms: u64 = 300_000;
    let mut fault_plan = None;
    let mut i = 0;
    while i < raw.len() {
        let name = raw[i].as_str();
        if name == "--help" {
            return Err(String::new()); // caller prints usage
        }
        if name == "--start-paused" {
            config.start_paused = true;
            i += 1;
            continue;
        }
        let value = raw
            .get(i + 1)
            .ok_or_else(|| format!("option {name} requires a value"))?;
        let bad = |what: &str| format!("invalid value for {what}: {value:?}");
        match name {
            "--port" => port = value.parse().map_err(|_| bad("--port"))?,
            "--threads" => config.threads = value.parse().map_err(|_| bad("--threads"))?,
            "--lanes" => config.lane_words = value.parse().map_err(|_| bad("--lanes"))?,
            "--max-graphs" => {
                config.max_resident_graphs = value.parse().map_err(|_| bad("--max-graphs"))?
            }
            "--queue-capacity" => {
                config.queue_capacity = value.parse().map_err(|_| bad("--queue-capacity"))?
            }
            "--coalesce-max" => {
                config.coalesce_max = value.parse().map_err(|_| bad("--coalesce-max"))?
            }
            "--retry-after-ms" => {
                let ms: u64 = value.parse().map_err(|_| bad("--retry-after-ms"))?;
                config.retry_after = Duration::from_millis(ms);
            }
            "--seed" => config.seed = value.parse().map_err(|_| bad("--seed"))?,
            "--idle-timeout-ms" => {
                idle_timeout_ms = value.parse().map_err(|_| bad("--idle-timeout-ms"))?
            }
            "--fault-plan" => fault_plan = Some(value.clone()),
            other => return Err(format!("unknown option {other} (see --help)")),
        }
        i += 2;
    }
    if fault_plan.is_some() && !cfg!(feature = "faults") {
        return Err(
            "--fault-plan requires a binary built with --features faults (this one was not)".into(),
        );
    }
    Ok(Options {
        port,
        config,
        idle_timeout: (idle_timeout_ms > 0).then(|| Duration::from_millis(idle_timeout_ms)),
        fault_plan,
    })
}

/// The daemon's shared state: the serving engine plus everything the
/// graceful shutdown needs to reach every blocked thread — the listening
/// port (to wake the accept loop) and one cloned handle per open
/// connection (to unblock its reader).
struct Daemon {
    server: FlowServer,
    port: u16,
    idle_timeout: Option<Duration>,
    shutting_down: AtomicBool,
    next_conn: AtomicU64,
    connections: Mutex<HashMap<u64, TcpStream>>,
    /// In-flight cancellable queries by ticket name (`SOLVE ... ticket=`),
    /// daemon-wide so CANCEL works from any connection.
    tickets: Mutex<HashMap<String, CancelToken>>,
}

impl Daemon {
    fn lock_connections(&self) -> std::sync::MutexGuard<'_, HashMap<u64, TcpStream>> {
        self.connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_tickets(&self) -> std::sync::MutexGuard<'_, HashMap<String, CancelToken>> {
        self.tickets.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tracks a connection for shutdown wake-up; returns its registry key.
    fn register(&self, stream: &TcpStream) -> std::io::Result<u64> {
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let handle = stream.try_clone()?;
        self.lock_connections().insert(id, handle);
        Ok(id)
    }

    fn deregister(&self, id: u64) {
        self.lock_connections().remove(&id);
    }

    /// The orderly stop, idempotent. Ordering matters: mark the flag first
    /// (so readers waking from EOF know why), drain the serving engine
    /// (in-flight batch completes, queued queries fail with terminal
    /// events), then unblock every reader and the accept loop.
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.server.shutdown();
        for stream in self.lock_connections().values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        // Self-connect to wake the blocking accept; the accept loop sees
        // the flag and breaks.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_options(&raw) {
        Ok(options) => options,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("flowmax-serve: {msg}");
            eprintln!("run `flowmax-serve --help` for usage");
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(("127.0.0.1", options.port)) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("flowmax-serve: cannot bind 127.0.0.1:{}: {e}", options.port);
            return ExitCode::FAILURE;
        }
    };
    let port = listener.local_addr().map(|a| a.port()).unwrap_or(0);
    if let Some(spec) = &options.fault_plan {
        match flowmax_faults::FailPlan::parse(spec, options.config.seed) {
            Ok(plan) => flowmax_faults::install(plan),
            Err(e) => {
                eprintln!("flowmax-serve: invalid --fault-plan: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let daemon = Arc::new(Daemon {
        server: FlowServer::new(options.config),
        port,
        idle_timeout: options.idle_timeout,
        shutting_down: AtomicBool::new(false),
        next_conn: AtomicU64::new(0),
        connections: Mutex::new(HashMap::new()),
        tickets: Mutex::new(HashMap::new()),
    });
    // The scripted-client handshake: clients (and CI) read this line to
    // learn the ephemeral port.
    println!("LISTENING {port}");
    let _ = std::io::stdout().flush();
    let mut handlers = Vec::new();
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                if daemon.shutting_down.load(Ordering::SeqCst) {
                    // Late arrival (or the shutdown wake-up connection):
                    // answer with the terminal line instead of raw EOF.
                    let mut writer = BufWriter::new(stream);
                    let _ = writeln!(writer, "ERR SHUTDOWN server stopping");
                    let _ = writer.flush();
                    break;
                }
                let daemon = Arc::clone(&daemon);
                // flowmax-lint: allow(L2, per-connection protocol handler threads: replies are serialized per connection and every solve runs on the audited WorkerPool, so connection scheduling cannot reorder any computation)
                handlers.push(std::thread::spawn(move || {
                    let _ = handle_client(&daemon, stream);
                }));
            }
            Err(e) => eprintln!("flowmax-serve: accept failed: {e}"),
        }
    }
    // Every handler either already saw the shutdown flag or wakes from its
    // closed read half; join so all terminal lines flush before exit.
    for handler in handlers {
        let _ = handler.join();
    }
    ExitCode::SUCCESS
}

/// Serves one connection until QUIT/SHUTDOWN/EOF, keeping it registered
/// for shutdown wake-up while it lives. Protocol errors answer with an
/// `ERR` line and keep the connection alive.
fn handle_client(daemon: &Daemon, stream: TcpStream) -> std::io::Result<()> {
    let id = daemon.register(&stream)?;
    let result = serve_connection(daemon, id, stream);
    daemon.deregister(id);
    result
}

/// One bounded read of a request line: everything `read_line` does, plus a
/// length cap and timeout awareness.
enum LineRead {
    /// A complete line (newline stripped) within the cap.
    Line,
    /// The peer closed (or the daemon shut our read half).
    Eof,
    /// The line exceeded the cap. It has been drained through its newline
    /// (or to EOF), so the connection is still protocol-synchronized.
    TooLong,
    /// The read timeout elapsed without a complete line.
    TimedOut,
}

/// Reads one `\n`-terminated line of at most `max` bytes into `line`
/// (newline stripped, lossy UTF-8). Oversized lines are consumed to their
/// newline but never buffered beyond one [`BufReader`] block, so a 10 MB
/// garbage line costs a fixed-size buffer, not 10 MB.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    max: usize,
) -> std::io::Result<LineRead> {
    line.clear();
    let mut taken: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Ok(LineRead::TimedOut)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            // EOF. A truncated trailing line still gets processed (like
            // `read_line`); an oversized one still reports TooLong.
            return Ok(if overflow {
                LineRead::TooLong
            } else if taken.is_empty() {
                LineRead::Eof
            } else {
                *line = String::from_utf8_lossy(&taken).into_owned();
                LineRead::Line
            });
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let end = newline.map_or(available.len(), |pos| pos + 1);
        if !overflow && taken.len() + end > max + 1 {
            // +1: the newline itself does not count against the cap.
            overflow = true;
            taken.clear();
        }
        if !overflow {
            taken.extend_from_slice(&available[..end]);
        }
        reader.consume(end);
        if newline.is_some() {
            return Ok(if overflow {
                LineRead::TooLong
            } else {
                while taken.last() == Some(&b'\n') || taken.last() == Some(&b'\r') {
                    taken.pop();
                }
                *line = String::from_utf8_lossy(&taken).into_owned();
                LineRead::Line
            });
        }
    }
}

fn serve_connection(daemon: &Daemon, conn_id: u64, stream: TcpStream) -> std::io::Result<()> {
    // The `daemon/conn` failpoint models a connection handler dying right
    // after accept: the client still gets a terminal line, never raw EOF.
    if flowmax_faults::should_fail_keyed("daemon/conn", conn_id) {
        let mut writer = BufWriter::new(stream);
        let _ = writeln!(writer, "ERR FAULT injected");
        let _ = writer.flush();
        return Ok(());
    }
    // The timeout only governs waiting for request lines: replies are
    // written by this same thread, and a SOLVE blocks on its ticket, not
    // on the socket.
    stream.set_read_timeout(daemon.idle_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        match read_bounded_line(&mut reader, &mut line, MAX_LINE_BYTES)? {
            LineRead::Line => {}
            LineRead::Eof => {
                // EOF: the client hung up — unless the daemon closed our
                // read half to shut down, in which case the protocol owes
                // the client a terminal line, not silence.
                if daemon.shutting_down.load(Ordering::SeqCst) {
                    let _ = writeln!(writer, "ERR SHUTDOWN server stopping");
                    let _ = writer.flush();
                }
                return Ok(());
            }
            LineRead::TooLong => {
                writeln!(writer, "ERR LINE TOO LONG max_bytes={MAX_LINE_BYTES}")?;
                writer.flush()?;
                continue;
            }
            LineRead::TimedOut => {
                let ms = daemon.idle_timeout.map_or(0, |d| d.as_millis());
                let _ = writeln!(writer, "ERR TIMEOUT idle for {ms} ms; closing");
                let _ = writer.flush();
                return Ok(());
            }
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.trim().is_empty() {
            continue; // blank line
        }
        // Split off the command word only; LOAD needs the raw remainder
        // because paths may contain spaces.
        let (command, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((command, rest)) => (command, rest.trim()),
            None => (trimmed, ""),
        };
        let reply_end = match command {
            "QUIT" => match no_args("QUIT", rest) {
                Ok(()) => {
                    writeln!(writer, "OK BYE")?;
                    writer.flush()?;
                    return Ok(());
                }
                Err(e) => Err(e),
            },
            "SHUTDOWN" => match no_args("SHUTDOWN", rest) {
                Ok(()) => {
                    // Acknowledge first: this client's goodbye must not
                    // wait for the drain it is causing.
                    writeln!(writer, "OK BYE")?;
                    writer.flush()?;
                    daemon.begin_shutdown();
                    return Ok(());
                }
                Err(e) => Err(e),
            },
            "LOAD" => cmd_load(rest, &daemon.server),
            "SOLVE" => cmd_solve(rest, daemon, &mut writer)?,
            "CANCEL" => cmd_cancel(rest, daemon),
            "STATS" => no_args("STATS", rest).map(|()| {
                let s = daemon.server.stats();
                format!(
                    "OK STATS resident={} queued={} completed={} rejected={} batches={}",
                    s.resident_graphs, s.queued, s.completed, s.rejected, s.batches
                )
            }),
            "RESUME" => no_args("RESUME", rest).map(|()| {
                daemon.server.resume();
                "OK RESUMED".to_string()
            }),
            other => Err(format!(
                "unknown command {other:?} (LOAD, SOLVE, CANCEL, STATS, RESUME, QUIT, SHUTDOWN)"
            )),
        };
        match reply_end {
            Ok(ok) => writeln!(writer, "{ok}")?,
            Err(err) => writeln!(writer, "ERR {err}")?,
        }
        writer.flush()?;
    }
}

/// Rejects trailing tokens on argument-less commands: `STATS now` is a
/// client bug the server must surface, not silently ignore.
fn no_args(command: &str, rest: &str) -> Result<(), String> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(format!("{command} takes no arguments (got {rest:?})"))
    }
}

fn cmd_load(path: &str, server: &FlowServer) -> Result<String, String> {
    if path.is_empty() {
        return Err("LOAD requires a path".into());
    }
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let graph =
        gio::read_text(BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let vertices = graph.vertex_count();
    let edges = graph.edge_count();
    let fingerprint = server.load_graph(graph);
    Ok(format!(
        "OK LOADED {fingerprint:016x} vertices={vertices} edges={edges}"
    ))
}

/// Parses and runs one SOLVE command, writing STEP lines inline when
/// streaming was requested. Returns the final reply line.
fn cmd_solve(
    rest: &str,
    daemon: &Daemon,
    writer: &mut impl Write,
) -> std::io::Result<Result<String, String>> {
    let parsed = (|| -> Result<(u64, QueryParams, bool, Option<String>), String> {
        let mut tokens = rest.split_whitespace();
        let fp_text = tokens.next().ok_or("SOLVE requires a graph fingerprint")?;
        let fingerprint = u64::from_str_radix(fp_text, 16)
            .map_err(|_| format!("invalid fingerprint {fp_text:?} (16 hex digits)"))?;
        let mut params = QueryParams::new(VertexId(0), 0);
        let mut stream = false;
        let mut saw_query = false;
        let mut ticket_name = None;
        for token in tokens {
            if token == "stream" {
                stream = true;
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {token:?}"))?;
            let bad = || format!("invalid value for {key}: {value:?}");
            match key {
                "query" => {
                    params.vertex = VertexId(value.parse().map_err(|_| bad())?);
                    saw_query = true;
                }
                "budget" => params.budget = value.parse().map_err(|_| bad())?,
                "samples" => params.samples = value.parse().map_err(|_| bad())?,
                "seed" => params.seed = Some(value.parse().map_err(|_| bad())?),
                "deadline_ms" => params.deadline_ms = Some(value.parse().map_err(|_| bad())?),
                "ticket" => {
                    if value.is_empty() {
                        return Err(bad());
                    }
                    ticket_name = Some(value.to_string());
                }
                "algorithm" => {
                    params.algorithm = value.parse::<Algorithm>().map_err(|e| e.to_string())?
                }
                other => return Err(format!("unknown SOLVE key {other:?}")),
            }
        }
        if !saw_query {
            return Err("SOLVE requires query=<vertex>".into());
        }
        Ok((fingerprint, params, stream, ticket_name))
    })();
    let (fingerprint, params, stream, ticket_name) = match parsed {
        Ok(parsed) => parsed,
        Err(msg) => return Ok(Err(msg)),
    };
    let (ticket, cancel) = match daemon.server.submit_cancellable(fingerprint, params) {
        Ok(admitted) => admitted,
        Err(ServeError::Overloaded { retry_after }) => {
            return Ok(Err(format!(
                "OVERLOADED retry_after_ms={}",
                retry_after.as_millis()
            )))
        }
        Err(ServeError::ShuttingDown) => return Ok(Err("SHUTDOWN server stopping".into())),
        Err(e) => return Ok(Err(e.to_string())),
    };
    // Register the cancel handle under its ticket name for the query's
    // lifetime; the guard deregisters on every exit path.
    let _registration = match ticket_name {
        Some(name) => {
            let mut tickets = daemon.lock_tickets();
            if tickets.contains_key(&name) {
                drop(tickets);
                cancel.cancel(); // don't leave an unreachable query running
                return Ok(Err(format!("ticket name {name:?} is already in flight")));
            }
            tickets.insert(name.clone(), cancel);
            drop(tickets);
            Some(TicketRegistration { daemon, name })
        }
        None => None,
    };
    loop {
        match ticket.next_event() {
            Some(ServeEvent::Step(step)) => {
                if stream {
                    // f64 Display is shortest-roundtrip, so equal lines
                    // mean bit-equal values — the replay oracle works on
                    // the text protocol itself.
                    writeln!(
                        writer,
                        "STEP {} {} {} {}",
                        step.iteration, step.edge, step.gain, step.flow
                    )?;
                    writer.flush()?;
                }
            }
            Some(ServeEvent::Done(result)) => return Ok(Ok(format_result("OK RESULT", &result))),
            Some(ServeEvent::Degraded {
                steps_done,
                budget,
                result,
            }) => {
                let prefix = format!("OK DEGRADED steps_done={steps_done} budget={budget}");
                return Ok(Ok(format_result(&prefix, &result)));
            }
            Some(ServeEvent::Failed(CoreError::ShuttingDown)) | None => {
                // The terminal line for queries the shutdown drained (the
                // stream only ends without a terminal event if the server
                // vanished, which is the same story for the client).
                return Ok(Err("SHUTDOWN server stopping".into()));
            }
            Some(ServeEvent::Failed(e)) => return Ok(Err(e.to_string())),
        }
    }
}

/// Removes a SOLVE's ticket name from the daemon registry when the query
/// finishes, however it finishes.
struct TicketRegistration<'a> {
    daemon: &'a Daemon,
    name: String,
}

impl Drop for TicketRegistration<'_> {
    fn drop(&mut self) {
        self.daemon.lock_tickets().remove(&self.name);
    }
}

fn cmd_cancel(rest: &str, daemon: &Daemon) -> Result<String, String> {
    if rest.is_empty() || rest.split_whitespace().count() != 1 {
        return Err("CANCEL takes exactly one ticket name".into());
    }
    match daemon.lock_tickets().get(rest) {
        Some(token) => {
            token.cancel();
            Ok(format!("OK CANCELLED {rest}"))
        }
        None => Err(format!(
            "unknown ticket {rest:?} (already finished, or never registered)"
        )),
    }
}

fn format_result(prefix: &str, result: &ServeResult) -> String {
    let edges: Vec<String> = result.selected.iter().map(|e| e.to_string()).collect();
    // A `None` seed is unreachable — the server resolves the seed before
    // replying — and defaults to 0 rather than panicking the handler.
    let seed = result.params.seed.unwrap_or_default();
    format!(
        "{prefix} flow={} algorithm_flow={} seed={} edges={}",
        result.flow,
        result.algorithm_flow,
        seed,
        edges.join(",")
    )
}
