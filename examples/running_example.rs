//! The paper's running examples, reproduced end to end:
//!
//! * **Fig. 1** — activating all edges maximizes flow but wastes budget; a
//!   max-probability spanning tree (Dijkstra) is cheap but weak; a good
//!   five-edge selection dominates the six-edge tree.
//! * **Fig. 3 / Example 2** — the F-tree decomposition of a 17-vertex graph
//!   into mono- and bi-connected components (the 19-edge topology is
//!   reconstructed from the text of §5.3/§5.5).
//!
//! Run with: `cargo run --release --example running_example`

use flowmax::core::{exact_max_flow, Algorithm, EstimatorConfig, FTree, SamplingProvider, Session};
use flowmax::graph::{
    exact_expected_flow, EdgeSubset, GraphBuilder, ProbabilisticGraph, Probability, VertexId,
    Weight, DEFAULT_ENUMERATION_CAP,
};

fn p(v: f64) -> Probability {
    Probability::new(v).unwrap()
}

/// A Fig.-1-shaped graph: 7 vertices, 10 edges carrying the probability
/// multiset visible in the paper's `Pr(g1)` computation, unit weights.
/// (The figure's exact wiring is not in the text; the phenomenon is.)
fn figure1_graph() -> ProbabilisticGraph {
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..7).map(|_| b.add_vertex(Weight::ONE)).collect();
    let (q, a, bb, c, d, e, f) = (vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6]);
    b.add_edge(q, a, p(0.6)).unwrap();
    b.add_edge(q, bb, p(0.5)).unwrap();
    b.add_edge(a, c, p(0.8)).unwrap();
    b.add_edge(bb, c, p(0.5)).unwrap();
    b.add_edge(a, bb, p(0.4)).unwrap();
    b.add_edge(c, d, p(0.4)).unwrap();
    b.add_edge(bb, d, p(0.4)).unwrap();
    b.add_edge(d, e, p(0.3)).unwrap();
    b.add_edge(q, e, p(0.1)).unwrap();
    b.add_edge(e, f, p(0.1)).unwrap();
    b.build()
}

/// The Fig. 3(a) graph: vertices Q,1..16 (weight = id, W(Q)=0), 19 edges,
/// every probability 0.5, reconstructed from the component inventory of
/// Example 2 (components A–F with their articulation vertices).
pub fn figure3_graph() -> ProbabilisticGraph {
    let mut b = GraphBuilder::new();
    b.add_vertex(Weight::ZERO); // Q = vertex 0
    for w in 1..=16 {
        b.add_vertex(Weight::new(w as f64).unwrap());
    }
    let half = p(0.5);
    let v = VertexId;
    let edges: [(u32, u32); 19] = [
        // A (mono, AV Q): Q-3, Q-6, 3-1, 6-2
        (0, 3),
        (0, 6),
        (3, 1),
        (6, 2),
        // B (bi, AV 3): triangle 3-4-5
        (3, 4),
        (4, 5),
        (5, 3),
        // C (bi, AV 6): square 6-7-8-9
        (6, 7),
        (7, 8),
        (8, 9),
        (9, 6),
        // D (bi, AV 9): triangle 9-10-11
        (9, 10),
        (10, 11),
        (11, 9),
        // E (mono, AV 9): 9-13, 13-14, 13-15, 15-16
        (9, 13),
        (13, 14),
        (13, 15),
        (15, 16),
        // F (mono, AV 11): 11-12
        (11, 12),
    ];
    for (x, y) in edges {
        b.add_edge(v(x), v(y), half).unwrap();
    }
    b.build()
}

fn main() {
    // ---- Figure 1 ------------------------------------------------------
    println!("== Figure 1: budget beats both extremes ==");
    let g = figure1_graph();
    let q = VertexId(0);
    let all = EdgeSubset::full(&g);
    let flow_all = exact_expected_flow(&g, &all, q, false, DEFAULT_ENUMERATION_CAP).unwrap();
    println!("all 10 edges activated:      E[flow] = {flow_all:.4}  (paper: ≈2.51)");

    let session = Session::new(&g);
    let dj = session
        .query(q)
        .expect("q is a graph vertex")
        .algorithm(Algorithm::Dijkstra)
        .budget(usize::MAX)
        .run()
        .expect("valid query");
    println!(
        "Dijkstra spanning tree:      E[flow] = {:.4} with {} edges  (paper: 1.59, 6 edges)",
        // Spanning trees are mono-connected: the algorithm's own flow is
        // exact and analytic (Theorem 2), no sampling involved.
        dj.algorithm_flow,
        dj.selected.len()
    );

    let opt5 = exact_max_flow(&g, q, 5, false).unwrap();
    println!(
        "optimal 5-edge selection:    E[flow] = {:.4}  (paper: ≈2.02)",
        opt5.flow
    );
    println!(
        "→ the 5-edge optimum keeps {:.0}% of the all-edges flow using half the budget,\n  \
         and beats the {}-edge spanning tree by {:.1}%\n",
        100.0 * opt5.flow / flow_all,
        dj.selected.len(),
        100.0 * (opt5.flow - dj.algorithm_flow) / dj.algorithm_flow
    );

    // ---- Figure 3 / Example 2 -------------------------------------------
    println!("== Figure 3: the F-tree decomposition ==");
    let g3 = figure3_graph();
    let q3 = VertexId(0);
    let mut tree = FTree::new(&g3, q3);
    let mut provider = SamplingProvider::new(EstimatorConfig::exact(), 1);
    for e in g3.edge_ids() {
        tree.insert_edge(&g3, e, &mut provider).unwrap();
    }
    tree.validate(&g3).expect("F-tree invariants hold");
    println!(
        "inserted {} edges → {} components ({} bi-connected needing sampling)",
        tree.edge_count(),
        tree.component_count(),
        tree.bi_component_count()
    );
    let flow = tree.expected_flow(&g3, false);
    let exact = exact_expected_flow(
        &g3,
        tree.selected_edges(),
        q3,
        false,
        DEFAULT_ENUMERATION_CAP,
    )
    .unwrap();
    println!("F-tree E[flow] = {flow:.6}");
    println!("exact  E[flow] = {exact:.6}   (2^19 = 524,288 possible worlds enumerated)");
    println!(
        "→ instead of one 2^19-world variable, the F-tree samples components of\n  \
         2^3, 2^4 and 2^3 worlds and handles the rest analytically (Example 2)."
    );
    for v in [3u32, 6, 9, 13, 16] {
        println!("  Pr[{v} ↝ Q] = {:.6}", tree.reach_to_query(VertexId(v)));
    }
}
