//! Road-network scenario (the Fig. 9(a) workload).
//!
//! Roadside sensors at intersections report to a control center Q over
//! links whose reliability decays with distance (`p = exp(−0.001·d)` per the
//! paper's San Joaquin setup). With a budget of k links, which should be
//! activated?
//!
//! Run with: `cargo run --release --example road_network`

use flowmax::datasets::RoadConfig;
use flowmax::graph::GraphStats;
use flowmax::prelude::*;

fn main() {
    // A mid-size grid by default; --paper builds San-Joaquin scale (18k
    // intersections).
    let full = std::env::args().any(|a| a == "--paper");
    let config = if full {
        RoadConfig::paper(135, 135)
    } else {
        RoadConfig::paper(40, 40)
    };
    let road = config.generate(7);
    let graph = &road.graph;
    let q = suggest_query(graph);

    println!("road network: {}", GraphStats::compute(graph));
    let (qx, qy) = road.positions[q.index()];
    println!(
        "control center at intersection {q} ({:.0} m, {:.0} m)",
        qx, qy
    );
    let budget = 80;
    println!("link budget: k = {budget}\n");

    println!(
        "{:<12} {:>10} {:>10} {:>12}",
        "algorithm", "E[flow]", "sampled", "time"
    );
    let session = Session::new(graph).with_seed(11);
    for alg in [
        Algorithm::Dijkstra,
        Algorithm::FtM,
        Algorithm::FtMDs,
        Algorithm::FtMCiDs,
    ] {
        let run = session
            .query(q)
            .expect("q is a graph vertex")
            .algorithm(alg)
            .budget(budget)
            .run()
            .expect("valid query");
        println!(
            "{:<12} {:>10.2} {:>10} {:>10.1?}",
            alg.name(),
            run.flow,
            run.metrics.components_sampled,
            run.elapsed,
        );
    }
    println!(
        "\nRoad networks have strong locality: selections stay near Q regardless of\n\
         network size (paper Fig. 5a), and the CI/DS heuristics shine here (Fig. 9a)."
    );
}
