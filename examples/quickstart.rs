//! Quickstart: build a small uncertain graph, pick a budget, and compare the
//! F-tree algorithm against the baselines.
//!
//! Run with: `cargo run --release --example quickstart`

use flowmax::prelude::*;

fn main() {
    // A toy collaboration network: Q wants endorsements. Edge probabilities
    // model how likely each contact is to respond; vertex weights model how
    // valuable each endorsement is.
    let mut b = GraphBuilder::new();
    let q = b.add_vertex(Weight::ZERO);
    let names = ["alice", "bob", "carol", "dave", "erin", "frank", "grace"];
    let weights = [4.0, 2.0, 7.0, 1.0, 3.0, 5.0, 6.0];
    let people: Vec<VertexId> = weights
        .iter()
        .map(|&w| b.add_vertex(Weight::new(w).unwrap()))
        .collect();

    let p = |v| Probability::new(v).unwrap();
    // Q's direct contacts.
    b.add_edge(q, people[0], p(0.9)).unwrap();
    b.add_edge(q, people[1], p(0.6)).unwrap();
    b.add_edge(q, people[2], p(0.3)).unwrap();
    // Second-degree contacts and backup paths.
    b.add_edge(people[0], people[2], p(0.8)).unwrap();
    b.add_edge(people[0], people[3], p(0.5)).unwrap();
    b.add_edge(people[1], people[4], p(0.7)).unwrap();
    b.add_edge(people[2], people[5], p(0.9)).unwrap();
    b.add_edge(people[4], people[6], p(0.8)).unwrap();
    b.add_edge(people[1], people[6], p(0.4)).unwrap();
    b.add_edge(people[5], people[6], p(0.5)).unwrap();
    let graph = b.build();

    println!("graph: {}", flowmax::graph::GraphStats::compute(&graph));
    println!("query: vertex {q} with budget k = 5\n");

    // One session serves every query against this graph: the worker count,
    // seed derivation and evaluation estimator are shared across runs.
    let session = Session::new(&graph).with_seed(42);

    println!(
        "{:<12} {:>10} {:>8} {:>12}  selected edges",
        "algorithm", "E[flow]", "probes", "time"
    );
    for alg in Algorithm::all() {
        let run = session
            .query(q)
            .expect("q is a graph vertex")
            .algorithm(alg)
            .budget(5)
            .run()
            .expect("budget and samples are positive");
        let edges: Vec<String> = run
            .selected
            .iter()
            .map(|&e| {
                let (a, bb) = graph.endpoints(e);
                let show = |v: VertexId| {
                    if v == q {
                        "Q".to_string()
                    } else {
                        names[v.index() - 1].to_string()
                    }
                };
                format!("{}–{}", show(a), show(bb))
            })
            .collect();
        println!(
            "{:<12} {:>10.4} {:>8} {:>10.1?}  [{}]",
            alg.name(),
            run.flow,
            run.metrics.probes,
            run.elapsed,
            edges.join(", ")
        );
    }

    // The anytime property: one FT+M+CI+DS run at k = 5 answers every
    // smaller budget too, via its prefix evaluations.
    let run = session
        .query(q)
        .expect("q is a graph vertex")
        .budget(5)
        .run()
        .expect("valid query");
    print!("\nFT+M+CI+DS flow by budget (one run):");
    for k in 1..=run.selected.len() {
        print!("  k={k}: {:.3}", run.flow_at(k));
    }
    println!();

    // The brute-force optimum is tractable at this size: show the gap.
    let optimum = exact_max_flow(&graph, q, 5, false).expect("10 edges is enumerable");
    println!(
        "exact optimum over all ≤5-edge subsets: {:.4}",
        optimum.flow
    );
}
