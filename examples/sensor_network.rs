//! Wireless sensor network scenario (the Fig. 8 workload).
//!
//! A WSN sink must collect readings from as many sensors as possible, but
//! every activated radio link costs battery. Links fail probabilistically
//! (uniform link quality). We budget `k` links and compare algorithms.
//!
//! Run with: `cargo run --release --example sensor_network`

use flowmax::datasets::WsnConfig;
use flowmax::graph::GraphStats;
use flowmax::prelude::*;

fn main() {
    let config = WsnConfig::paper(1000, 0.07);
    let wsn = config.generate(2024);
    let graph = &wsn.graph;
    let sink = suggest_query(graph);
    let (sx, sy) = wsn.positions[sink.index()];

    println!("wireless sensor network: {}", GraphStats::compute(graph));
    println!("sink: sensor {sink} at ({sx:.3}, {sy:.3})");
    let budget = 60;
    println!("link budget: k = {budget}\n");

    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12}",
        "algorithm", "E[flow]", "reached*", "sampled", "time"
    );
    // One session amortizes the per-graph state across all six runs.
    let session = Session::new(graph).with_seed(7);
    for alg in [
        Algorithm::Dijkstra,
        Algorithm::Ft,
        Algorithm::FtM,
        Algorithm::FtMCi,
        Algorithm::FtMDs,
        Algorithm::FtMCiDs,
    ] {
        let run = session
            .query(sink)
            .expect("sink is a graph vertex")
            .algorithm(alg)
            .budget(budget)
            .run()
            .expect("valid query");
        // "reached": number of distinct sensors touched by selected links.
        let mut touched = std::collections::HashSet::new();
        for &e in &run.selected {
            let (a, b) = graph.endpoints(e);
            touched.insert(a);
            touched.insert(b);
        }
        println!(
            "{:<12} {:>10.2} {:>10} {:>10} {:>10.1?}",
            alg.name(),
            run.flow,
            touched.len() - 1,
            run.metrics.components_sampled,
            run.elapsed,
        );
    }
    println!("\n* sensors incident to an activated link (excluding the sink)");
    println!(
        "Dijkstra builds a fragile tree: one failed link severs a whole branch.\n\
         The FT variants spend part of the budget on cycles that back up weak links."
    );
}
