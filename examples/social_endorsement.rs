//! Social endorsement scenario — the paper's §1 motivation.
//!
//! A professional networking service wants user Q to receive as many skill
//! endorsements as possible, but may only ask a limited number of user pairs
//! (edges) to interact. Close friends respond with high probability
//! (p ∈ [0.5, 1]); acquaintances with low probability (p ∈ (0, 0.5]).
//! The workload mirrors the paper's Facebook social-circle dataset.
//!
//! Run with: `cargo run --release --example social_endorsement`

use flowmax::datasets::SocialCircleConfig;
use flowmax::graph::GraphStats;
use flowmax::prelude::*;

fn main() {
    // A scaled-down circle so the demo finishes in seconds; pass --paper for
    // the full 535-user / 10k-edge shape.
    let full = std::env::args().any(|a| a == "--paper");
    let config = if full {
        SocialCircleConfig::paper()
    } else {
        SocialCircleConfig {
            vertices: 150,
            edges: 1200,
            ..SocialCircleConfig::paper()
        }
    };
    let graph = config.generate(99);
    let q = suggest_query(&graph);

    let close = graph
        .edges()
        .filter(|(id, _)| SocialCircleConfig::is_close_friend_edge(&graph, *id))
        .count();
    println!("social circle: {}", GraphStats::compute(&graph));
    println!(
        "{} of {} ties are close friendships (p ≥ 0.5); query user: {q}",
        close,
        graph.edge_count()
    );
    let budget = 40;
    println!("interaction budget: k = {budget}\n");

    println!(
        "{:<12} {:>12} {:>10} {:>12}",
        "algorithm", "E[endorse]", "probes", "time"
    );
    let session = Session::new(&graph).with_seed(5);
    for alg in [Algorithm::Dijkstra, Algorithm::FtM, Algorithm::FtMCiDs] {
        let run = session
            .query(q)
            .expect("q is a graph vertex")
            .algorithm(alg)
            .budget(budget)
            .run()
            .expect("valid query");
        println!(
            "{:<12} {:>12.2} {:>10} {:>10.1?}",
            alg.name(),
            run.flow,
            run.metrics.probes,
            run.elapsed,
        );
    }
    println!(
        "\nDense social graphs punish spanning trees hardest (paper Fig. 9b): long\n\
         tree paths to well-connected users are far weaker than short cyclic routes."
    );
}
