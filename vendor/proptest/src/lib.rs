//! Offline stand-in for the subset of the `proptest` API used by the
//! `flowmax` workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! source-compatible implementations of the pieces the test suite imports:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`strategy::Just`], [`collection::vec`],
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case panics with the generated value's
//!   `Debug` output (via the assertion message) but is not minimized.
//! * **Deterministic seeding** — each `proptest!` test derives its RNG seed
//!   from the test's name, so failures always reproduce.
//!
//! If the workspace ever gains registry access, deleting `vendor/` and
//! pointing `Cargo.toml` at crates.io versions is a drop-in swap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test-runner configuration and the deterministic RNG behind it.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator driving value generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator seeded by hashing `name` (FNV-1a), so each
        /// property test gets its own reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo < hi);
            lo + (self.next_u64() % (hi - lo) as u64) as usize
        }

        /// Uniform draw from `[0, 1]`.
        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of an associated type.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy is just a sampler.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn new_value(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.new_value(rng)).new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*}
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Half-open: use the [0, 1) unit divisor, not f64_unit's
                    // inclusive one, so `end` itself is never generated.
                    let unit = (rng.next_u64() >> 11) as f64
                        * (1.0 / (1u64 << 53) as f64);
                    self.start + (unit as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.f64_unit() as $t) * (hi - lo)
                }
            }
        )*}
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        }
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::ops::Range;

    /// An inclusive bound on generated collection lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Strategy generating `Vec`s whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi + 1);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import for property tests.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions that check a property over many generated
/// inputs.
///
/// Supported grammar (the subset flowmax uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]   // optional
///     /// docs and attributes pass through
///     #[test]
///     fn my_property(x in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $( $(#[$meta:meta])* fn $name:ident($pat:pat in $strat:expr) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strat = $strat;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    let $pat =
                        $crate::strategy::Strategy::new_value(&strat, &mut rng);
                    $body
                }
            }
        )*
    };
    (
        $( $(#[$meta:meta])* fn $name:ident($pat:pat in $strat:expr) $body:block )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($pat in $strat) $body )*
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9) {
            prop_assert!((3..9).contains(&x));
        }

        #[test]
        fn composite_strategies_compose(spec in (1usize..4).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0.0f64..=1.0, n))
        })) {
            let (n, xs) = spec;
            prop_assert_eq!(xs.len(), n);
            for x in xs {
                prop_assert!((0.0..=1.0).contains(&x));
            }
        }
    }
}
