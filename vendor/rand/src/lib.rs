//! Offline stand-in for the subset of the `rand` 0.8 API used by the
//! `flowmax` workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! source-compatible implementations of exactly the items the workspace
//! imports: [`Rng`], [`SeedableRng`], [`rngs::SmallRng`], [`thread_rng`],
//! [`seq::SliceRandom`], and [`distributions::Standard`]. The generator
//! behind [`rngs::SmallRng`] is xoshiro256++, the same algorithm family the
//! real `SmallRng` uses on 64-bit targets; streams are high-quality and
//! deterministic per seed, though bit-streams are not guaranteed identical
//! to upstream `rand`.
//!
//! If the workspace ever gains registry access, deleting `vendor/` and
//! pointing `Cargo.toml` at crates.io versions is a drop-in swap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A low-level source of randomness: the object-safe core of every RNG.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Converts this RNG into an iterator of samples from `distr`.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter::new(distr, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 finalizer used to expand one seed word into generator state.
#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words. Together with
        /// [`SmallRng::from_state`] this lets callers re-lay many generator
        /// states in structure-of-arrays form (e.g. for vectorized batch
        /// stepping) without re-deriving seeds; stepping the exported state
        /// with the xoshiro256++ recurrence yields exactly the
        /// [`RngCore::next_u64`] stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstructs a generator from raw state words previously obtained
        /// via [`SmallRng::state`] (or stepped externally).
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut x = state;
            SmallRng {
                s: [
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// A lazily seeded per-call generator backing [`crate::thread_rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        inner: SmallRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            // No OS entropy without external crates: derive a per-process,
            // per-call seed from the hasher's randomized state.
            use std::collections::hash_map::RandomState;
            use std::hash::{BuildHasher, Hasher};
            let mut h = RandomState::new().build_hasher();
            h.write_u64(0xF10A_11AB);
            ThreadRng {
                inner: SmallRng::seed_from_u64(h.finish()),
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Returns a nondeterministically seeded generator.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// Distributions for [`Rng::gen`] and [`Rng::sample_iter`].
pub mod distributions {
    use super::RngCore;
    use core::marker::PhantomData;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample using `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform over the whole domain for
    /// integers, uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*}
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// Iterator over repeated samples, returned by [`crate::Rng::sample_iter`].
    #[derive(Debug)]
    pub struct DistIter<D, R, T> {
        distr: D,
        rng: R,
        _marker: PhantomData<fn() -> T>,
    }

    impl<D, R, T> DistIter<D, R, T> {
        pub(crate) fn new(distr: D, rng: R) -> Self {
            DistIter {
                distr,
                rng,
                _marker: PhantomData,
            }
        }
    }

    impl<D, R, T> Iterator for DistIter<D, R, T>
    where
        D: Distribution<T>,
        R: RngCore,
    {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }

    /// Uniform-range sampling.
    pub mod uniform {
        use super::super::{Range, RangeInclusive, RngCore};

        /// A range that can be sampled uniformly, used by
        /// [`crate::Rng::gen_range`].
        pub trait SampleRange<T> {
            /// Draws one value uniformly from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! range_int {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let v = (rng.next_u64() as u128) % span;
                        (self.start as i128 + v as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as i128 - lo as i128 + 1) as u128;
                        let v = (rng.next_u64() as u128) % span;
                        (lo as i128 + v as i128) as $t
                    }
                }
            )*}
        }
        range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! range_float {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let unit = (rng.next_u64() >> 11) as $t
                            * (1.0 / (1u64 << 53) as $t);
                        self.start + unit * (self.end - self.start)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let unit = (rng.next_u64() >> 11) as $t
                            * (1.0 / ((1u64 << 53) - 1) as $t);
                        lo + unit * (hi - lo)
                    }
                }
            )*}
        }
        range_float!(f32, f64);
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait: random operations on slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_index(rng, self.len())])
            }
        }
    }

    fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
        (rng.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Standard;
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_iter_streams() {
        let r = SmallRng::seed_from_u64(4);
        let v: Vec<u32> = r.sample_iter(Standard).take(5).collect();
        assert_eq!(v.len(), 5);
    }
}
