//! Offline stand-in for the subset of the `criterion` benchmarking API used
//! by the `flowmax` workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! source-compatible [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BatchSize`], [`criterion_group!`] and [`criterion_main!`].
//!
//! Semantics mirror real criterion's two modes:
//!
//! * **Test mode** (no `--bench` in argv, i.e. `cargo test`): every
//!   benchmark body runs exactly once as a smoke test and nothing is timed.
//! * **Bench mode** (`cargo bench` passes `--bench`): each benchmark is
//!   warmed up, then timed over `sample_size` samples, and a mean
//!   time-per-iteration is printed. No HTML reports, outlier analysis, or
//!   statistical regression — just honest wall-clock means.
//!
//! If the workspace ever gains registry access, deleting `vendor/` and
//! pointing `Cargo.toml` at crates.io versions is a drop-in swap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `Bencher::iter_batched` amortizes setup cost. The stand-in runs every
/// batch with one input regardless; the variants exist for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Inputs of each batch sized per iteration count.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench executables with `--bench` under `cargo bench`
        // and without it under `cargo test`; mirror real criterion's switch.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion { bench_mode }
    }
}

impl Criterion {
    /// Parses command-line configuration (accepted for API parity).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            bench_mode: self.bench_mode,
            sample_size: 100,
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    bench_mode: bool,
    sample_size: usize,
    // Tie the group's lifetime to the Criterion that created it, as real
    // criterion does; keeps call sites source-compatible.
    #[allow(dead_code)]
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time (accepted for API parity).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        if !self.bench_mode {
            // Smoke-test mode: run the body once, untimed.
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            return self;
        }
        // Warm-up pass.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        // Timed samples.
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            iters += b.iters;
        }
        let per_iter = total.as_nanos() as f64 / iters.max(1) as f64;
        println!("{label:<60} {:>12.1} ns/iter ({iters} iters)", per_iter);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The per-benchmark timing handle.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut timed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
        }
        self.elapsed = timed;
    }
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        group.bench_function("iter", |b| b.iter(|| 2 + 2));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn smoke_mode_runs_each_body_once() {
        let mut c = Criterion { bench_mode: false };
        sample_bench(&mut c);
    }

    #[test]
    fn bench_mode_times_and_prints() {
        let mut c = Criterion { bench_mode: true };
        sample_bench(&mut c);
    }
}
