//! Edge-probability assignment models used by the workload generators.

use flowmax_graph::Probability;
use rand::Rng;

use flowmax_sampling::FlowRng;

/// How edge-existence probabilities are drawn for generated graphs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbabilityModel {
    /// Uniform in `[lo, hi] ⊆ (0, 1]`. The paper's default for synthetic,
    /// DBLP and YouTube graphs is `Uniform(0, 1]` — realized here as
    /// `lo = f64::EPSILON` to respect the open lower bound.
    Uniform {
        /// Lower bound (exclusive 0 is realized as a tiny positive value).
        lo: f64,
        /// Upper bound (≤ 1).
        hi: f64,
    },
    /// Exponential distance decay `p = exp(−lambda · distance)` — the San
    /// Joaquin road-network model of §7.1 with `lambda = 0.001` per metre.
    DistanceDecay {
        /// Decay rate per unit distance.
        lambda: f64,
    },
    /// Every edge gets the same probability (used by tests and the running
    /// example's "all edges 0.5" setting).
    Constant(f64),
}

impl ProbabilityModel {
    /// The paper's `U(0, 1]` default.
    pub fn uniform_unit() -> Self {
        ProbabilityModel::Uniform {
            lo: f64::EPSILON,
            hi: 1.0,
        }
    }

    /// Draws a probability; `distance` feeds the decay model and is ignored
    /// otherwise.
    pub fn sample(&self, rng: &mut FlowRng, distance: f64) -> Probability {
        match *self {
            ProbabilityModel::Uniform { lo, hi } => {
                debug_assert!(lo > 0.0 && hi <= 1.0 && lo <= hi);
                Probability::new_unchecked(rng.gen_range(lo..=hi))
            }
            ProbabilityModel::DistanceDecay { lambda } => {
                // exp(−λd) ∈ (0, 1] for d ≥ 0; clamp protects huge distances
                // from underflowing to exactly 0.
                Probability::new_unchecked((-lambda * distance).exp().max(1e-300))
            }
            ProbabilityModel::Constant(p) => Probability::new_unchecked(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_sampling::SeedSequence;

    #[test]
    fn uniform_stays_in_range() {
        let m = ProbabilityModel::Uniform { lo: 0.5, hi: 1.0 };
        let mut rng = SeedSequence::new(1).rng(0);
        for _ in 0..1000 {
            let p = m.sample(&mut rng, 0.0).value();
            assert!((0.5..=1.0).contains(&p));
        }
    }

    #[test]
    fn uniform_unit_is_valid() {
        let m = ProbabilityModel::uniform_unit();
        let mut rng = SeedSequence::new(2).rng(0);
        for _ in 0..1000 {
            let p = m.sample(&mut rng, 0.0).value();
            assert!(p > 0.0 && p <= 1.0);
        }
    }

    #[test]
    fn decay_matches_paper_examples() {
        // §7.1: 10m → 99%, 100m → 90%, 1km → 36%.
        let m = ProbabilityModel::DistanceDecay { lambda: 0.001 };
        let mut rng = SeedSequence::new(3).rng(0);
        assert!((m.sample(&mut rng, 10.0).value() - 0.99).abs() < 0.001);
        assert!((m.sample(&mut rng, 100.0).value() - 0.905).abs() < 0.001);
        assert!((m.sample(&mut rng, 1000.0).value() - 0.368).abs() < 0.001);
    }

    #[test]
    fn decay_never_reaches_zero() {
        let m = ProbabilityModel::DistanceDecay { lambda: 1.0 };
        let mut rng = SeedSequence::new(4).rng(0);
        let p = m.sample(&mut rng, 1e6);
        assert!(p.value() > 0.0);
    }

    #[test]
    fn constant_model() {
        let m = ProbabilityModel::Constant(0.5);
        let mut rng = SeedSequence::new(5).rng(0);
        assert_eq!(m.sample(&mut rng, 123.0).value(), 0.5);
    }
}
