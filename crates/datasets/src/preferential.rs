//! Preferential-attachment generator — substitute for the YouTube friendship
//! network (§7.1, Fig. 9(d)).
//!
//! The YouTube graph (1,134,890 vertices, 2,987,624 edges) is a sparse,
//! heavy-tailed, no-locality social network: exactly the regime the
//! Barabási–Albert process produces. Edge/vertex ratio ≈ 2.63, so each new
//! vertex attaches to ⌈2.63⌉ ≈ 3 existing vertices; we keep the ratio
//! configurable.

use flowmax_graph::{GraphBuilder, ProbabilisticGraph, VertexId};
use rand::Rng;

use flowmax_sampling::SeedSequence;

use crate::probabilities::ProbabilityModel;
use crate::weights::WeightModel;

/// Configuration for the Barabási–Albert-style generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreferentialConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Edges added per new vertex (YouTube shape: 3).
    pub edges_per_vertex: usize,
    /// Edge probability model (paper: uniform `(0, 1]`).
    pub probabilities: ProbabilityModel,
    /// Vertex weight model.
    pub weights: WeightModel,
}

impl PreferentialConfig {
    /// YouTube-shaped defaults at a given size.
    pub fn paper_scaled(vertices: usize) -> Self {
        PreferentialConfig {
            vertices,
            edges_per_vertex: 3,
            probabilities: ProbabilityModel::uniform_unit(),
            weights: WeightModel::paper_default(),
        }
    }

    /// Generates a scale-free network deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> ProbabilisticGraph {
        let n = self.vertices;
        let m = self.edges_per_vertex.max(1);
        assert!(n > m, "need more vertices than edges-per-vertex");
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);

        let mut b = GraphBuilder::with_capacity(n, n * m);
        for _ in 0..n {
            let w = self.weights.sample(&mut rng);
            b.add_vertex(w);
        }

        // Repeated-endpoint list: picking uniformly from `endpoints` selects
        // a vertex with probability proportional to its degree.
        let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
        // Seed clique over the first m+1 vertices.
        for i in 0..=(m as u32) {
            for j in 0..i {
                b.add_edge(
                    VertexId(i),
                    VertexId(j),
                    self.probabilities.sample(&mut rng, 0.0),
                )
                .expect("seed clique unique");
                endpoints.push(i);
                endpoints.push(j);
            }
        }
        let mut targets: Vec<u32> = Vec::with_capacity(m);
        for v in (m as u32 + 1)..n as u32 {
            targets.clear();
            let mut guard = 0;
            while targets.len() < m && guard < 100 * m {
                guard += 1;
                let t = endpoints[rng.gen_range(0..endpoints.len())];
                if t != v && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            for &t in &targets {
                b.add_edge(
                    VertexId(v),
                    VertexId(t),
                    self.probabilities.sample(&mut rng, 0.0),
                )
                .expect("targets deduplicated and v is new");
                endpoints.push(v);
                endpoints.push(t);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::GraphStats;

    #[test]
    fn youtube_like_ratio() {
        let g = PreferentialConfig::paper_scaled(10_000).generate(1);
        assert_eq!(g.vertex_count(), 10_000);
        let ratio = g.edge_count() as f64 / g.vertex_count() as f64;
        assert!((2.5..=3.2).contains(&ratio), "edge/vertex ratio {ratio}");
    }

    #[test]
    fn heavy_tailed_degrees() {
        let g = PreferentialConfig::paper_scaled(5_000).generate(2);
        let s = GraphStats::compute(&g);
        assert!(
            s.max_degree > 50,
            "preferential attachment must produce hubs (max degree {})",
            s.max_degree
        );
        assert!(s.min_degree >= 3, "every non-seed vertex attaches m times");
    }

    #[test]
    fn connected_single_component() {
        let g = PreferentialConfig::paper_scaled(2_000).generate(3);
        let s = GraphStats::compute(&g);
        assert_eq!(s.component_count, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let c = PreferentialConfig::paper_scaled(500);
        let a = c.generate(4);
        let b = c.generate(4);
        assert_eq!(a.edge_count(), b.edge_count());
        for (id, e) in a.edges() {
            assert_eq!(e.endpoints(), b.edge(id).endpoints());
            assert_eq!(e.probability, b.edge(id).probability);
        }
    }

    #[test]
    fn small_world_diameter_spot_check() {
        // No locality: hop distance from vertex 0 to everything is tiny.
        let g = PreferentialConfig::paper_scaled(3_000).generate(5);
        let mut dist = vec![usize::MAX; g.vertex_count()];
        dist[0] = 0;
        let mut q = std::collections::VecDeque::from([VertexId(0)]);
        while let Some(u) = q.pop_front() {
            for (v, _) in g.neighbors(u) {
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    q.push_back(v);
                }
            }
        }
        let max = dist.iter().copied().max().unwrap();
        assert!(max <= 8, "scale-free diameter should be tiny, got {max}");
    }
}
