//! Wireless-sensor-network generator: a random geometric graph (§7.1 "WSN",
//! Fig. 8).
//!
//! Vertices receive uniform coordinates in the unit square; two sensors are
//! connected iff their Euclidean distance is at most `epsilon`. Spatial
//! hashing keeps generation `O(n)` for the paper's densities.

use flowmax_graph::{GraphBuilder, ProbabilisticGraph, VertexId};
use rand::Rng;

use flowmax_sampling::SeedSequence;

use crate::probabilities::ProbabilityModel;
use crate::weights::WeightModel;

/// Configuration for the random geometric (WSN) generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WsnConfig {
    /// Number of sensors.
    pub vertices: usize,
    /// Connection radius ε (paper uses 0.05 and 0.07 at `n = 1000`).
    pub epsilon: f64,
    /// Edge probability model (paper: uniform `(0, 1]`).
    pub probabilities: ProbabilityModel,
    /// Vertex weight model.
    pub weights: WeightModel,
}

/// A generated WSN: the graph plus sensor coordinates (useful for plots and
/// for distance-based probability models).
#[derive(Debug, Clone)]
pub struct WsnGraph {
    /// The uncertain graph.
    pub graph: ProbabilisticGraph,
    /// `positions[v] = (x, y) ∈ [0,1]²`.
    pub positions: Vec<(f64, f64)>,
}

impl WsnConfig {
    /// The paper's Fig. 8 settings.
    pub fn paper(vertices: usize, epsilon: f64) -> Self {
        WsnConfig {
            vertices,
            epsilon,
            probabilities: ProbabilityModel::uniform_unit(),
            weights: WeightModel::paper_default(),
        }
    }

    /// Generates a WSN deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> WsnGraph {
        assert!(
            self.epsilon > 0.0 && self.epsilon < 1.0,
            "epsilon must be in (0,1)"
        );
        let n = self.vertices;
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);

        let positions: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();

        // Spatial hash: cells of side epsilon; a vertex can only connect to
        // vertices in its own or the 8 neighbouring cells.
        let cells_per_axis = (1.0 / self.epsilon).ceil() as i64;
        let cell_of = |x: f64, y: f64| -> (i64, i64) {
            (
                ((x * cells_per_axis as f64) as i64).min(cells_per_axis - 1),
                ((y * cells_per_axis as f64) as i64).min(cells_per_axis - 1),
            )
        };
        let mut grid: std::collections::HashMap<(i64, i64), Vec<u32>> =
            std::collections::HashMap::new();
        for (i, &(x, y)) in positions.iter().enumerate() {
            grid.entry(cell_of(x, y)).or_default().push(i as u32);
        }

        let mut b = GraphBuilder::with_capacity(n, n * 4);
        for _ in 0..n {
            let w = self.weights.sample(&mut rng);
            b.add_vertex(w);
        }
        let eps2 = self.epsilon * self.epsilon;
        for (i, &(x, y)) in positions.iter().enumerate() {
            let (cx, cy) = cell_of(x, y);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(cell) = grid.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &j in cell {
                        if (j as usize) <= i {
                            continue; // handle each pair once
                        }
                        let (xj, yj) = positions[j as usize];
                        let d2 = (x - xj).powi(2) + (y - yj).powi(2);
                        if d2 <= eps2 {
                            let p = self.probabilities.sample(&mut rng, d2.sqrt());
                            b.add_edge(VertexId(i as u32), VertexId(j), p)
                                .expect("pairs are visited once");
                        }
                    }
                }
            }
        }
        WsnGraph {
            graph: b.build(),
            positions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_respect_epsilon() {
        let wsn = WsnConfig::paper(300, 0.08).generate(11);
        for (_, e) in wsn.graph.edges() {
            let (a, b) = e.endpoints();
            let (xa, ya) = wsn.positions[a.index()];
            let (xb, yb) = wsn.positions[b.index()];
            let d = ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt();
            assert!(d <= 0.08 + 1e-12, "edge of length {d}");
        }
    }

    #[test]
    fn all_close_pairs_are_connected() {
        let wsn = WsnConfig::paper(150, 0.1).generate(5);
        let n = wsn.graph.vertex_count();
        for i in 0..n {
            for j in i + 1..n {
                let (xa, ya) = wsn.positions[i];
                let (xb, yb) = wsn.positions[j];
                let d = ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt();
                if d <= 0.1 {
                    assert!(
                        wsn.graph
                            .edge_between(VertexId(i as u32), VertexId(j as u32))
                            .is_some(),
                        "pair at distance {d} must be connected"
                    );
                }
            }
        }
    }

    #[test]
    fn density_grows_with_epsilon() {
        let sparse = WsnConfig::paper(500, 0.05).generate(1).graph.edge_count();
        let dense = WsnConfig::paper(500, 0.07).generate(1).graph.edge_count();
        assert!(
            dense > sparse,
            "ε=0.07 must be denser than ε=0.05 ({dense} vs {sparse})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let c = WsnConfig::paper(100, 0.1);
        let a = c.generate(3);
        let b = c.generate(3);
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }

    #[test]
    fn expected_density_ballpark() {
        // E[deg] ≈ n·π·ε² for interior vertices; allow generous slack for
        // boundary effects.
        let n = 2000;
        let eps = 0.05;
        let g = WsnConfig::paper(n, eps).generate(7).graph;
        let mean_deg = 2.0 * g.edge_count() as f64 / n as f64;
        let expected = n as f64 * std::f64::consts::PI * eps * eps;
        assert!(
            mean_deg > expected * 0.7 && mean_deg < expected * 1.1,
            "mean degree {mean_deg}, analytic {expected}"
        );
    }
}
