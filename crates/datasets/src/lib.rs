//! # flowmax-datasets
//!
//! Workload generators and loaders for the `flowmax` evaluation (§7.1 of the
//! paper): synthetic graphs with and without the locality assumption, and
//! simulated substitutes for the paper's real datasets (Facebook circles,
//! DBLP, YouTube, San Joaquin road network). All generators are deterministic
//! given a `u64` seed; substitutions are documented in `DESIGN.md` §3.4.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collaboration;
pub mod erdos;
pub mod loader;
pub mod partitioned;
pub mod preferential;
pub mod probabilities;
pub mod road;
pub mod social_circle;
pub mod spec;
pub mod weights;
pub mod wsn;

pub use collaboration::CollaborationConfig;
pub use erdos::ErdosConfig;
pub use loader::{load_edge_list, LoadedGraph};
pub use partitioned::PartitionedConfig;
pub use preferential::PreferentialConfig;
pub use probabilities::ProbabilityModel;
pub use road::{RoadConfig, RoadGraph};
pub use social_circle::SocialCircleConfig;
pub use spec::{suggest_query, DatasetSpec};
pub use weights::WeightModel;
pub use wsn::{WsnConfig, WsnGraph};
