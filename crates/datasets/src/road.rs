//! Synthetic road network — substitute for the San Joaquin County dataset
//! (§7.1, Fig. 9(a)).
//!
//! The real dataset (18,263 intersections, 23,874 road segments) is not
//! redistributable here, so we synthesize a planar network with the same
//! three properties §7 relies on: strong locality, near-planar sparsity
//! (edge/vertex ratio ≈ 1.3), and the paper's own distance-decay probability
//! model `p = exp(−0.001 · distance_m)`.
//!
//! Construction: a jittered `w × h` grid of intersections; a random spanning
//! tree guarantees connectivity; extra grid edges are added uniformly until
//! the target edge/vertex ratio is met.

use flowmax_graph::{GraphBuilder, ProbabilisticGraph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

use flowmax_sampling::SeedSequence;

use crate::probabilities::ProbabilityModel;
use crate::weights::WeightModel;

/// Configuration for the synthetic road-network generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoadConfig {
    /// Grid width (number of intersection columns).
    pub width: usize,
    /// Grid height.
    pub height: usize,
    /// Mean segment length in metres (San Joaquin scale: a few hundred).
    pub spacing_m: f64,
    /// Relative position jitter (fraction of spacing).
    pub jitter: f64,
    /// Target edge/vertex ratio (San Joaquin: 23,874 / 18,263 ≈ 1.31).
    pub edge_vertex_ratio: f64,
    /// Probability model (the paper's decay: `lambda = 0.001` per metre).
    pub probabilities: ProbabilityModel,
    /// Vertex weight model.
    pub weights: WeightModel,
}

/// A generated road network with intersection coordinates in metres.
#[derive(Debug, Clone)]
pub struct RoadGraph {
    /// The uncertain graph.
    pub graph: ProbabilisticGraph,
    /// `positions[v] = (x_m, y_m)`.
    pub positions: Vec<(f64, f64)>,
}

impl RoadConfig {
    /// San-Joaquin-shaped defaults at a given grid size.
    pub fn paper(width: usize, height: usize) -> Self {
        RoadConfig {
            width,
            height,
            spacing_m: 500.0,
            jitter: 0.25,
            edge_vertex_ratio: 1.31,
            probabilities: ProbabilityModel::DistanceDecay { lambda: 0.001 },
            weights: WeightModel::paper_default(),
        }
    }

    /// Generates a road network deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> RoadGraph {
        let (w, h) = (self.width, self.height);
        assert!(w >= 2 && h >= 2, "grid must be at least 2x2");
        let n = w * h;
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);

        // Jittered intersection positions.
        let positions: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let gx = (i % w) as f64;
                let gy = (i / w) as f64;
                let jx = rng.gen_range(-self.jitter..=self.jitter);
                let jy = rng.gen_range(-self.jitter..=self.jitter);
                ((gx + jx) * self.spacing_m, (gy + jy) * self.spacing_m)
            })
            .collect();

        // Candidate segments: the 4-neighbour grid edges.
        let mut candidates: Vec<(u32, u32)> = Vec::with_capacity(2 * n);
        for y in 0..h {
            for x in 0..w {
                let i = (y * w + x) as u32;
                if x + 1 < w {
                    candidates.push((i, i + 1));
                }
                if y + 1 < h {
                    candidates.push((i, i + w as u32));
                }
            }
        }
        candidates.shuffle(&mut rng);

        // Spanning tree first (union-find over shuffled candidates), then
        // extra edges until the target ratio.
        let target_edges = ((n as f64 * self.edge_vertex_ratio) as usize).min(candidates.len());
        let mut uf = flowmax_graph::UnionFind::new(n);
        let mut chosen: Vec<(u32, u32)> = Vec::with_capacity(target_edges);
        let mut extras: Vec<(u32, u32)> = Vec::new();
        for &(a, b) in &candidates {
            if uf.union(VertexId(a), VertexId(b)) {
                chosen.push((a, b));
            } else {
                extras.push((a, b));
            }
        }
        for &(a, b) in extras.iter() {
            if chosen.len() >= target_edges {
                break;
            }
            chosen.push((a, b));
        }

        let mut builder = GraphBuilder::with_capacity(n, chosen.len());
        for _ in 0..n {
            let wv = self.weights.sample(&mut rng);
            builder.add_vertex(wv);
        }
        for &(a, b) in &chosen {
            let (xa, ya) = positions[a as usize];
            let (xb, yb) = positions[b as usize];
            let dist = ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt();
            let p = self.probabilities.sample(&mut rng, dist);
            builder
                .add_edge(VertexId(a), VertexId(b), p)
                .expect("grid edges are unique");
        }
        RoadGraph {
            graph: builder.build(),
            positions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::GraphStats;

    #[test]
    fn connected_and_sparse() {
        let r = RoadConfig::paper(30, 30).generate(1);
        let s = GraphStats::compute(&r.graph);
        assert_eq!(
            s.component_count, 1,
            "spanning tree guarantees connectivity"
        );
        let ratio = s.edge_count as f64 / s.vertex_count as f64;
        assert!((ratio - 1.31).abs() < 0.05, "edge/vertex ratio {ratio}");
    }

    #[test]
    fn probabilities_follow_distance_decay() {
        let r = RoadConfig::paper(10, 10).generate(2);
        for (_, e) in r.graph.edges() {
            let (a, b) = e.endpoints();
            let (xa, ya) = r.positions[a.index()];
            let (xb, yb) = r.positions[b.index()];
            let d = ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt();
            let expected = (-0.001 * d).exp();
            assert!((e.probability.value() - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn locality_degree_bounded_by_four() {
        let r = RoadConfig::paper(20, 20).generate(3);
        for v in r.graph.vertices() {
            assert!(r.graph.degree(v) <= 4, "grid degree bound");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = RoadConfig::paper(8, 8);
        let a = c.generate(5);
        let b = c.generate(5);
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }

    #[test]
    fn san_joaquin_scale_dimensions() {
        // 135 × 135 ≈ 18k vertices, ≈ 24k edges: the real dataset's shape.
        let c = RoadConfig::paper(135, 135);
        let r = c.generate(7);
        assert_eq!(r.graph.vertex_count(), 18_225);
        let ratio = r.graph.edge_count() as f64 / r.graph.vertex_count() as f64;
        assert!((ratio - 1.31).abs() < 0.02);
    }
}
