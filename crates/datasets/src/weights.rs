//! Vertex-weight assignment models.
//!
//! The paper's synthetic experiments draw integer weights uniformly from
//! `[0, 10]`; the running example of Fig. 1 uses unit weights.

use flowmax_graph::Weight;
use rand::Rng;

use flowmax_sampling::FlowRng;

/// How vertex information weights are drawn for generated graphs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightModel {
    /// Every vertex carries the same weight.
    Constant(f64),
    /// Integer weights uniform in `[lo, hi]` (inclusive) — the paper's
    /// synthetic default is `[0, 10]`.
    UniformInt {
        /// Smallest weight (inclusive).
        lo: u32,
        /// Largest weight (inclusive).
        hi: u32,
    },
}

impl WeightModel {
    /// The paper's synthetic default: integers uniform in `[0, 10]`.
    pub fn paper_default() -> Self {
        WeightModel::UniformInt { lo: 0, hi: 10 }
    }

    /// Unit weights (Fig. 1: "each node has one unit of information").
    pub fn unit() -> Self {
        WeightModel::Constant(1.0)
    }

    /// Draws a weight.
    pub fn sample(&self, rng: &mut FlowRng) -> Weight {
        match *self {
            WeightModel::Constant(w) => Weight::new_unchecked(w),
            WeightModel::UniformInt { lo, hi } => {
                Weight::new_unchecked(rng.gen_range(lo..=hi) as f64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_sampling::SeedSequence;

    #[test]
    fn constant_weights() {
        let mut rng = SeedSequence::new(1).rng(0);
        assert_eq!(WeightModel::unit().sample(&mut rng).value(), 1.0);
    }

    #[test]
    fn uniform_int_range_and_integrality() {
        let m = WeightModel::paper_default();
        let mut rng = SeedSequence::new(2).rng(0);
        let mut seen_zero = false;
        let mut seen_ten = false;
        for _ in 0..2000 {
            let w = m.sample(&mut rng).value();
            assert!((0.0..=10.0).contains(&w));
            assert_eq!(w.fract(), 0.0, "weights must be integers");
            seen_zero |= w == 0.0;
            seen_ten |= w == 10.0;
        }
        assert!(seen_zero && seen_ten, "bounds should both be attainable");
    }
}
