//! The *partitioned* generator — the paper's locality-assumption synthetic
//! workload (§7.1).
//!
//! Vertices are split into a ring of partitions; every vertex connects to all
//! vertices of the previous and next partition, giving a regular graph whose
//! diameter equals the partition count minus one — the knob the paper uses to
//! force locality.
//!
//! Note a typo in the paper: it states "`n = 2|V|/d` partitions of size `d`",
//! but connecting to both neighbouring partitions of size `d` would give
//! degree `2d`, and `(2|V|/d) · d = 2|V|` vertices. The consistent reading —
//! implemented here — is partitions of size `d/2`, of which there are
//! `2|V|/d`, yielding the stated uniform degree `d`.

use flowmax_graph::{GraphBuilder, ProbabilisticGraph, VertexId};
use flowmax_sampling::SeedSequence;

use crate::probabilities::ProbabilityModel;
use crate::weights::WeightModel;

/// Configuration for the partitioned ring generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionedConfig {
    /// Number of vertices (rounded down to a multiple of the partition size).
    pub vertices: usize,
    /// Uniform vertex degree `d`; the partition size is `d/2` (min 1).
    pub degree: usize,
    /// Edge probability model.
    pub probabilities: ProbabilityModel,
    /// Vertex weight model.
    pub weights: WeightModel,
}

impl PartitionedConfig {
    /// The paper's defaults at a given size and degree.
    pub fn paper(vertices: usize, degree: usize) -> Self {
        PartitionedConfig {
            vertices,
            degree,
            probabilities: ProbabilityModel::uniform_unit(),
            weights: WeightModel::paper_default(),
        }
    }

    /// Partition size `d/2` (at least 1).
    pub fn partition_size(&self) -> usize {
        (self.degree / 2).max(1)
    }

    /// Number of ring partitions.
    pub fn partition_count(&self) -> usize {
        self.vertices / self.partition_size()
    }

    /// Generates a graph deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> ProbabilisticGraph {
        let size = self.partition_size();
        let parts = self.partition_count();
        assert!(
            parts >= 3,
            "need at least 3 partitions for a ring (got {parts})"
        );
        let n = parts * size;

        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);
        let mut b = GraphBuilder::with_capacity(n, n * size);
        for _ in 0..n {
            let w = self.weights.sample(&mut rng);
            b.add_vertex(w);
        }
        // Vertex v belongs to partition v / size. Connect each partition to
        // the next one (mod parts); "previous" follows by symmetry.
        for pi in 0..parts {
            let pj = (pi + 1) % parts;
            for a in 0..size {
                for bv in 0..size {
                    let u = VertexId((pi * size + a) as u32);
                    let v = VertexId((pj * size + bv) as u32);
                    let p = self.probabilities.sample(&mut rng, 0.0);
                    b.add_edge(u, v, p)
                        .expect("ring construction has no duplicates");
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::{EdgeSubset, GraphStats};

    #[test]
    fn degree_is_uniform() {
        let c = PartitionedConfig::paper(120, 6);
        let g = c.generate(1);
        assert_eq!(c.partition_size(), 3);
        assert_eq!(c.partition_count(), 40);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 6, "vertex {v:?}");
        }
    }

    #[test]
    fn diameter_tracks_partition_count() {
        // BFS hop count from vertex 0 to the antipodal partition ≈ parts/2.
        let c = PartitionedConfig::paper(60, 6);
        let g = c.generate(2);
        let parts = c.partition_count();
        let active = EdgeSubset::full(&g);
        // Hop distance via repeated BFS layers.
        let mut dist = vec![usize::MAX; g.vertex_count()];
        let mut bfs = flowmax_graph::Bfs::new(g.vertex_count());
        let mut order = Vec::new();
        bfs.run(&g, VertexId(0), |e| active.contains(e), |v| order.push(v));
        // Recompute distances properly (BFS visits in level order).
        dist[0] = 0;
        let mut queue = std::collections::VecDeque::from([VertexId(0)]);
        while let Some(u) = queue.pop_front() {
            for (v, _) in g.neighbors(u) {
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    queue.push_back(v);
                }
            }
        }
        let max_dist = dist.iter().copied().max().unwrap();
        assert!(
            max_dist >= parts / 2,
            "locality: diameter {max_dist} >= {}",
            parts / 2
        );
        assert!(max_dist <= parts, "ring bound");
    }

    #[test]
    fn odd_degree_rounds_partition_size_down() {
        let c = PartitionedConfig::paper(100, 7);
        assert_eq!(c.partition_size(), 3);
        let g = c.generate(3);
        // Degree becomes 2 * partition_size = 6.
        for v in g.vertices() {
            assert_eq!(g.degree(v), 6);
        }
    }

    #[test]
    fn graph_is_connected() {
        let g = PartitionedConfig::paper(200, 8).generate(4);
        let s = GraphStats::compute(&g);
        assert_eq!(s.component_count, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let c = PartitionedConfig::paper(60, 4);
        let a = c.generate(9);
        let b = c.generate(9);
        for (id, e) in a.edges() {
            assert_eq!(e.probability, b.edge(id).probability);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3 partitions")]
    fn too_few_partitions_rejected() {
        PartitionedConfig::paper(4, 6).generate(0);
    }
}
