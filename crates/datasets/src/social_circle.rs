//! Social-circle generator — substitute for the Facebook "social circles"
//! dataset (§7.1, Fig. 9(b)).
//!
//! The paper's snapshot is a *highly connected* circle of 535 users with 10k
//! edges, post-processed with the close-friends probability model of \[36\]:
//! 10 random neighbours per user receive probabilities uniform in
//! `[0.5, 1.0]` ("close friends", ≈20 per user by symmetry), every other edge
//! uniform in `(0, 0.5]`. We synthesize the same shape: a dense uniform
//! random graph at the same size/density plus exactly that probability
//! post-processing.

use std::collections::HashSet;

use flowmax_graph::{EdgeId, GraphBuilder, ProbabilisticGraph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

use flowmax_sampling::SeedSequence;

use crate::weights::WeightModel;

/// Configuration for the social-circle generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocialCircleConfig {
    /// Number of users (paper: 535).
    pub vertices: usize,
    /// Number of friendship edges (paper: 10,000).
    pub edges: usize,
    /// Close friends per user receiving high probabilities (paper: 10).
    pub close_friends_per_user: usize,
    /// Vertex weight model.
    pub weights: WeightModel,
}

impl SocialCircleConfig {
    /// The paper's Facebook-circle shape.
    pub fn paper() -> Self {
        SocialCircleConfig {
            vertices: 535,
            edges: 10_000,
            close_friends_per_user: 10,
            weights: WeightModel::paper_default(),
        }
    }

    /// Generates the social circle deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> ProbabilisticGraph {
        let n = self.vertices;
        assert!(n >= 2);
        let max_edges = n * (n - 1) / 2;
        let m = self.edges.min(max_edges);
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);

        // Dense uniform topology.
        let mut pairs: HashSet<(u32, u32)> = HashSet::with_capacity(m);
        while pairs.len() < m {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                pairs.insert((u.min(v), u.max(v)));
            }
        }
        let mut edge_list: Vec<(u32, u32)> = pairs.into_iter().collect();
        edge_list.sort_unstable();

        // Close-friend marking: each user promotes up to
        // `close_friends_per_user` random incident edges.
        let mut incident: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, &(u, v)) in edge_list.iter().enumerate() {
            incident[u as usize].push(i as u32);
            incident[v as usize].push(i as u32);
        }
        let mut is_close = vec![false; edge_list.len()];
        for user_edges in incident.iter_mut() {
            user_edges.shuffle(&mut rng);
            for &e in user_edges.iter().take(self.close_friends_per_user) {
                is_close[e as usize] = true;
            }
        }

        let mut b = GraphBuilder::with_capacity(n, edge_list.len());
        for _ in 0..n {
            let w = self.weights.sample(&mut rng);
            b.add_vertex(w);
        }
        for (i, &(u, v)) in edge_list.iter().enumerate() {
            let p = if is_close[i] {
                rng.gen_range(0.5..=1.0)
            } else {
                // (0, 0.5]: avoid exactly 0.
                let x: f64 = rng.gen_range(0.0..0.5);
                (0.5 - x).max(f64::EPSILON)
            };
            b.add_edge(
                VertexId(u),
                VertexId(v),
                flowmax_graph::Probability::new(p).expect("generated probability is valid"),
            )
            .expect("edge list deduplicated");
        }
        b.build()
    }

    /// Classifies an edge of a generated graph as "close friend" by its
    /// probability (the generator's own criterion).
    pub fn is_close_friend_edge(graph: &ProbabilisticGraph, e: EdgeId) -> bool {
        graph.probability(e).value() >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::GraphStats;

    #[test]
    fn paper_shape() {
        let g = SocialCircleConfig::paper().generate(1);
        assert_eq!(g.vertex_count(), 535);
        assert_eq!(g.edge_count(), 10_000);
        let s = GraphStats::compute(&g);
        assert!(
            s.mean_degree > 30.0,
            "dense circle: mean degree {}",
            s.mean_degree
        );
        assert_eq!(s.component_count, 1);
    }

    #[test]
    fn close_friend_counts_average_near_twenty() {
        let g = SocialCircleConfig::paper().generate(2);
        let mut close_deg = vec![0usize; g.vertex_count()];
        for (id, e) in g.edges() {
            if SocialCircleConfig::is_close_friend_edge(&g, id) {
                close_deg[e.source.index()] += 1;
                close_deg[e.target.index()] += 1;
            }
        }
        let mean: f64 = close_deg.iter().sum::<usize>() as f64 / g.vertex_count() as f64;
        // Each user promotes 10; overlap and symmetry put the mean close to
        // but below 20 (§7.1: "an average user has 20 close friends").
        assert!(
            (13.0..=20.0).contains(&mean),
            "mean close-friend degree {mean}"
        );
    }

    #[test]
    fn probability_split_respected() {
        let g = SocialCircleConfig::paper().generate(3);
        let mut high = 0usize;
        for (_, e) in g.edges() {
            let p = e.probability.value();
            assert!(p > 0.0 && p <= 1.0);
            if p >= 0.5 {
                high += 1;
            }
        }
        // ~535·10 promotions with overlap → a quarter to a half of edges.
        assert!(
            high > 2_000 && high < 6_000,
            "{high} high-probability edges"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let c = SocialCircleConfig::paper();
        let a = c.generate(9);
        let b = c.generate(9);
        for (id, e) in a.edges() {
            assert_eq!(e.probability, b.edge(id).probability);
        }
    }

    #[test]
    fn tiny_instance_clamps_edges() {
        let c = SocialCircleConfig {
            vertices: 5,
            edges: 100,
            close_friends_per_user: 2,
            weights: WeightModel::unit(),
        };
        let g = c.generate(0);
        assert_eq!(g.edge_count(), 10, "clamped to complete graph");
    }
}
