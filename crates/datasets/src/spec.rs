//! Dataset specifications: a uniform handle over every workload so the
//! experiment harness can enumerate, build and describe them.

use flowmax_graph::{ProbabilisticGraph, VertexId};

use crate::collaboration::CollaborationConfig;
use crate::erdos::ErdosConfig;
use crate::partitioned::PartitionedConfig;
use crate::preferential::PreferentialConfig;
use crate::road::RoadConfig;
use crate::social_circle::SocialCircleConfig;
use crate::wsn::WsnConfig;

/// A self-describing workload specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DatasetSpec {
    /// Erdős–Rényi, no locality (§7.1 "Erdös").
    Erdos(ErdosConfig),
    /// Partitioned ring, locality (§7.1 "partitioned").
    Partitioned(PartitionedConfig),
    /// Random geometric WSN (§7.1 "WSN").
    Wsn(WsnConfig),
    /// Synthetic road network (San Joaquin substitute).
    Road(RoadConfig),
    /// Facebook-circle substitute.
    SocialCircle(SocialCircleConfig),
    /// DBLP substitute.
    Collaboration(CollaborationConfig),
    /// YouTube substitute.
    Preferential(PreferentialConfig),
}

impl DatasetSpec {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetSpec::Erdos(_) => "erdos",
            DatasetSpec::Partitioned(_) => "partitioned",
            DatasetSpec::Wsn(_) => "wsn",
            DatasetSpec::Road(_) => "road",
            DatasetSpec::SocialCircle(_) => "social-circle",
            DatasetSpec::Collaboration(_) => "collaboration",
            DatasetSpec::Preferential(_) => "preferential",
        }
    }

    /// Whether the workload has the paper's locality assumption.
    pub fn has_locality(&self) -> bool {
        matches!(
            self,
            DatasetSpec::Partitioned(_) | DatasetSpec::Wsn(_) | DatasetSpec::Road(_)
        )
    }

    /// Builds the graph deterministically from `seed`.
    pub fn build(&self, seed: u64) -> ProbabilisticGraph {
        match self {
            DatasetSpec::Erdos(c) => c.generate(seed),
            DatasetSpec::Partitioned(c) => c.generate(seed),
            DatasetSpec::Wsn(c) => c.generate(seed).graph,
            DatasetSpec::Road(c) => c.generate(seed).graph,
            DatasetSpec::SocialCircle(c) => c.generate(seed),
            DatasetSpec::Collaboration(c) => c.generate(seed),
            DatasetSpec::Preferential(c) => c.generate(seed),
        }
    }
}

/// Picks a sensible query vertex for experiments: the highest-degree vertex.
/// The paper does not specify its choice of `Q`; a hub guarantees the greedy
/// loop always has candidates and makes runs comparable across algorithms.
pub fn suggest_query(graph: &ProbabilisticGraph) -> VertexId {
    graph
        .vertices()
        .max_by_key(|&v| graph.degree(v))
        .expect("graph must have at least one vertex")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_build() {
        let specs = [
            DatasetSpec::Erdos(ErdosConfig::paper(200, 5.0)),
            DatasetSpec::Partitioned(PartitionedConfig::paper(120, 6)),
            DatasetSpec::Wsn(WsnConfig::paper(150, 0.1)),
            DatasetSpec::Road(RoadConfig::paper(8, 8)),
            DatasetSpec::SocialCircle(SocialCircleConfig {
                vertices: 50,
                edges: 300,
                close_friends_per_user: 5,
                weights: crate::weights::WeightModel::unit(),
            }),
            DatasetSpec::Collaboration(CollaborationConfig::paper_scaled(200)),
            DatasetSpec::Preferential(PreferentialConfig::paper_scaled(200)),
        ];
        for spec in specs {
            let g = spec.build(1);
            assert!(g.vertex_count() > 0, "{} is empty", spec.name());
            assert!(g.edge_count() > 0, "{} has no edges", spec.name());
            let q = suggest_query(&g);
            assert!(
                g.degree(q) >= 1,
                "{}: query must have neighbours",
                spec.name()
            );
        }
    }

    #[test]
    fn locality_classification() {
        assert!(DatasetSpec::Partitioned(PartitionedConfig::paper(60, 4)).has_locality());
        assert!(DatasetSpec::Road(RoadConfig::paper(4, 4)).has_locality());
        assert!(!DatasetSpec::Erdos(ErdosConfig::paper(10, 2.0)).has_locality());
        assert!(!DatasetSpec::Preferential(PreferentialConfig::paper_scaled(50)).has_locality());
    }

    #[test]
    fn suggest_query_picks_hub() {
        let g = PreferentialConfig::paper_scaled(300).generate(1);
        let q = suggest_query(&g);
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        assert_eq!(g.degree(q), max_deg);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            DatasetSpec::Erdos(ErdosConfig::paper(10, 2.0)).name(),
            "erdos"
        );
        assert_eq!(DatasetSpec::Wsn(WsnConfig::paper(10, 0.5)).name(), "wsn");
    }
}
