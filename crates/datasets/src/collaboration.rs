//! Co-authorship clique generator — substitute for the DBLP collaboration
//! network (§7.1, Fig. 9(c)).
//!
//! The paper describes DBLP's structure precisely: "if a paper is co-authored
//! by k authors this generates a completely connected (sub)graph (clique) on
//! k nodes". We synthesize papers directly: author counts follow a truncated
//! power law (most papers have 2–4 authors), and authors are drawn with a
//! preferential bias so prolific authors accumulate many collaborations —
//! yielding DBLP's sparse clique-overlap topology (real ratio:
//! 1,049,866 edges / 317,080 vertices ≈ 3.3).

use std::collections::HashSet;

use flowmax_graph::{GraphBuilder, ProbabilisticGraph, VertexId};
use rand::Rng;

use flowmax_sampling::SeedSequence;

use crate::probabilities::ProbabilityModel;
use crate::weights::WeightModel;

/// Configuration for the collaboration (clique) generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollaborationConfig {
    /// Number of authors.
    pub authors: usize,
    /// Number of papers to sample.
    pub papers: usize,
    /// Maximum authors per paper (clique size cap).
    pub max_authors_per_paper: usize,
    /// Strength of preferential selection (0 = uniform authorship).
    pub preferential_bias: f64,
    /// Edge probability model (paper: uniform `(0, 1]`).
    pub probabilities: ProbabilityModel,
    /// Vertex weight model.
    pub weights: WeightModel,
}

impl CollaborationConfig {
    /// DBLP-shaped defaults at a given author count. `papers ≈ 0.8·authors`
    /// with power-law team sizes (≈4 pairwise links per paper before
    /// dedup/overlap) lands near DBLP's edge/vertex ratio ≈ 3.3.
    pub fn paper_scaled(authors: usize) -> Self {
        CollaborationConfig {
            authors,
            papers: authors * 4 / 5,
            max_authors_per_paper: 10,
            preferential_bias: 0.6,
            probabilities: ProbabilityModel::uniform_unit(),
            weights: WeightModel::paper_default(),
        }
    }

    /// Samples a paper's author count: `P(k) ∝ (k − 1)^{−2}` for `k ≥ 2`,
    /// truncated at the cap — most papers have 2–4 authors, a long tail has
    /// many (matching bibliometric team-size distributions).
    fn sample_team_size(&self, rng: &mut flowmax_sampling::FlowRng) -> usize {
        let cap = self.max_authors_per_paper.max(2);
        // Inverse-CDF over the truncated discrete power law.
        let weights: Vec<f64> = (2..=cap).map(|k| ((k - 1) as f64).powi(-2)).collect();
        let total: f64 = weights.iter().sum();
        let mut x = rng.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i + 2;
            }
        }
        cap
    }

    /// Generates a collaboration network deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> ProbabilisticGraph {
        let n = self.authors;
        assert!(n >= 2);
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);

        // Preferential author pool: the repeated-endpoint trick. Every
        // authorship appends the author again, raising future pick odds.
        let mut pool: Vec<u32> = (0..n as u32).collect();

        let mut pairs: HashSet<(u32, u32)> = HashSet::new();
        let mut team: Vec<u32> = Vec::new();
        for _ in 0..self.papers {
            let k = self.sample_team_size(&mut rng).min(n);
            team.clear();
            let mut guard = 0;
            while team.len() < k && guard < 50 * k {
                guard += 1;
                let author = if rng.gen::<f64>() < self.preferential_bias {
                    pool[rng.gen_range(0..pool.len())]
                } else {
                    rng.gen_range(0..n as u32)
                };
                if !team.contains(&author) {
                    team.push(author);
                }
            }
            for i in 0..team.len() {
                for j in i + 1..team.len() {
                    let (a, b) = (team[i].min(team[j]), team[i].max(team[j]));
                    pairs.insert((a, b));
                }
                pool.push(team[i]);
            }
        }

        let mut edge_list: Vec<(u32, u32)> = pairs.into_iter().collect();
        edge_list.sort_unstable();

        let mut b = GraphBuilder::with_capacity(n, edge_list.len());
        for _ in 0..n {
            let w = self.weights.sample(&mut rng);
            b.add_vertex(w);
        }
        for &(u, v) in &edge_list {
            let p = self.probabilities.sample(&mut rng, 0.0);
            b.add_edge(VertexId(u), VertexId(v), p)
                .expect("pairs deduplicated");
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::GraphStats;

    #[test]
    fn dblp_like_ratio() {
        let g = CollaborationConfig::paper_scaled(5_000).generate(1);
        assert_eq!(g.vertex_count(), 5_000);
        let ratio = g.edge_count() as f64 / g.vertex_count() as f64;
        assert!(
            (1.5..=5.0).contains(&ratio),
            "edge/vertex ratio {ratio} should be in DBLP's sparse band"
        );
    }

    #[test]
    fn heavy_tail_exists() {
        let g = CollaborationConfig::paper_scaled(3_000).generate(2);
        let s = GraphStats::compute(&g);
        assert!(
            s.max_degree as f64 > 5.0 * s.mean_degree,
            "preferential authorship should create hubs (max {} vs mean {})",
            s.max_degree,
            s.mean_degree
        );
    }

    #[test]
    fn cliques_present() {
        // Triangle count must be large relative to an ER graph of equal
        // density: every ≥3-author paper contributes a full clique.
        let g = CollaborationConfig::paper_scaled(800).generate(3);
        let mut triangles = 0usize;
        for v in g.vertices() {
            let nbrs: Vec<_> = g.neighbors(v).map(|(n, _)| n).filter(|n| *n > v).collect();
            for i in 0..nbrs.len() {
                for j in i + 1..nbrs.len() {
                    if g.edge_between(nbrs[i], nbrs[j]).is_some() {
                        triangles += 1;
                    }
                }
            }
        }
        assert!(
            triangles > 100,
            "expected plentiful triangles, got {triangles}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let c = CollaborationConfig::paper_scaled(500);
        let a = c.generate(4);
        let b = c.generate(4);
        assert_eq!(a.edge_count(), b.edge_count());
        for (id, e) in a.edges() {
            assert_eq!(e.endpoints(), b.edge(id).endpoints());
        }
    }

    #[test]
    fn team_sizes_respect_cap() {
        let c = CollaborationConfig {
            authors: 100,
            papers: 200,
            max_authors_per_paper: 4,
            preferential_bias: 0.5,
            probabilities: ProbabilityModel::uniform_unit(),
            weights: WeightModel::unit(),
        };
        let mut rng = SeedSequence::new(5).rng(9);
        for _ in 0..500 {
            let k = c.sample_team_size(&mut rng);
            assert!((2..=4).contains(&k));
        }
    }
}
