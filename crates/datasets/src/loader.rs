//! SNAP-style edge-list ingestion.
//!
//! The paper's real datasets (Facebook circles, DBLP, YouTube, San Joaquin)
//! are distributed as plain edge lists: one `u v` pair per line, `#`
//! comments, arbitrary (sparse) vertex ids. When a copy of such a file is
//! available, [`load_edge_list`] ingests it, remaps ids densely, drops
//! self-loops/duplicates, and synthesizes probabilities and weights with the
//! paper's models — the same post-processing the authors applied.

use std::collections::HashMap;
use std::io::BufRead;

use flowmax_graph::{GraphBuilder, GraphError, ProbabilisticGraph, VertexId};
use flowmax_sampling::SeedSequence;

use crate::probabilities::ProbabilityModel;
use crate::weights::WeightModel;

/// Result of ingesting an external edge list.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The constructed uncertain graph.
    pub graph: ProbabilisticGraph,
    /// Dense id → original id from the file.
    pub original_ids: Vec<u64>,
    /// Number of ignored lines (self-loops and duplicate pairs).
    pub skipped: usize,
}

/// Loads a SNAP-style edge list, synthesizing probabilities and weights.
///
/// Lines starting with `#` or `%` and blank lines are ignored. Each data
/// line must contain two whitespace-separated integers.
pub fn load_edge_list<R: BufRead>(
    input: R,
    probabilities: ProbabilityModel,
    weights: WeightModel,
    seed: u64,
) -> Result<LoadedGraph, GraphError> {
    let mut dense: HashMap<u64, u32> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    let mut skipped = 0usize;

    for (lineno, line) in input.lines().enumerate() {
        let line = line.map_err(|e| GraphError::Parse {
            line: lineno + 1,
            message: e.to_string(),
        })?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "expected two vertex ids".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("{e}"),
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        let mut id_of = |orig: u64| -> u32 {
            *dense.entry(orig).or_insert_with(|| {
                original_ids.push(orig);
                (original_ids.len() - 1) as u32
            })
        };
        let du = id_of(u);
        let dv = id_of(v);
        if du == dv {
            skipped += 1;
            continue;
        }
        let key = (du.min(dv), du.max(dv));
        if seen.insert(key) {
            pairs.push(key);
        } else {
            skipped += 1;
        }
    }

    let n = original_ids.len();
    let seq = SeedSequence::new(seed);
    let mut rng = seq.rng(0);
    let mut b = GraphBuilder::with_capacity(n, pairs.len());
    for _ in 0..n {
        let w = weights.sample(&mut rng);
        b.add_vertex(w);
    }
    for &(u, v) in &pairs {
        let p = probabilities.sample(&mut rng, 0.0);
        b.add_edge(VertexId(u), VertexId(v), p)?;
    }
    Ok(LoadedGraph {
        graph: b.build(),
        original_ids,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "\
# SNAP-style comment
% matrix-market-style comment
10 20
20 30
30 10
10 10
20 10
";

    #[test]
    fn loads_and_remaps() {
        let loaded = load_edge_list(
            Cursor::new(SAMPLE),
            ProbabilityModel::Constant(0.5),
            WeightModel::unit(),
            1,
        )
        .unwrap();
        assert_eq!(loaded.graph.vertex_count(), 3);
        assert_eq!(loaded.graph.edge_count(), 3);
        assert_eq!(loaded.original_ids, vec![10, 20, 30]);
        assert_eq!(loaded.skipped, 2, "one self-loop, one duplicate");
    }

    #[test]
    fn synthesized_probabilities_obey_model() {
        let loaded = load_edge_list(
            Cursor::new(SAMPLE),
            ProbabilityModel::Uniform { lo: 0.9, hi: 1.0 },
            WeightModel::unit(),
            2,
        )
        .unwrap();
        for (_, e) in loaded.graph.edges() {
            assert!(e.probability.value() >= 0.9);
        }
    }

    #[test]
    fn malformed_line_is_reported_with_number() {
        let err = load_edge_list(
            Cursor::new("1 2\nbroken\n"),
            ProbabilityModel::Constant(0.5),
            WeightModel::unit(),
            0,
        )
        .unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = load_edge_list(
            Cursor::new(SAMPLE),
            ProbabilityModel::uniform_unit(),
            WeightModel::paper_default(),
            7,
        )
        .unwrap();
        let b = load_edge_list(
            Cursor::new(SAMPLE),
            ProbabilityModel::uniform_unit(),
            WeightModel::paper_default(),
            7,
        )
        .unwrap();
        for (id, e) in a.graph.edges() {
            assert_eq!(e.probability, b.graph.edge(id).probability);
        }
    }
}
