//! Erdős–Rényi random graphs — the paper's no-locality synthetic workload
//! (§7.1, "Erdös").
//!
//! Edges are distributed independently and uniformly between vertex pairs
//! until a target edge count (derived from the requested mean degree) is
//! reached. Probabilities and weights follow the supplied models (paper
//! defaults: `p ~ U(0,1]`, integer weights `U[0,10]`).

use std::collections::HashSet;

use flowmax_graph::{GraphBuilder, ProbabilisticGraph, VertexId};
use rand::Rng;

use flowmax_sampling::SeedSequence;

use crate::probabilities::ProbabilityModel;
use crate::weights::WeightModel;

/// Configuration for the Erdős–Rényi generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErdosConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Target mean vertex degree; the edge count is `⌊n·d/2⌋`.
    pub mean_degree: f64,
    /// Edge probability model.
    pub probabilities: ProbabilityModel,
    /// Vertex weight model.
    pub weights: WeightModel,
}

impl ErdosConfig {
    /// The paper's defaults at a given size and density.
    pub fn paper(vertices: usize, mean_degree: f64) -> Self {
        ErdosConfig {
            vertices,
            mean_degree,
            probabilities: ProbabilityModel::uniform_unit(),
            weights: WeightModel::paper_default(),
        }
    }

    /// Generates a graph deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> ProbabilisticGraph {
        let n = self.vertices;
        assert!(n >= 2, "Erdős–Rényi needs at least two vertices");
        let max_edges = n * (n - 1) / 2;
        let target = (((n as f64) * self.mean_degree / 2.0) as usize).min(max_edges);

        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);
        let mut b = GraphBuilder::with_capacity(n, target);
        for _ in 0..n {
            let w = self.weights.sample(&mut rng);
            b.add_vertex(w);
        }
        let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(target);
        while seen.len() < target {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                let p = self.probabilities.sample(&mut rng, 0.0);
                b.add_edge(VertexId(key.0), VertexId(key.1), p)
                    .expect("deduplicated pair cannot collide");
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::GraphStats;

    #[test]
    fn respects_size_and_density() {
        let g = ErdosConfig::paper(500, 6.0).generate(42);
        assert_eq!(g.vertex_count(), 500);
        assert_eq!(g.edge_count(), 1500);
        let s = GraphStats::compute(&g);
        assert!((s.mean_degree - 6.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let c = ErdosConfig::paper(100, 4.0);
        let g1 = c.generate(7);
        let g2 = c.generate(7);
        assert_eq!(g1.edge_count(), g2.edge_count());
        for (id, e) in g1.edges() {
            let e2 = g2.edge(id);
            assert_eq!(e.endpoints(), e2.endpoints());
            assert_eq!(e.probability, e2.probability);
        }
        let g3 = c.generate(8);
        let same = g1
            .edges()
            .zip(g3.edges())
            .all(|((_, a), (_, b))| a.endpoints() == b.endpoints());
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn probabilities_and_weights_in_range() {
        let g = ErdosConfig::paper(200, 5.0).generate(1);
        for (_, e) in g.edges() {
            let p = e.probability.value();
            assert!(p > 0.0 && p <= 1.0);
        }
        for v in g.vertices() {
            let w = g.weight(v).value();
            assert!((0.0..=10.0).contains(&w));
            assert_eq!(w.fract(), 0.0);
        }
    }

    #[test]
    fn dense_request_clamps_to_complete_graph() {
        let g = ErdosConfig::paper(10, 100.0).generate(3);
        assert_eq!(g.edge_count(), 45);
    }

    #[test]
    fn no_locality_small_diameter_spot_check() {
        // A 1000-vertex ER graph with mean degree 10 is almost surely a
        // small-world: the BFS ball around any vertex grows exponentially.
        let g = ErdosConfig::paper(1000, 10.0).generate(5);
        let s = GraphStats::compute(&g);
        assert!(s.largest_component > 900, "giant component expected");
    }
}
