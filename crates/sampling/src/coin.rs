//! The probability → integer-threshold boundary of the sampling engine.
//!
//! This module is the **only** place in the sampling crate where an edge
//! probability is still an `f64`: [`EdgeCoin::classify`] converts it, once
//! per edge, into the exact integer threshold that every kernel flips
//! against. Everything downstream — the scalar sampler, the 64-lane
//! [`EdgeCoin::flip`](crate::batch::EdgeCoin) path, the wide
//! structure-of-arrays loop — makes the same pure-integer
//! `next_u64() >> 11 < t` comparison, which is what lint rule **L5**
//! (no float comparison/arithmetic inside the bit-parallel kernels in
//! `batch.rs`) protects: float math happens here, at ingestion, never in
//! the per-world loops.

use crate::batch::EdgeCoin;
use crate::rng::FlowRng;

/// `2^53`, the resolution of the scalar sampler's `f64` coin.
const TWO_POW_53: f64 = 9_007_199_254_740_992.0;

impl EdgeCoin {
    /// Classifies a probability into its coin.
    ///
    /// The scalar sampler tests `rng.gen::<f64>() < p`, where the vendored
    /// `rand` computes `gen::<f64>()` as `(next_u64() >> 11) · 2⁻⁵³`. With
    /// `x = next_u64() >> 11` (an integer below `2⁵³`, hence exact in `f64`)
    /// that test is the real-number comparison `x < p·2⁵³`, which for
    /// integer `x` is exactly `x < ceil(p·2⁵³)` — and `p·2⁵³` itself is
    /// exact because multiplying by a power of two only shifts the exponent.
    /// [`EdgeCoin::Threshold`] therefore reproduces the scalar coin
    /// bit-for-bit with a pure integer compare.
    pub fn classify(p: f64) -> EdgeCoin {
        if p >= 1.0 {
            EdgeCoin::AlwaysOn
        } else if p <= 0.0 {
            EdgeCoin::AlwaysOff
        } else {
            EdgeCoin::Threshold((p * TWO_POW_53).ceil() as u64)
        }
    }
}

/// Flips the Bernoulli(`p`) coin for one edge against a scalar RNG stream —
/// the shared helper behind every scalar sampling loop in this crate.
///
/// Bit-identical to the historical `rng.gen::<f64>() < p` (see
/// [`EdgeCoin::classify`]) with the draw-free fast paths for `p >= 1` and
/// `p <= 0`.
#[inline]
pub fn scalar_coin(p: f64, rng: &mut FlowRng) -> bool {
    EdgeCoin::classify(p).flip_one(rng)
}
