//! # flowmax-sampling
//!
//! Monte-Carlo substrate for the `flowmax` workspace: unbiased possible-world
//! sampling (Lemma 1), whole-subgraph reachability estimation (the *Naive*
//! baseline's estimator), component-local estimation (the F-tree's sampling
//! kernel, §5.3), confidence intervals (§6.3 / Def. 10), and deterministic
//! seed management for reproducible experiments.
//!
//! Two sampling engines share one seed contract:
//!
//! * the **scalar** reference path ([`sample_world`], [`sample_reachability`],
//!   [`ComponentGraph::sample_reachability`]) — one world, one BFS at a time;
//! * the **bit-parallel** engine ([`batch`], [`parallel`]) — 64 worlds per
//!   `u64` lane word, one lane-BFS per batch, batches sharded across threads
//!   with results bit-identical for every thread count.
//!
//! On top of them, the [`race`] module implements the §6.3 candidate race:
//! geometric whole-batch sample rounds with confidence-interval elimination
//! (never below the 30-sample CLT floor), budget reallocation to the
//! finalists, and incremental per-component estimates extended as one
//! multi-candidate job per round.
//!
//! The batched engine is allocation-free in steady state *and* spawn-free
//! per job: chunks run on the persistent process-global
//! [`WorkerPool`] (one pinned thread per worker slot,
//! channel-fed, joined on drop), every thread keeps one warm
//! [`SamplingScratch`] for life (lane buffers, per-lane RNGs, frontier
//! worklists — see [`with_thread_scratch`]), and snapshot builds reuse a
//! graph-sized [`LocalIdScratch`] reset by an epoch counter instead of
//! allocating a hash map per component.

#![warn(missing_docs)]
// `deny`, not `forbid`: the worker pool hands lifetime-erased closures to
// its persistent threads through one audited `#[allow(unsafe_code)]`
// transmute (see `pool::WorkerPool::run`); everything else stays safe.
#![deny(unsafe_code)]

pub mod batch;
pub mod coin;
pub mod component;
pub mod confidence;
pub mod convergence;
pub mod estimate;
pub mod parallel;
pub mod pool;
pub mod race;
pub mod reachability;
pub mod rng;
pub mod sampler;
pub mod scratch;

pub use batch::{
    block_mask, block_ones, block_worlds, lane_mask, lanes_in_batch, EdgeCoin, LaneBfs, WorldBatch,
    LANES, MAX_LANE_WORDS,
};
pub use coin::scalar_coin;
pub use component::{ComponentEstimate, ComponentGraph, LocalIdScratch};
pub use confidence::{
    normal_quantile, wald_interval, wilson_interval, z_for_alpha, ConfidenceInterval,
    DEFAULT_ALPHA, MIN_SAMPLES_FOR_CLT,
};
pub use convergence::BatchSchedule;
pub use estimate::FlowEstimate;
pub use parallel::{
    clamp_lane_words, clamp_threads, default_lane_words, default_threads, invalid_lane_requests,
    invalid_thread_requests, ParallelEstimator, WorldsRequest,
};
pub use pool::{is_pool_worker, WorkerPool};
pub use race::{
    CandidateRace, IncrementalComponent, LaneStatus, RaceConfig, RoundOutcome, RoundPlan,
};
pub use reachability::{sample_flow, sample_reachability, ReachabilityEstimate};
pub use rng::{splitmix64, FlowRng, SeedSequence};
pub use sampler::{sample_world, sample_worlds};
pub use scratch::{with_thread_scratch, SamplingScratch, ScratchSlot};
