//! # flowmax-sampling
//!
//! Monte-Carlo substrate for the `flowmax` workspace: unbiased possible-world
//! sampling (Lemma 1), whole-subgraph reachability estimation (the *Naive*
//! baseline's estimator), component-local estimation (the F-tree's sampling
//! kernel, §5.3), confidence intervals (§6.3 / Def. 10), and deterministic
//! seed management for reproducible experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod component;
pub mod confidence;
pub mod convergence;
pub mod estimate;
pub mod reachability;
pub mod rng;
pub mod sampler;

pub use component::{ComponentEstimate, ComponentGraph};
pub use confidence::{
    normal_quantile, wald_interval, wilson_interval, z_for_alpha, ConfidenceInterval,
    DEFAULT_ALPHA, MIN_SAMPLES_FOR_CLT,
};
pub use convergence::BatchSchedule;
pub use estimate::FlowEstimate;
pub use reachability::{sample_flow, sample_reachability, ReachabilityEstimate};
pub use rng::{splitmix64, FlowRng, SeedSequence};
pub use sampler::{sample_world, sample_worlds};
