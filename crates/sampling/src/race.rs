//! Candidate racing (§6.3): geometric sample rounds with confidence-interval
//! elimination, run as whole-batch jobs on the parallel engine.
//!
//! The paper's CI heuristic races candidate edges against each other instead
//! of spending a fixed sample budget on every one: samples arrive in rounds
//! of geometrically growing size, and after each round any candidate whose
//! upper flow bound falls below another candidate's lower bound is
//! eliminated (Def. 10, with the ≥ 30-sample CLT floor of §6.3 enforced
//! before any elimination). This module contributes the two engine pieces:
//!
//! * [`CandidateRace`] — the deterministic round planner: cumulative
//!   per-round targets quantized to whole 64-world batches, elimination
//!   bookkeeping, and reallocation of eliminated candidates' unspent budget
//!   to the survivors of the final round;
//! * [`IncrementalComponent`] — a component estimate that *extends* across
//!   rounds: worlds `[drawn, target)` are appended to the running success
//!   counts, so a candidate surviving to budget `S` costs exactly `S`
//!   samples in total (the scalar reference race re-samples from scratch at
//!   every cumulative budget). Because world `i` always draws from
//!   `seq.rng(i)`, the estimate after any extension is bit-identical to a
//!   fresh full-budget run with the same stream — independent of round
//!   boundaries and thread counts.
//!
//! The planner is estimation-agnostic: callers probe candidates however they
//! like (component sampling, exact enumeration, flow-bound evaluation on an
//! F-tree) and feed `(lower, upper)` bounds back via
//! [`CandidateRace::complete_round`]. The selection layer drives it with
//! [`ParallelEstimator::extend_components`], which turns one round into a
//! single multi-candidate job running against each worker thread's warm
//! [`SamplingScratch`](crate::scratch::SamplingScratch) — the round's
//! batches reuse warm lane buffers and frontier worklists, and each
//! [`IncrementalComponent`] keeps its own success counters across rounds,
//! so a race's steady state draws worlds without per-batch allocation.

use crate::batch::LANES;
use crate::component::{ComponentEstimate, ComponentGraph};
use crate::confidence::MIN_SAMPLES_FOR_CLT;
use crate::convergence::BatchSchedule;
use crate::parallel::{ParallelEstimator, WorldsRequest};
use crate::rng::SeedSequence;

/// Configuration of a candidate race.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaceConfig {
    /// Per-candidate round schedule (`first`, `growth`, `budget`).
    pub schedule: BatchSchedule,
    /// Minimum samples a candidate must have before it may be eliminated
    /// (§6.3's CLT minimum; [`MIN_SAMPLES_FOR_CLT`]).
    pub clt_floor: u32,
    /// Round targets are rounded up to multiples of this quantum so every
    /// candidate draws whole 64-world batches ([`LANES`]); `1` disables
    /// quantization (useful for scalar-granularity tests).
    pub quantum: u32,
    /// Reallocation ceiling: a final-round survivor's budget never exceeds
    /// `boost_cap × schedule.budget`, however much the eliminated
    /// candidates left unspent.
    pub boost_cap: f64,
}

impl RaceConfig {
    /// The paper's race at per-candidate budget `budget` (`samplesize`),
    /// quantized to whole 64-world batches, with elimination legal from 30
    /// samples and a 2× reallocation ceiling.
    pub fn paper_default(budget: u32) -> Self {
        RaceConfig {
            schedule: BatchSchedule::paper_default(budget),
            clt_floor: MIN_SAMPLES_FOR_CLT,
            quantum: LANES,
            boost_cap: 2.0,
        }
    }

    fn quantum(&self) -> u32 {
        self.quantum.max(1)
    }

    fn quantize_up(&self, x: u32) -> u32 {
        let q = self.quantum();
        x.max(1).div_ceil(q).saturating_mul(q)
    }

    fn quantize_down(&self, x: u32) -> u32 {
        let q = self.quantum();
        (x / q).max(1).saturating_mul(q)
    }

    /// The quantized per-candidate budget (the cumulative target a
    /// candidate reaches when it survives every round without reallocation).
    pub fn budget_cap(&self) -> u32 {
        self.quantize_up(self.schedule.budget.max(1))
    }

    /// The race's cumulative round ladder: the schedule's
    /// [`cumulative_budgets`](BatchSchedule::cumulative_budgets) — the same
    /// ladder the scalar reference race climbs — quantized to whole batches
    /// and deduplicated (strictly increasing, ending at
    /// [`budget_cap`](RaceConfig::budget_cap)).
    pub fn ladder(&self) -> Vec<u32> {
        let mut ladder: Vec<u32> = self
            .schedule
            .cumulative_budgets()
            .into_iter()
            .map(|c| self.quantize_up(c))
            .collect();
        ladder.push(self.budget_cap());
        ladder.dedup();
        ladder.retain(|&t| t <= self.budget_cap());
        if ladder.is_empty() {
            ladder.push(self.budget_cap());
        }
        ladder
    }

    /// The quantized reallocation ceiling.
    pub fn boost_ceiling(&self) -> u32 {
        let cap = self.budget_cap();
        let boosted = (cap as f64 * self.boost_cap.max(1.0)).floor() as u32;
        self.quantize_down(boosted.max(cap))
    }
}

/// Lifecycle of one candidate within a race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneStatus {
    /// Still racing: receives samples in the next round.
    Racing,
    /// Eliminated after `round` (0-based): its upper flow bound fell below
    /// the round's best lower bound with at least `clt_floor` samples.
    Eliminated {
        /// Round after which the candidate was cut.
        round: u32,
    },
    /// Survived the final round; its estimate is at full (possibly
    /// reallocation-boosted) budget.
    Finished,
}

#[derive(Debug, Clone, Copy)]
struct LaneState {
    status: LaneStatus,
    drawn: u32,
    lower: f64,
    upper: f64,
}

/// One round of work: every listed candidate must be brought to the
/// cumulative sample target before [`CandidateRace::complete_round`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundPlan {
    /// 0-based round index.
    pub round: u32,
    /// Cumulative per-candidate sample target of this round.
    pub target: u32,
    /// Whether this is the race's final round.
    pub is_final: bool,
    /// Indices of the candidates still racing.
    pub candidates: Vec<usize>,
}

/// Summary of a completed round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Candidates eliminated by this round's bounds.
    pub eliminated: u32,
    /// Candidates still in the race (or finished, after the final round).
    pub survivors: u32,
}

/// The §6.3 race state machine over `n` candidates.
///
/// Drive it with [`next_round`](CandidateRace::next_round) /
/// [`complete_round`](CandidateRace::complete_round) until `next_round`
/// returns `None`. All decisions are pure functions of the reported bounds,
/// so a race is deterministic whenever its bound computations are — in
/// particular, thread-count invariant when driven by the batched engine.
#[derive(Debug, Clone)]
pub struct CandidateRace {
    config: RaceConfig,
    /// Cumulative round targets ([`RaceConfig::ladder`]); the final rung is
    /// replaced by the reallocated target when that round is planned.
    ladder: Vec<u32>,
    lanes: Vec<LaneState>,
    /// Best lower flow bound among candidates *outside* the race (analytic
    /// and exactly-enumerated probes); prunes racers on its own.
    external_lower: f64,
    round: u32,
    /// Cumulative target of the most recently planned round (0 before the
    /// first round).
    target: u32,
    pending_final: bool,
    done: bool,
}

impl CandidateRace {
    /// Starts a race over `n` candidates. `external_lower` is the best
    /// lower flow bound already established outside the race
    /// (`f64::NEG_INFINITY` when there is none).
    pub fn new(config: RaceConfig, n: usize, external_lower: f64) -> Self {
        CandidateRace {
            ladder: config.ladder(),
            config,
            lanes: vec![
                LaneState {
                    status: LaneStatus::Racing,
                    drawn: 0,
                    lower: f64::NEG_INFINITY,
                    upper: f64::INFINITY,
                };
                n
            ],
            external_lower,
            round: 0,
            target: 0,
            pending_final: false,
            done: false,
        }
    }

    /// Plans the next round, or `None` when the race is over (final round
    /// completed, or every candidate eliminated).
    pub fn next_round(&mut self) -> Option<RoundPlan> {
        if self.done {
            return None;
        }
        let candidates: Vec<usize> = self
            .lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| l.status == LaneStatus::Racing)
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            self.done = true;
            return None;
        }
        let pos = self.round as usize;
        debug_assert!(pos < self.ladder.len(), "race past its final round");
        let is_final = pos + 1 >= self.ladder.len();
        let next = if is_final {
            self.reallocated_final_target(&candidates)
        } else {
            self.ladder[pos]
        };
        self.target = next;
        self.pending_final = is_final;
        Some(RoundPlan {
            round: self.round,
            target: next,
            is_final,
            candidates,
        })
    }

    /// Final-round target with the eliminated candidates' unspent budget
    /// reallocated evenly to the survivors, subject to the boost ceiling.
    fn reallocated_final_target(&self, survivors: &[usize]) -> u32 {
        let cap = self.config.budget_cap();
        let envelope = self.lanes.len() as u64 * cap as u64;
        let spent: u64 = self.lanes.iter().map(|l| l.drawn as u64).sum();
        let share = (envelope.saturating_sub(spent) / survivors.len().max(1) as u64) as u32;
        let drawn = survivors.first().map(|&i| self.lanes[i].drawn).unwrap_or(0);
        self.config
            .quantize_down(drawn.saturating_add(share).max(cap))
            .clamp(cap, self.config.boost_ceiling())
    }

    /// Records the round's flow bounds — one `(candidate, lower, upper)`
    /// triple per planned candidate — and applies the elimination rule: a
    /// candidate with at least `clt_floor` samples whose upper bound is
    /// strictly below the round's best lower bound (including
    /// `external_lower`) leaves the race.
    ///
    /// # Panics
    ///
    /// Panics if a reported candidate was not part of the planned round.
    pub fn complete_round(&mut self, bounds: &[(usize, f64, f64)]) -> RoundOutcome {
        for &(i, lower, upper) in bounds {
            let lane = &mut self.lanes[i];
            assert_eq!(
                lane.status,
                LaneStatus::Racing,
                "bounds reported for a candidate that is not racing"
            );
            lane.drawn = self.target;
            lane.lower = lower;
            lane.upper = upper;
        }
        let best_lower = self
            .lanes
            .iter()
            .filter(|l| l.status == LaneStatus::Racing)
            .map(|l| l.lower)
            .fold(self.external_lower, f64::max);
        let mut eliminated = 0;
        let mut survivors = 0;
        for lane in &mut self.lanes {
            if lane.status != LaneStatus::Racing {
                continue;
            }
            // The CLT floor: bounds below `clt_floor` samples are not
            // trusted to eliminate (§6.3, last sentence).
            if lane.drawn >= self.config.clt_floor && lane.upper < best_lower {
                lane.status = LaneStatus::Eliminated { round: self.round };
                eliminated += 1;
            } else {
                if self.pending_final {
                    lane.status = LaneStatus::Finished;
                }
                survivors += 1;
            }
        }
        if self.pending_final || survivors == 0 {
            self.done = true;
        }
        self.round += 1;
        RoundOutcome {
            eliminated,
            survivors,
        }
    }

    /// Status of candidate `i`.
    pub fn status(&self, i: usize) -> LaneStatus {
        self.lanes[i].status
    }

    /// Whether the race has ended.
    pub fn is_complete(&self) -> bool {
        self.done
    }

    /// Number of candidates that finished the race.
    pub fn finished_count(&self) -> usize {
        self.lanes
            .iter()
            .filter(|l| l.status == LaneStatus::Finished)
            .count()
    }

    /// Number of eliminated candidates.
    pub fn eliminated_count(&self) -> usize {
        self.lanes
            .iter()
            .filter(|l| matches!(l.status, LaneStatus::Eliminated { .. }))
            .count()
    }
}

/// A component reachability estimate that grows across race rounds.
///
/// Worlds are appended in whole 64-world batches; after extending to `S`
/// samples the estimate is bit-identical to a fresh
/// [`ComponentGraph::sample_reachability_batched`] run at `S` samples with
/// the same seed sequence (world `i` always draws from `seq.rng(i)`).
#[derive(Debug, Clone)]
pub struct IncrementalComponent {
    snapshot: ComponentGraph,
    seq: SeedSequence,
    successes: Vec<u32>,
    drawn: u32,
}

impl IncrementalComponent {
    /// Wraps a component snapshot with its dedicated seed stream; no worlds
    /// drawn yet.
    pub fn new(snapshot: ComponentGraph, seq: SeedSequence) -> Self {
        let n = snapshot.vertex_count();
        IncrementalComponent {
            snapshot,
            seq,
            successes: vec![0; n],
            drawn: 0,
        }
    }

    /// The wrapped snapshot.
    pub fn snapshot(&self) -> &ComponentGraph {
        &self.snapshot
    }

    /// Worlds drawn so far.
    pub fn drawn(&self) -> u32 {
        self.drawn
    }

    /// The estimate over all drawn worlds.
    ///
    /// # Panics
    ///
    /// Panics before any worlds were drawn.
    pub fn estimate(&self) -> ComponentEstimate {
        ComponentEstimate::from_success_counts(self.successes.clone(), self.drawn)
    }
}

impl ParallelEstimator {
    /// Extends every lane to its cumulative target **as one job**: all
    /// lanes' outstanding batches are sharded across the worker pool
    /// together (see
    /// [`sample_component_worlds`](ParallelEstimator::sample_component_worlds)).
    /// Lanes whose target is already met draw nothing. Returns the number
    /// of newly drawn worlds, summed over all lanes.
    ///
    /// # Panics
    ///
    /// Panics if a lane would extend past a partial batch (its `drawn` is
    /// not a multiple of [`LANES`]) — quantized race targets never are.
    pub fn extend_components(&self, lanes: &mut [IncrementalComponent], targets: &[u32]) -> u64 {
        assert_eq!(lanes.len(), targets.len(), "one target per lane");
        let mut extended: Vec<usize> = Vec::new();
        let deltas = {
            let mut requests = Vec::new();
            for (i, (lane, &target)) in lanes.iter().zip(targets).enumerate() {
                if target <= lane.drawn {
                    continue;
                }
                assert!(
                    lane.drawn % LANES == 0,
                    "cannot extend past a partial batch"
                );
                extended.push(i);
                requests.push(WorldsRequest {
                    component: &lane.snapshot,
                    seq: lane.seq,
                    first_world: lane.drawn,
                    total_worlds: target,
                });
            }
            if requests.is_empty() {
                return 0;
            }
            self.sample_component_worlds(&requests)
        };
        let mut new_worlds = 0u64;
        for (&i, delta) in extended.iter().zip(deltas) {
            let lane = &mut lanes[i];
            new_worlds += (targets[i] - lane.drawn) as u64;
            for (s, d) in lane.successes.iter_mut().zip(delta) {
                *s += d;
            }
            lane.drawn = targets[i];
        }
        new_worlds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::wald_interval;
    use flowmax_graph::{GraphBuilder, Probability, VertexId, Weight};
    use rand::Rng;

    fn cfg(first: u32, growth: f64, budget: u32, quantum: u32) -> RaceConfig {
        RaceConfig {
            schedule: BatchSchedule {
                first,
                growth,
                budget,
            },
            clt_floor: MIN_SAMPLES_FOR_CLT,
            quantum,
            boost_cap: 2.0,
        }
    }

    #[test]
    fn paper_default_targets_are_whole_batches() {
        let mut race = CandidateRace::new(RaceConfig::paper_default(1000), 3, f64::NEG_INFINITY);
        let mut targets = Vec::new();
        while let Some(plan) = race.next_round() {
            targets.push(plan.target);
            let bounds: Vec<_> = plan.candidates.iter().map(|&i| (i, 0.0, 1.0)).collect();
            race.complete_round(&bounds);
        }
        assert!(targets.iter().all(|t| t % LANES == 0), "{targets:?}");
        assert!(
            targets.windows(2).all(|w| w[1] > w[0]),
            "targets must grow: {targets:?}"
        );
        assert_eq!(targets.first(), Some(&64), "first = 50 rounds up to 64");
        assert!(
            *targets.last().unwrap() >= 1000,
            "final target covers the paper budget"
        );
        assert_eq!(race.finished_count(), 3, "overlapping bounds never prune");
    }

    #[test]
    fn clear_separation_eliminates_losers_and_reallocates() {
        // 4 candidates, one clear winner: losers leave after round 1 and
        // the winner's final budget is boosted by their unspent samples.
        let mut race = CandidateRace::new(cfg(64, 2.0, 1024, 64), 4, f64::NEG_INFINITY);
        let plan = race.next_round().unwrap();
        assert_eq!(plan.target, 64);
        let bounds: Vec<_> = plan
            .candidates
            .iter()
            .map(|&i| if i == 2 { (i, 0.8, 0.9) } else { (i, 0.1, 0.2) })
            .collect();
        let out = race.complete_round(&bounds);
        assert_eq!(out.eliminated, 3);
        assert_eq!(out.survivors, 1);
        // The survivor keeps racing through the geometric rounds (the
        // external bound could still prune it) …
        let mut final_target = 0;
        while let Some(plan) = race.next_round() {
            assert_eq!(plan.candidates, vec![2]);
            if plan.is_final {
                final_target = plan.target;
            } else {
                assert!(plan.target < 1024);
            }
            race.complete_round(&[(2, 0.8, 0.9)]);
        }
        // … and its final budget absorbs the losers' unspent samples:
        // pool 4·1024 − (3·64 + 512) = 3392 ≫ cap, clamped to the 2× boost
        // ceiling.
        assert_eq!(final_target, 2048);
        assert!(race.is_complete());
        assert_eq!(race.status(2), LaneStatus::Finished);
        assert_eq!(race.eliminated_count(), 3);
        assert!(race.next_round().is_none());
    }

    #[test]
    fn clt_floor_blocks_early_elimination() {
        // Quantum 1 with first = 8: bounds separate immediately, but no
        // elimination may happen until 30 samples were drawn.
        let mut race = CandidateRace::new(cfg(8, 2.0, 512, 1), 2, f64::NEG_INFINITY);
        let mut floor_respected = true;
        let mut eliminated_at = None;
        while let Some(plan) = race.next_round() {
            let bounds: Vec<_> = plan
                .candidates
                .iter()
                .map(|&i| {
                    if i == 0 {
                        (i, 0.9, 0.95)
                    } else {
                        (i, 0.1, 0.2)
                    }
                })
                .collect();
            let out = race.complete_round(&bounds);
            if out.eliminated > 0 && eliminated_at.is_none() {
                eliminated_at = Some(plan.target);
                if plan.target < MIN_SAMPLES_FOR_CLT {
                    floor_respected = false;
                }
            }
        }
        assert!(floor_respected, "eliminated below the 30-sample CLT floor");
        let at = eliminated_at.expect("the hopeless candidate must be cut");
        assert!(
            (MIN_SAMPLES_FOR_CLT..=2 * MIN_SAMPLES_FOR_CLT).contains(&at),
            "elimination should come at the first legal round, got {at}"
        );
        assert_eq!(race.status(1), LaneStatus::Eliminated { round: 2 });
    }

    #[test]
    fn external_lower_bound_can_clear_the_field() {
        // An analytic candidate outside the race dominates everyone: the
        // race ends with no finishers.
        let mut race = CandidateRace::new(cfg(64, 2.0, 256, 64), 2, 10.0);
        let plan = race.next_round().unwrap();
        let bounds: Vec<_> = plan.candidates.iter().map(|&i| (i, 1.0, 2.0)).collect();
        let out = race.complete_round(&bounds);
        assert_eq!(out.eliminated, 2);
        assert_eq!(out.survivors, 0);
        assert!(race.next_round().is_none());
        assert_eq!(race.finished_count(), 0);
    }

    #[test]
    fn degenerate_growth_still_terminates() {
        let mut race = CandidateRace::new(cfg(10, 1.0, 100, 1), 1, f64::NEG_INFINITY);
        let mut rounds = 0;
        while let Some(plan) = race.next_round() {
            rounds += 1;
            assert!(rounds <= 200, "race must terminate");
            let bounds: Vec<_> = plan.candidates.iter().map(|&i| (i, 0.0, 1.0)).collect();
            race.complete_round(&bounds);
        }
        assert!(rounds > 1);
        assert_eq!(race.finished_count(), 1);
    }

    fn triangle() -> ComponentGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(3, Weight::ONE);
        let p = Probability::new(0.5).unwrap();
        let e0 = b.add_edge(VertexId(0), VertexId(1), p).unwrap();
        let e1 = b.add_edge(VertexId(1), VertexId(2), p).unwrap();
        let e2 = b.add_edge(VertexId(0), VertexId(2), p).unwrap();
        let g = b.build();
        ComponentGraph::build(&g, VertexId(0), &[e0, e1, e2])
    }

    #[test]
    fn incremental_extension_matches_fresh_full_budget_run() {
        let seq = SeedSequence::new(0xACE);
        let engine = ParallelEstimator::new(1);
        let mut lanes = vec![IncrementalComponent::new(triangle(), seq)];
        assert_eq!(engine.extend_components(&mut lanes, &[64]), 64);
        assert_eq!(engine.extend_components(&mut lanes, &[64]), 0, "no-op");
        assert_eq!(engine.extend_components(&mut lanes, &[192]), 128);
        let fresh = triangle().sample_reachability_batched(192, &seq, 1);
        assert_eq!(lanes[0].estimate(), fresh, "extension ≡ fresh run");
        assert_eq!(lanes[0].drawn(), 192);
    }

    #[test]
    fn multi_lane_extension_is_thread_invariant_and_per_lane_pure() {
        let seqs = [SeedSequence::new(1), SeedSequence::new(2)];
        let run = |threads: usize| {
            let engine = ParallelEstimator::new(threads);
            let mut lanes: Vec<_> = seqs
                .iter()
                .map(|&s| IncrementalComponent::new(triangle(), s))
                .collect();
            engine.extend_components(&mut lanes, &[128, 64]);
            engine.extend_components(&mut lanes, &[256, 320]);
            lanes.iter().map(|l| l.estimate()).collect::<Vec<_>>()
        };
        let base = run(1);
        assert_eq!(base, run(4));
        assert_eq!(base, run(8));
        // Each lane equals its solo full-budget run.
        assert_eq!(
            base[0],
            triangle().sample_reachability_batched(256, &seqs[0], 1)
        );
        assert_eq!(
            base[1],
            triangle().sample_reachability_batched(320, &seqs[1], 1)
        );
    }

    /// Satellite: empirical coverage of the elimination rule. Candidates
    /// are Bernoulli streams with known true flows; over many seeded race
    /// trials, the fraction of trials in which *any* eliminated candidate's
    /// true flow exceeds the winner's must stay near the significance
    /// level. With `α = 0.01` per Wald bound and a handful of candidates ×
    /// rounds, the union bound allows a small multiple of `α`; 5 % is far
    /// below what a broken rule produces (tens of percent) and far above
    /// the ~α rate a correct one does.
    #[test]
    fn elimination_rule_empirical_coverage() {
        let alpha = 0.01;
        let trials = 300u64;
        let n = 6usize;
        let seq = SeedSequence::new(0x5EED_2ACE);
        let mut bad_trials = 0u32;
        let mut total_eliminations = 0u64;
        for trial in 0..trials {
            let mut rng = seq.rng(trial);
            let truths: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
            let mut race = CandidateRace::new(cfg(32, 2.0, 512, 1), n, f64::NEG_INFINITY);
            let mut successes = vec![0u32; n];
            let mut drawn = vec![0u32; n];
            while let Some(plan) = race.next_round() {
                let mut bounds = Vec::with_capacity(plan.candidates.len());
                for &i in &plan.candidates {
                    while drawn[i] < plan.target {
                        if rng.gen::<f64>() < truths[i] {
                            successes[i] += 1;
                        }
                        drawn[i] += 1;
                    }
                    let ci = wald_interval(successes[i], drawn[i], alpha);
                    bounds.push((i, ci.lower, ci.upper));
                }
                race.complete_round(&bounds);
            }
            let winner = (0..n)
                .filter(|&i| race.status(i) == LaneStatus::Finished)
                .max_by(|&a, &b| {
                    let pa = successes[a] as f64 / drawn[a] as f64;
                    let pb = successes[b] as f64 / drawn[b] as f64;
                    pa.partial_cmp(&pb).unwrap()
                })
                .expect("someone survives without an external bound");
            total_eliminations += race.eliminated_count() as u64;
            let mistake = (0..n).any(|i| {
                matches!(race.status(i), LaneStatus::Eliminated { .. })
                    && truths[i] > truths[winner]
            });
            if mistake {
                bad_trials += 1;
            }
        }
        assert!(
            total_eliminations >= trials * (n as u64) / 4,
            "the race must actually prune ({total_eliminations} eliminations)"
        );
        let rate = bad_trials as f64 / trials as f64;
        assert!(
            rate <= 0.05,
            "eliminated a truly-better candidate in {rate:.3} of trials (α = {alpha})"
        );
    }

    #[test]
    fn boost_ceiling_and_caps() {
        let c = RaceConfig::paper_default(1000);
        assert_eq!(c.budget_cap(), 1024);
        assert_eq!(c.boost_ceiling(), 2048);
        let tight = RaceConfig {
            boost_cap: 1.0,
            ..c
        };
        assert_eq!(tight.boost_ceiling(), 1024);
    }
}
