//! Unbiased sampling of possible worlds.
//!
//! A possible world of the domain `D ⊆ E` is drawn by flipping an independent
//! Bernoulli coin per edge (Eq. 1). The resulting sample set is unbiased in
//! the sense of Lemma 1, which is what makes every downstream estimator
//! unbiased.

use flowmax_graph::{EdgeSubset, ProbabilisticGraph};

use crate::coin::scalar_coin;
use crate::rng::FlowRng;

/// Samples one possible world of `domain` into `out` (cleared first).
///
/// Each edge `e ∈ domain` survives independently with probability `P(e)`.
///
/// # RNG stream contract
///
/// Edges are visited in increasing edge-id order, and for each edge:
///
/// * `P(e) >= 1` — the edge always exists; **no draw is consumed**;
/// * `P(e) <= 0` — the edge never exists; **no draw is consumed** (only
///   reachable via `Probability::new_unchecked` in release builds, since
///   the validated constructor forbids zero);
/// * otherwise exactly **one** `u64` draw is consumed.
///
/// Both fast paths are symmetric, so inserting or removing a deterministic
/// edge never perturbs the coins of later edges under a fixed seed.
/// (Historically the `p <= 0` path still burned a draw, shifting the entire
/// downstream stream.) The 64-lane batch sampler
/// ([`crate::batch::WorldBatch`]) reproduces this contract bit-for-bit per
/// lane, which is what lets tests compare the two world-for-world.
pub fn sample_world(
    graph: &ProbabilisticGraph,
    domain: &EdgeSubset,
    rng: &mut FlowRng,
    out: &mut EdgeSubset,
) {
    out.clear();
    for e in domain.iter() {
        if scalar_coin(graph.probability(e).value(), rng) {
            out.insert(e);
        }
    }
}

/// Draws `count` worlds, invoking `visit` with each. The world buffer is
/// reused across iterations, so `visit` must not retain it.
pub fn sample_worlds<F>(
    graph: &ProbabilisticGraph,
    domain: &EdgeSubset,
    count: u32,
    rng: &mut FlowRng,
    mut visit: F,
) where
    F: FnMut(&EdgeSubset),
{
    let mut world = EdgeSubset::new(graph.edge_count());
    for _ in 0..count {
        sample_world(graph, domain, rng, &mut world);
        visit(&world);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedSequence;
    use flowmax_graph::{EdgeId, GraphBuilder, Probability, VertexId, Weight};

    fn graph_with_probs(ps: &[f64]) -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(ps.len() + 1, Weight::ONE);
        for (i, &p) in ps.iter().enumerate() {
            b.add_edge(
                VertexId(i as u32),
                VertexId(i as u32 + 1),
                Probability::new(p).unwrap(),
            )
            .unwrap();
        }
        b.build()
    }

    #[test]
    fn certain_edges_always_survive() {
        let g = graph_with_probs(&[1.0, 1.0]);
        let domain = EdgeSubset::full(&g);
        let mut rng = SeedSequence::new(1).rng(0);
        let mut world = EdgeSubset::for_graph(&g);
        for _ in 0..50 {
            sample_world(&g, &domain, &mut rng, &mut world);
            assert_eq!(world.len(), 2);
        }
    }

    #[test]
    fn survival_frequency_matches_probability() {
        let g = graph_with_probs(&[0.3]);
        let domain = EdgeSubset::full(&g);
        let mut rng = SeedSequence::new(7).rng(0);
        let n = 20_000;
        let mut hits = 0;
        sample_worlds(&g, &domain, n, &mut rng, |w| {
            if w.contains(EdgeId(0)) {
                hits += 1;
            }
        });
        let freq = hits as f64 / n as f64;
        assert!(
            (freq - 0.3).abs() < 0.02,
            "frequency {freq} too far from 0.3"
        );
    }

    #[test]
    fn edges_outside_domain_never_sampled() {
        let g = graph_with_probs(&[0.9, 0.9]);
        let domain = EdgeSubset::from_edges(g.edge_count(), [EdgeId(0)]);
        let mut rng = SeedSequence::new(3).rng(0);
        let mut world = EdgeSubset::for_graph(&g);
        for _ in 0..50 {
            sample_world(&g, &domain, &mut rng, &mut world);
            assert!(!world.contains(EdgeId(1)));
        }
    }

    #[test]
    fn deterministic_edges_do_not_perturb_the_stream() {
        // g1: two fractional edges. g2: the same two fractional edges with a
        // certain edge inserted *before* them. Under the stream contract the
        // certain edge consumes no draw, so the fractional coins coincide.
        let g1 = graph_with_probs(&[0.5, 0.5]);
        let g2 = graph_with_probs(&[1.0, 0.5, 0.5]);
        let seq = SeedSequence::new(13);
        let (mut r1, mut r2) = (seq.rng(0), seq.rng(0));
        let d1 = EdgeSubset::full(&g1);
        let d2 = EdgeSubset::full(&g2);
        let mut w1 = EdgeSubset::for_graph(&g1);
        let mut w2 = EdgeSubset::for_graph(&g2);
        for _ in 0..200 {
            sample_world(&g1, &d1, &mut r1, &mut w1);
            sample_world(&g2, &d2, &mut r2, &mut w2);
            assert!(w2.contains(EdgeId(0)), "certain edge always survives");
            assert_eq!(w1.contains(EdgeId(0)), w2.contains(EdgeId(1)));
            assert_eq!(w1.contains(EdgeId(1)), w2.contains(EdgeId(2)));
        }
    }

    #[test]
    fn sampling_is_reproducible() {
        let g = graph_with_probs(&[0.5, 0.5, 0.5]);
        let domain = EdgeSubset::full(&g);
        let seq = SeedSequence::new(11);
        let run = |label| {
            let mut rng = seq.rng(label);
            let mut sizes = Vec::new();
            sample_worlds(&g, &domain, 20, &mut rng, |w| sizes.push(w.len()));
            sizes
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different stream labels should diverge");
    }

    #[test]
    fn pairwise_independence_spot_check() {
        // Joint frequency of two p=0.5 edges should be ≈0.25.
        let g = graph_with_probs(&[0.5, 0.5]);
        let domain = EdgeSubset::full(&g);
        let mut rng = SeedSequence::new(23).rng(0);
        let n = 20_000;
        let mut both = 0;
        sample_worlds(&g, &domain, n, &mut rng, |w| {
            if w.contains(EdgeId(0)) && w.contains(EdgeId(1)) {
                both += 1;
            }
        });
        let freq = both as f64 / n as f64;
        assert!(
            (freq - 0.25).abs() < 0.02,
            "joint frequency {freq} too far from 0.25"
        );
    }
}
