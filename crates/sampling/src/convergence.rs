//! Incremental sampling schedules.
//!
//! The CI-pruning heuristic (§6.3) races candidate edges against each other:
//! samples are drawn in rounds, and a candidate whose upper flow bound drops
//! below another candidate's lower bound is eliminated before the full
//! sample budget is spent. [`BatchSchedule`] produces the per-round batch
//! sizes for that race.

/// A geometric batching schedule: rounds of `first, first·growth, ...`
/// capped so the cumulative total never exceeds `budget`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchSchedule {
    /// Size of the first batch.
    pub first: u32,
    /// Multiplicative growth factor per round (≥ 1).
    pub growth: f64,
    /// Total sample budget across all rounds.
    pub budget: u32,
}

impl BatchSchedule {
    /// The paper's setting: a first batch of 50 (comfortably above the
    /// 30-sample CLT minimum of §6.3), doubling rounds, total budget =
    /// `samplesize`.
    ///
    /// The schedule only shapes the rounds; the CLT floor itself is
    /// enforced by the racing engine
    /// ([`crate::race::RaceConfig::clt_floor`]), which refuses to eliminate
    /// any candidate before it has
    /// [`MIN_SAMPLES_FOR_CLT`](crate::confidence::MIN_SAMPLES_FOR_CLT)
    /// samples — regardless of how small `first` is configured.
    pub fn paper_default(budget: u32) -> Self {
        BatchSchedule {
            first: 50,
            growth: 2.0,
            budget,
        }
    }

    /// Cumulative sample budgets after each round (e.g. `first = 50`,
    /// `growth = 2`, `budget = 1000` → `50, 150, 350, 750, 1000`) — the
    /// ladder a candidate climbs in the §6.3 race.
    pub fn cumulative_budgets(&self) -> Vec<u32> {
        let mut acc = 0;
        self.batches()
            .map(|b| {
                acc += b;
                acc
            })
            .collect()
    }

    /// Yields batch sizes; the sum of all yielded batches equals `budget`
    /// (the final batch is truncated).
    pub fn batches(&self) -> impl Iterator<Item = u32> {
        let mut drawn = 0u32;
        let mut next = self.first.max(1);
        let growth = self.growth.max(1.0);
        let budget = self.budget;
        std::iter::from_fn(move || {
            if drawn >= budget {
                return None;
            }
            let batch = next.min(budget - drawn);
            drawn += batch;
            next = ((next as f64) * growth).ceil() as u32;
            Some(batch)
        })
    }

    /// Number of rounds the schedule produces.
    pub fn round_count(&self) -> usize {
        self.batches().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_sum_to_budget() {
        let s = BatchSchedule {
            first: 50,
            growth: 2.0,
            budget: 1000,
        };
        let total: u32 = s.batches().sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn batches_grow_geometrically() {
        let s = BatchSchedule {
            first: 10,
            growth: 2.0,
            budget: 1000,
        };
        let b: Vec<u32> = s.batches().collect();
        assert_eq!(&b[..4], &[10, 20, 40, 80]);
    }

    #[test]
    fn final_batch_truncated() {
        let s = BatchSchedule {
            first: 400,
            growth: 2.0,
            budget: 1000,
        };
        let b: Vec<u32> = s.batches().collect();
        assert_eq!(b, vec![400, 600]);
    }

    #[test]
    fn degenerate_schedules() {
        let s = BatchSchedule {
            first: 0,
            growth: 0.5,
            budget: 5,
        };
        // first clamps to 1, growth clamps to 1.0 → five batches of 1.
        let b: Vec<u32> = s.batches().collect();
        assert_eq!(b, vec![1, 1, 1, 1, 1]);
        let empty = BatchSchedule {
            first: 10,
            growth: 2.0,
            budget: 0,
        };
        assert_eq!(empty.round_count(), 0);
    }

    #[test]
    fn paper_default_has_sane_shape() {
        let s = BatchSchedule::paper_default(1000);
        let b: Vec<u32> = s.batches().collect();
        assert!(b[0] >= 30, "first batch must satisfy the CLT minimum");
        assert_eq!(b.iter().sum::<u32>(), 1000);
    }

    #[test]
    fn cumulative_budgets_match_the_papers_ladder() {
        let s = BatchSchedule::paper_default(1000);
        assert_eq!(s.cumulative_budgets(), vec![50, 150, 350, 750, 1000]);
        let empty = BatchSchedule {
            first: 10,
            growth: 2.0,
            budget: 0,
        };
        assert!(empty.cumulative_budgets().is_empty());
    }
}
