//! Multi-threaded, thread-count- and lane-width-invariant Monte-Carlo
//! estimation.
//!
//! [`ParallelEstimator`] splits a sample budget into batches of
//! [`LANES`] worlds, evaluates each batch with the
//! bit-parallel kernel of [`crate::batch`], and shards batches across the
//! persistent [`WorkerPool`]. Batch `b` draws lane
//! `w`'s coins from the seed-sequence child `b * LANES + w`, so each batch
//! is a pure function of `(seed sequence, batch index)` — which worker
//! computes it is irrelevant. At lane widths above 1 (see
//! [`default_lane_words`] / [`ParallelEstimator::with_lane_words`]) each
//! BFS pass resolves a `[u64; W]` block of `W` consecutive batches at once;
//! the per-world streams are unchanged, so the grouping is irrelevant too.
//! Per-vertex success counts merge by integer addition (order-free) and
//! per-64-world flow moments merge in ascending batch order — wide blocks
//! are split back into their per-batch moment groups before merging — so
//! results are **bit-identical for every thread count and every lane
//! width**, as locked down by `tests/determinism.rs`.

use std::sync::atomic::{AtomicU64, Ordering};

use flowmax_graph::{EdgeSubset, ProbabilisticGraph, VertexId};

use crate::batch::{block_ones, block_worlds, lanes_in_batch, LaneBfs, WorldBatch, LANES};
use crate::component::{ComponentEstimate, ComponentGraph};
use crate::estimate::FlowEstimate;
use crate::pool::WorkerPool;
use crate::reachability::ReachabilityEstimate;
use crate::rng::SeedSequence;
use crate::scratch::{with_thread_scratch, SamplingScratch, ScratchSlot};

/// Invalid worker-count requests observed so far (zero or unparseable, from
/// any origin). The first one is echoed to stderr; all are counted, so
/// tests — and operators debugging a mysteriously serial server — can see
/// that requests were clamped without scraping stderr.
static INVALID_THREAD_REQUESTS: AtomicU64 = AtomicU64::new(0);

/// Invalid lane-width requests observed so far (anything outside
/// `{1, 4, 8}`, from any origin) — same observability story as
/// [`invalid_thread_requests`].
static INVALID_LANE_REQUESTS: AtomicU64 = AtomicU64::new(0);

/// How many invalid thread-count requests have been clamped to 1 so far in
/// this process (see [`clamp_threads`] and `FLOWMAX_THREADS` parsing).
pub fn invalid_thread_requests() -> u64 {
    INVALID_THREAD_REQUESTS.load(Ordering::Relaxed)
}

/// How many invalid lane-width requests have been clamped to 1 so far in
/// this process (see [`clamp_lane_words`] and `FLOWMAX_LANES` parsing).
pub fn invalid_lane_requests() -> u64 {
    INVALID_LANE_REQUESTS.load(Ordering::Relaxed)
}

/// Records one invalid worker-count request: warns on stderr the first
/// time (once per process, not once per job — a daemon misconfigured with
/// `FLOWMAX_THREADS=eight` would otherwise spam every query), counts every
/// time, and returns the clamped value 1.
fn note_invalid_threads(origin: &str, detail: &str) -> usize {
    if INVALID_THREAD_REQUESTS.fetch_add(1, Ordering::Relaxed) == 0 {
        // flowmax-lint: allow(L6, sanctioned warn-once clamp helper: one stderr line per process for a misconfigured thread count; results are unaffected)
        eprintln!(
            "flowmax: warning: invalid worker-thread count from {origin} ({detail}); \
             clamping to 1 (sequential) — results are unaffected, only wall-clock time"
        );
    }
    1
}

/// Records one invalid lane-width request (same warn-once/count-always
/// policy as [`note_invalid_threads`]) and returns the clamped width 1.
fn note_invalid_lanes(origin: &str, detail: &str) -> usize {
    if INVALID_LANE_REQUESTS.fetch_add(1, Ordering::Relaxed) == 0 {
        // flowmax-lint: allow(L6, sanctioned warn-once clamp helper: one stderr line per process for a misconfigured lane width; results are unaffected)
        eprintln!(
            "flowmax: warning: invalid lane width from {origin} ({detail}); \
             supported widths are 1, 4 and 8 lane words (64/256/512 worlds); \
             clamping to 1 — results are unaffected, only wall-clock time"
        );
    }
    1
}

/// The single clamping story for explicit thread-count requests, shared by
/// [`ParallelEstimator`] call sites, `Session::with_threads`, and the CLI's
/// `--threads`: a request of `0` is invalid (there is no zero-thread
/// estimator), warned about once per process on stderr, and clamped to 1.
/// Positive requests pass through unchanged.
pub fn clamp_threads(requested: usize, origin: &str) -> usize {
    if requested == 0 {
        note_invalid_threads(origin, "0 worker threads requested")
    } else {
        requested
    }
}

/// The single clamping story for explicit lane-width requests, shared by
/// [`ParallelEstimator::with_lane_words`], `Session::with_lane_words`, and
/// the CLIs' `--lanes`: the kernel is instantiated only at widths 1, 4 and
/// 8 (64/256/512 worlds per BFS pass), so anything else is clamped to 1
/// with a one-time warning (same policy as invalid thread counts). Results never
/// depend on the width — only wall-clock time does.
pub fn clamp_lane_words(requested: usize, origin: &str) -> usize {
    if matches!(requested, 1 | 4 | 8) {
        requested
    } else {
        note_invalid_lanes(origin, &format!("{requested} lane words requested"))
    }
}

/// Parses a thread-count override, as read from `FLOWMAX_THREADS`.
///
/// Unset or blank means 1 (fully sequential). Anything else must be a
/// positive integer: zero or unparseable values (`FLOWMAX_THREADS=eight`)
/// are clamped to 1 with a one-time stderr warning instead of silently
/// serializing a production server — the same story as [`clamp_threads`].
fn parse_threads(var: Option<String>) -> usize {
    let Some(raw) = var else { return 1 };
    let raw = raw.trim();
    if raw.is_empty() {
        return 1;
    }
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        Ok(_) => note_invalid_threads("FLOWMAX_THREADS", "0 requests no workers at all"),
        Err(_) => note_invalid_threads("FLOWMAX_THREADS", &format!("unparseable value {raw:?}")),
    }
}

/// Parses a lane-width override, as read from `FLOWMAX_LANES`.
///
/// Unset or blank means 1 (the 64-world reference kernel). Anything else
/// must be one of the supported widths `1`, `4` or `8`; other values are
/// clamped to 1 with the one-time warning of [`note_invalid_lanes`].
fn parse_lane_words(var: Option<String>) -> usize {
    let Some(raw) = var else { return 1 };
    let raw = raw.trim();
    if raw.is_empty() {
        return 1;
    }
    match raw.parse::<usize>() {
        Ok(n) if matches!(n, 1 | 4 | 8) => n,
        Ok(n) => note_invalid_lanes("FLOWMAX_LANES", &format!("{n} is not one of 1, 4, 8")),
        Err(_) => note_invalid_lanes("FLOWMAX_LANES", &format!("unparseable value {raw:?}")),
    }
}

/// The default worker count: the `FLOWMAX_THREADS` environment variable
/// when set to a positive integer, otherwise 1 (fully sequential).
///
/// Results never depend on this value — only wall-clock time does — so CI
/// runs the whole test suite under several settings.
pub fn default_threads() -> usize {
    // flowmax-lint: allow(L3, sanctioned FLOWMAX_THREADS entry point: the value only sets wall-clock parallelism, which the determinism suite proves never changes results)
    parse_threads(std::env::var("FLOWMAX_THREADS").ok())
}

/// The default lane width, in 64-world lane words per block: the
/// `FLOWMAX_LANES` environment variable when set to 1, 4 or 8, otherwise 1.
///
/// Results never depend on this value — only wall-clock time does — so CI
/// runs the whole test suite under both `FLOWMAX_LANES=1` and
/// `FLOWMAX_LANES=8`, mirroring the `FLOWMAX_THREADS` matrix.
pub fn default_lane_words() -> usize {
    // flowmax-lint: allow(L3, sanctioned FLOWMAX_LANES entry point: the value only selects the SIMD lane width, which the cross-width bit-identity suite proves never changes results)
    parse_lane_words(std::env::var("FLOWMAX_LANES").ok())
}

/// Expands `$body` once per supported lane width, selecting the arm that
/// matches the runtime width `$w` and binding `$W` as a `const usize`
/// inside it — the bridge from a runtime `FLOWMAX_LANES` value to the
/// const-generic kernel instantiations. Unsupported widths (already
/// clamped by [`clamp_lane_words`]) fall back to the width-1 reference.
macro_rules! with_lane_words {
    ($w:expr, $W:ident, $body:expr) => {
        match $w {
            4 => {
                const $W: usize = 4;
                $body
            }
            8 => {
                const $W: usize = 8;
                $body
            }
            _ => {
                const $W: usize = 1;
                $body
            }
        }
    };
}

/// Runs `work` over `0..num_blocks` split into at most `threads`
/// contiguous chunks, returning the per-chunk results in chunk order.
///
/// With one chunk the work runs on the calling thread (no spawn overhead);
/// otherwise chunk 0 runs on the caller and each further chunk on a pinned
/// worker of the process-global persistent [`WorkerPool`]. `work` receives
/// its worker index (the chunk's position) and the block range. Chunk
/// boundaries affect only *who* computes a block, never what the block
/// contains.
pub(crate) fn parallel_chunks<T, F>(num_blocks: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    let workers = threads.max(1).min(num_blocks.max(1));
    if workers <= 1 {
        return vec![work(0, 0..num_blocks)];
    }
    let base = num_blocks / workers;
    let extra = num_blocks % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for t in 0..workers {
        let len = base + usize::from(t < extra);
        ranges.push(start..start + len);
        start += len;
    }
    WorkerPool::global().run(ranges, work)
}

/// Work-size floor for sharding: an extra worker must have at least this
/// many edge-coin draws (edges × worlds) to amortize its dispatch/report
/// round-trip through the persistent pool (single-digit microseconds per
/// chunk — far below the old per-job scoped spawn, but still not free).
const MIN_COINS_PER_WORKER: u64 = 1 << 16;

/// Caps the worker count by the job's size so that small jobs — like the
/// F-tree's per-component probes or the Naive baseline's few-edge domains —
/// run on the calling thread even when more workers are configured.
/// Results never depend on this, only wall-clock time does.
fn effective_workers(threads: usize, samples: u32, work_edges: usize) -> usize {
    workers_for_coins(threads, samples as u64 * work_edges.max(1) as u64)
}

/// The coin-count form of [`effective_workers`], for jobs — like the racing
/// engine's multi-candidate rounds — whose total work is summed over many
/// components and may not fit the `samples × edges` shape.
fn workers_for_coins(threads: usize, coins: u64) -> usize {
    let by_work = usize::try_from(coins / MIN_COINS_PER_WORKER)
        .unwrap_or(usize::MAX)
        .max(1);
    threads.max(1).min(by_work)
}

/// Active lanes of the width-`W` block whose first batch is `first_batch`,
/// under a `samples`-world budget: the sum of [`lanes_in_batch`] over the
/// block's `W` batches (0 at or past the boundary).
fn block_lanes<const W: usize>(samples: u32, first_batch: usize) -> u32 {
    let drawn = (first_batch as u64) * LANES as u64;
    (samples as u64)
        .saturating_sub(drawn)
        .min(block_worlds::<W>() as u64) as u32
}

/// Size and shape of one batched estimation job.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchJob {
    /// Vertices of the (sub)graph being traversed.
    pub vertex_count: usize,
    /// Edges actually sampled per world (the active domain size) — the
    /// per-batch work estimate the worker heuristic is based on, which for
    /// sparse domains may be far below the graph's edge capacity (the
    /// sampled mask buffer sizes itself during each fill).
    pub work_edges: usize,
    /// BFS source, as a vertex index.
    pub source: usize,
    /// Total worlds to draw.
    pub samples: u32,
    /// Configured worker-count ceiling.
    pub threads: usize,
}

/// The shared batch driver behind every batched estimator: draws
/// `job.samples` worlds in width-`W` blocks of `W` consecutive
/// [`LANES`]-world batches (the block starting at batch `b` fills with
/// first lane label `b·LANES`, the seed-per-batch contract), resolves each
/// block with one lane-BFS from `job.source`, and folds every block into a
/// per-chunk accumulator via `per_batch(acc, bfs, first_batch)`. Per-chunk
/// accumulators are returned in ascending block order.
///
/// `fill` samples one block into the thread's warm
/// [`WorldBatch`] scratch; `neighbors` yields
/// `(vertex index, edge index)` adjacency. Each chunk runs against its
/// thread's persistent [`with_thread_scratch`] arenas, so steady-state
/// estimation allocates nothing per batch. Reachability counting, flow
/// aggregation, and the component-local sampler are all thin wrappers, so
/// the batching/label/merge contract lives in exactly one place.
pub(crate) fn map_batches<const W: usize, A, F, N, I, P>(
    job: BatchJob,
    fill: F,
    neighbors: N,
    per_batch: P,
) -> Vec<A>
where
    SamplingScratch<W>: ScratchSlot,
    A: Default + Send,
    F: Fn(&mut WorldBatch<W>, u64, u32) + Sync,
    N: Fn(usize) -> I + Sync,
    I: Iterator<Item = (usize, usize)>,
    P: Fn(&mut A, &LaneBfs<W>, usize) + Sync,
{
    assert!(job.samples > 0, "need at least one sample");
    let num_batches = job.samples.div_ceil(LANES) as usize;
    let num_blocks = num_batches.div_ceil(W);
    let workers = effective_workers(job.threads, job.samples, job.work_edges);
    parallel_chunks(num_blocks, workers, |_worker, range| {
        with_thread_scratch::<W, _>(|scratch| {
            let mut acc = A::default();
            scratch.bfs.prepare(job.vertex_count);
            for g in range {
                // Fault site: one keyed arrival per sampled block. An
                // injected panic here is caught by the pool's task
                // containment and re-raised on the submitter, exactly like
                // a real batch-loop crash.
                flowmax_faults::failpoint_keyed("sampling/batch", g as u64);
                let first_batch = g * W;
                let lanes = block_lanes::<W>(job.samples, first_batch);
                fill(&mut scratch.batch, first_batch as u64 * LANES as u64, lanes);
                scratch.bfs.run(
                    job.source,
                    scratch.batch.active_mask(),
                    scratch.batch.masks(),
                    &neighbors,
                );
                per_batch(&mut acc, &scratch.bfs, first_batch);
            }
            acc
        })
    })
}

/// Per-vertex success counts over `job.samples` worlds: the reachability
/// specialization of [`map_batches`], shared by the graph-level
/// [`ParallelEstimator`] and the component-local
/// [`crate::component::ComponentGraph::sample_reachability_batched`].
pub(crate) fn batched_success_counts<const W: usize, F, N, I>(
    job: BatchJob,
    fill: F,
    neighbors: N,
) -> Vec<u32>
where
    SamplingScratch<W>: ScratchSlot,
    F: Fn(&mut WorldBatch<W>, u64, u32) + Sync,
    N: Fn(usize) -> I + Sync,
    I: Iterator<Item = (usize, usize)>,
{
    let chunks = map_batches::<W, _, _, _, _, _>(
        job,
        fill,
        neighbors,
        |acc: &mut Vec<u32>, bfs, _first_batch| {
            if acc.is_empty() {
                acc.resize(job.vertex_count, 0);
            }
            for (s, mask) in acc.iter_mut().zip(bfs.reached()) {
                *s += block_ones(mask);
            }
        },
    );
    // Success counts are integers, so summing chunks is exact and
    // order-free — but we still fold in chunk order for clarity.
    let mut successes = vec![0u32; job.vertex_count];
    for chunk in chunks {
        for (total, part) in successes.iter_mut().zip(chunk) {
            *total += part;
        }
    }
    successes
}

/// A batched, multi-threaded drop-in for the scalar estimators of
/// [`crate::reachability`] and [`crate::component`].
///
/// Construction is free: the estimator is just a worker-count ceiling plus
/// a lane width. Execution runs on the process-global persistent
/// [`WorkerPool`], and every thread — pool worker
/// or submitter — keeps one warm
/// [`SamplingScratch`] per lane width for life (see
/// [`with_thread_scratch`]), so steady-state estimation performs zero heap
/// allocation per batch and pays no thread spawn/join per job. The
/// configured count is an upper bound: jobs too small to amortize even a
/// pool dispatch — e.g. the F-tree's per-component probes — run on the
/// calling thread against its own warm scratch, so `threads > 1` never
/// makes an estimation slower. Results never depend on the scratch, the
/// worker count, or the lane width — only wall-clock time does.
#[derive(Debug, Clone)]
pub struct ParallelEstimator {
    threads: usize,
    lane_words: usize,
}

impl ParallelEstimator {
    /// An estimator using `threads` workers (clamped to at least 1, with
    /// the process-wide one-time warning of [`clamp_threads`] on 0) at the
    /// ambient [`default_lane_words`] width.
    pub fn new(threads: usize) -> Self {
        ParallelEstimator {
            threads: clamp_threads(threads, "ParallelEstimator::new"),
            lane_words: default_lane_words(),
        }
    }

    /// An estimator using [`default_threads`] and [`default_lane_words`].
    pub fn from_env() -> Self {
        ParallelEstimator::new(default_threads())
    }

    /// Overrides the lane width (64-world lane words per BFS block;
    /// supported widths 1, 4 and 8, others clamped to 1 with the one-time
    /// warning of [`clamp_lane_words`]). Results never depend on the
    /// width — only wall-clock time does.
    pub fn with_lane_words(mut self, lane_words: usize) -> Self {
        self.lane_words = clamp_lane_words(lane_words, "ParallelEstimator::with_lane_words");
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured lane width, in 64-world lane words per block.
    pub fn lane_words(&self) -> usize {
        self.lane_words
    }

    /// Runs `jobs` independent jobs on the worker pool and returns their
    /// results in job order: job `i` is `run(i)`.
    ///
    /// This is the coarse-grained counterpart of the batched estimators —
    /// instead of sharding one estimation's sample batches, it shards whole
    /// independent work items (e.g. a multi-query solver session's queries)
    /// across the same pool. Jobs are split into contiguous chunks, so
    /// which worker runs a job never changes *what* the job computes; as
    /// everywhere in this crate, the thread count affects only wall-clock
    /// time, provided `run` is itself a pure function of the job index.
    pub fn run_jobs<T, F>(&self, jobs: usize, run: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        parallel_chunks(jobs, self.threads, |_worker, range| {
            range.map(&run).collect::<Vec<T>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Batched equivalent of [`crate::reachability::sample_reachability`]:
    /// per-vertex reachability counts from `query` over `samples` worlds of
    /// the `active` subgraph.
    ///
    /// World `i` draws its coins from `seq.rng(i)`; the result is a pure
    /// function of `(seq, samples)`, independent of the thread count and
    /// the lane width.
    pub fn sample_reachability(
        &self,
        graph: &ProbabilisticGraph,
        active: &EdgeSubset,
        query: VertexId,
        samples: u32,
        seq: &SeedSequence,
    ) -> ReachabilityEstimate {
        with_lane_words!(self.lane_words, W, {
            self.sample_reachability_at::<W>(graph, active, query, samples, seq)
        })
    }

    fn sample_reachability_at<const W: usize>(
        &self,
        graph: &ProbabilisticGraph,
        active: &EdgeSubset,
        query: VertexId,
        samples: u32,
        seq: &SeedSequence,
    ) -> ReachabilityEstimate
    where
        SamplingScratch<W>: ScratchSlot,
    {
        let job = BatchJob {
            vertex_count: graph.vertex_count(),
            work_edges: active.len(),
            source: query.index(),
            samples,
            threads: self.threads,
        };
        let successes = batched_success_counts::<W, _, _, _>(
            job,
            |batch, first_label, lanes| batch.sample_into(graph, active, seq, first_label, lanes),
            |u| {
                graph
                    .neighbors(VertexId::from_index(u))
                    .map(|(v, e)| (v.index(), e.index()))
            },
        );
        ReachabilityEstimate::from_parts(successes, samples)
    }

    /// Batched equivalent of [`crate::reachability::sample_flow`]: the
    /// per-world flow aggregate over `samples` worlds.
    ///
    /// Per-64-world moments are merged in ascending batch order (Chan et
    /// al.) — wide blocks are split back into their per-batch moment groups
    /// first — so the floating-point result is bit-identical for every
    /// thread count and every lane width.
    pub fn sample_flow(
        &self,
        graph: &ProbabilisticGraph,
        active: &EdgeSubset,
        query: VertexId,
        include_query: bool,
        samples: u32,
        seq: &SeedSequence,
    ) -> FlowEstimate {
        with_lane_words!(self.lane_words, W, {
            self.sample_flow_at::<W>(graph, active, query, include_query, samples, seq)
        })
    }

    fn sample_flow_at<const W: usize>(
        &self,
        graph: &ProbabilisticGraph,
        active: &EdgeSubset,
        query: VertexId,
        include_query: bool,
        samples: u32,
        seq: &SeedSequence,
    ) -> FlowEstimate
    where
        SamplingScratch<W>: ScratchSlot,
    {
        let job = BatchJob {
            vertex_count: graph.vertex_count(),
            work_edges: active.len(),
            source: query.index(),
            samples,
            threads: self.threads,
        };
        let chunks = map_batches::<W, _, _, _, _, _>(
            job,
            |batch, first_label, lanes| batch.sample_into(graph, active, seq, first_label, lanes),
            |u| {
                graph
                    .neighbors(VertexId::from_index(u))
                    .map(|(v, e)| (v.index(), e.index()))
            },
            |estimates: &mut Vec<FlowEstimate>, bfs, first_batch| {
                // Accumulate per-lane flows word by word, then emit one
                // moment group per 64-world batch of the block — the same
                // groups, in the same order, as a width-1 run would emit.
                let mut flows = [[0.0f64; LANES as usize]; W];
                for v in graph.vertices() {
                    if v == query && !include_query {
                        continue;
                    }
                    let w = graph.weight(v).value();
                    if w == 0.0 {
                        continue;
                    }
                    let block = bfs.reached_mask(v.index());
                    for (k, flows_k) in flows.iter_mut().enumerate() {
                        let mut mask = block[k];
                        while mask != 0 {
                            flows_k[mask.trailing_zeros() as usize] += w;
                            mask &= mask - 1;
                        }
                    }
                }
                for (k, flows_k) in flows.iter().enumerate() {
                    let lanes = lanes_in_batch(samples, first_batch + k);
                    if lanes == 0 {
                        break;
                    }
                    let mut est = FlowEstimate::new();
                    for &flow in flows_k.iter().take(lanes as usize) {
                        est.push(flow);
                    }
                    estimates.push(est);
                }
            },
        );
        let mut total = FlowEstimate::new();
        for est in chunks.into_iter().flatten() {
            total = total.merge(&est);
        }
        total
    }

    /// Batched equivalent of [`ComponentGraph::sample_reachability`]:
    /// `Pr[v ↔ AV]` counts for every local vertex of a component, computed
    /// against the estimator's pooled scratch (world `i` draws from
    /// `seq.rng(i)`; bit-identical at every thread count and lane width).
    ///
    /// This is the selection loop's hottest entry point — one call per
    /// probed component — so it reuses the warm scratch of whichever
    /// worker slot serves it instead of allocating batch/BFS buffers.
    pub fn sample_component(
        &self,
        component: &ComponentGraph,
        samples: u32,
        seq: &SeedSequence,
    ) -> ComponentEstimate {
        with_lane_words!(self.lane_words, W, {
            let job = BatchJob {
                vertex_count: component.vertex_count(),
                work_edges: component.edge_count(),
                source: 0,
                samples,
                threads: self.threads,
            };
            let successes = batched_success_counts::<W, _, _, _>(
                job,
                |batch, first_label, lanes| component.fill_batch(batch, seq, first_label, lanes),
                |u| component.local_neighbors(u),
            );
            ComponentEstimate::from_success_counts(successes, samples)
        })
    }

    /// Draws worlds `[first_world, total_worlds)` for **many components as
    /// one job**: every `(component, lane block)` pair becomes one work
    /// unit, and all units are sharded across the worker pool together.
    ///
    /// Returns one per-vertex success-count delta per request, covering
    /// exactly the requested world range. Because world `i` of request `r`
    /// always draws from `r.seq.rng(i)` and counts merge by integer
    /// addition, the result is a pure function of each request alone —
    /// bit-identical for every thread count and lane width, and to
    /// per-component calls.
    ///
    /// This is where the racing engine's speedup over per-candidate
    /// estimation comes from: individual component probes are far too small
    /// to amortize worker spawn/join (see `effective_workers`) and run
    /// sequentially, but the union of all surviving candidates' batches in
    /// a round is large enough to keep every worker busy.
    pub fn sample_component_worlds(&self, requests: &[WorldsRequest<'_>]) -> Vec<Vec<u32>> {
        with_lane_words!(self.lane_words, W, {
            self.sample_component_worlds_at::<W>(requests)
        })
    }

    fn sample_component_worlds_at<const W: usize>(
        &self,
        requests: &[WorldsRequest<'_>],
    ) -> Vec<Vec<u32>>
    where
        SamplingScratch<W>: ScratchSlot,
    {
        // Flatten: global unit index → (request, lane block). A request's
        // blocks group `W` consecutive batches starting at its own
        // `first_world` boundary — world labels are unaffected by the
        // grouping, so the counts match the width-1 reference exactly.
        // Requests are laid out contiguously so each chunk touches few
        // distinct components.
        let mut unit_request: Vec<u32> = Vec::new();
        let mut unit_first_batch: Vec<u32> = Vec::new();
        let mut coins = 0u64;
        for (r, req) in requests.iter().enumerate() {
            assert!(
                req.first_world % LANES == 0,
                "extension must start on a whole-batch boundary"
            );
            assert!(
                req.total_worlds > req.first_world,
                "request must draw at least one world"
            );
            coins += (req.total_worlds - req.first_world) as u64
                * req.component.edge_count().max(1) as u64;
            let first_batch = req.first_world / LANES;
            let last_batch = (req.total_worlds - 1) / LANES;
            let mut b = first_batch;
            while b <= last_batch {
                unit_request.push(r as u32);
                unit_first_batch.push(b);
                b += W as u32;
            }
        }
        let workers = workers_for_coins(self.threads, coins);
        let chunks = parallel_chunks(unit_request.len(), workers, |_worker, range| {
            with_thread_scratch::<W, _>(|scratch| {
                let mut acc: Vec<Option<Vec<u32>>> = vec![None; requests.len()];
                let mut owner: Option<u32> = None;
                for u in range {
                    let r = unit_request[u];
                    let req = &requests[r as usize];
                    let first_batch = unit_first_batch[u] as usize;
                    // Units of one request are contiguous, so the warm
                    // scratch is re-targeted only at request boundaries (and
                    // even then the buffers are reused, not reallocated).
                    if owner != Some(r) {
                        owner = Some(r);
                        scratch.bfs.prepare(req.component.vertex_count());
                    }
                    let lanes = block_lanes::<W>(req.total_worlds, first_batch);
                    req.component.fill_batch(
                        &mut scratch.batch,
                        &req.seq,
                        first_batch as u64 * LANES as u64,
                        lanes,
                    );
                    scratch
                        .bfs
                        .run(0, scratch.batch.active_mask(), scratch.batch.masks(), |u| {
                            req.component.local_neighbors(u)
                        });
                    let counts = acc[r as usize]
                        .get_or_insert_with(|| vec![0u32; req.component.vertex_count()]);
                    for (s, mask) in counts.iter_mut().zip(scratch.bfs.reached()) {
                        *s += block_ones(mask);
                    }
                }
                acc
            })
        });
        // Success counts are integers: summing per-request partials across
        // chunks is exact and order-free.
        let mut out: Vec<Vec<u32>> = requests
            .iter()
            .map(|req| vec![0u32; req.component.vertex_count()])
            .collect();
        for chunk in chunks {
            for (total, part) in out.iter_mut().zip(chunk) {
                if let Some(part) = part {
                    for (t, p) in total.iter_mut().zip(part) {
                        *t += p;
                    }
                }
            }
        }
        out
    }
}

/// One component's share of a [`ParallelEstimator::sample_component_worlds`]
/// job: draw worlds `[first_world, total_worlds)`, lane/seed contract as in
/// [`crate::batch`] (world `i` draws from `seq.rng(i)`).
///
/// `first_world` must be a multiple of [`LANES`] — extensions always resume
/// on a whole-batch boundary; `total_worlds` may be arbitrary (the final
/// batch is partial).
#[derive(Debug, Clone, Copy)]
pub struct WorldsRequest<'a> {
    /// The component to sample.
    pub component: &'a ComponentGraph,
    /// Seed stream of the component (shared across all its extensions).
    pub seq: SeedSequence,
    /// First world to draw (inclusive, multiple of [`LANES`]).
    pub first_world: u32,
    /// Total worlds of the target estimate (exclusive end of the range).
    pub total_worlds: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reachability::{sample_flow, sample_reachability};
    use flowmax_graph::{GraphBuilder, Probability, Weight};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    /// Small cyclic graph: Q(0)-1 (0.5), 1-2 (0.5), Q-2 (0.5), 2-3 (0.8).
    fn cyclic() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::new(2.0).unwrap());
        b.add_edge(VertexId(0), VertexId(1), p(0.5)).unwrap();
        b.add_edge(VertexId(1), VertexId(2), p(0.5)).unwrap();
        b.add_edge(VertexId(0), VertexId(2), p(0.5)).unwrap();
        b.add_edge(VertexId(2), VertexId(3), p(0.8)).unwrap();
        b.build()
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        let g = cyclic();
        let active = EdgeSubset::full(&g);
        let seq = SeedSequence::new(404);
        for samples in [1, 63, 64, 65, 1000] {
            let reach1 = ParallelEstimator::new(1).sample_reachability(
                &g,
                &active,
                VertexId(0),
                samples,
                &seq,
            );
            let flow1 = ParallelEstimator::new(1).sample_flow(
                &g,
                &active,
                VertexId(0),
                false,
                samples,
                &seq,
            );
            for threads in [2, 3, 8] {
                let est = ParallelEstimator::new(threads);
                let reach_t = est.sample_reachability(&g, &active, VertexId(0), samples, &seq);
                let flow_t = est.sample_flow(&g, &active, VertexId(0), false, samples, &seq);
                assert_eq!(reach1, reach_t, "samples={samples} threads={threads}");
                assert_eq!(flow1, flow_t, "samples={samples} threads={threads}");
            }
        }
    }

    #[test]
    fn lane_widths_are_bit_identical() {
        // The tentpole contract: every lane width, at every thread count,
        // reproduces the width-1 reference bit for bit — success counts by
        // world identity, flow moments by per-batch merge grouping.
        let g = cyclic();
        let active = EdgeSubset::full(&g);
        let seq = SeedSequence::new(808);
        for samples in [1, 63, 64, 65, 256, 257, 300, 512, 1000] {
            let narrow = ParallelEstimator::new(1).with_lane_words(1);
            let reach1 = narrow.sample_reachability(&g, &active, VertexId(0), samples, &seq);
            let flow1 = narrow.sample_flow(&g, &active, VertexId(0), true, samples, &seq);
            for lane_words in [4, 8] {
                for threads in [1, 3, 8] {
                    let est = ParallelEstimator::new(threads).with_lane_words(lane_words);
                    assert_eq!(
                        reach1,
                        est.sample_reachability(&g, &active, VertexId(0), samples, &seq),
                        "samples={samples} lanes={lane_words} threads={threads}"
                    );
                    assert_eq!(
                        flow1,
                        est.sample_flow(&g, &active, VertexId(0), true, samples, &seq),
                        "samples={samples} lanes={lane_words} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_estimates_agree_with_scalar_statistics() {
        let g = cyclic();
        let active = EdgeSubset::full(&g);
        let seq = SeedSequence::new(17);
        let n = 20_000;
        let batched =
            ParallelEstimator::new(4).sample_reachability(&g, &active, VertexId(0), n, &seq);
        let mut rng = seq.rng(0);
        let scalar = sample_reachability(&g, &active, VertexId(0), n, &mut rng);
        for v in g.vertices() {
            assert!(
                (batched.probability(v) - scalar.probability(v)).abs() < 0.02,
                "vertex {v}: {} vs {}",
                batched.probability(v),
                scalar.probability(v)
            );
        }
        let bf = ParallelEstimator::new(4).sample_flow(&g, &active, VertexId(0), false, n, &seq);
        let mut rng = seq.rng(1);
        let sf = sample_flow(&g, &active, VertexId(0), false, n, &mut rng);
        assert!(
            (bf.mean() - sf.mean()).abs() < 0.1,
            "{} vs {}",
            bf.mean(),
            sf.mean()
        );
        assert_eq!(bf.samples(), n as u64);
    }

    #[test]
    fn query_always_reached_and_samples_counted() {
        let g = cyclic();
        let active = EdgeSubset::full(&g);
        let seq = SeedSequence::new(2);
        let est =
            ParallelEstimator::new(8).sample_reachability(&g, &active, VertexId(0), 130, &seq);
        assert_eq!(est.samples(), 130);
        assert_eq!(est.probability(VertexId(0)), 1.0);
        assert_eq!(est.successes(VertexId(0)), 130);
    }

    #[test]
    fn lane_labels_match_scalar_child_streams() {
        // Batch 0 lane 0 must be the scalar world of child stream 0, so a
        // 64-sample batched run and a scalar run share their first world.
        let g = cyclic();
        let active = EdgeSubset::full(&g);
        let seq = SeedSequence::new(33);
        let est = ParallelEstimator::new(1).sample_reachability(&g, &active, VertexId(0), 1, &seq);
        let mut rng = seq.rng(0);
        let scalar = sample_reachability(&g, &active, VertexId(0), 1, &mut rng);
        for v in g.vertices() {
            assert_eq!(est.successes(v), scalar.successes(v), "vertex {v}");
        }
    }

    /// The whole parse/clamp matrix lives in one test function so its
    /// counter-delta assertions can't race other tests (the invalid-request
    /// counter is process-global).
    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        // Valid values, and the silent unset/blank defaults, never touch
        // the invalid counter.
        let before = invalid_thread_requests();
        assert_eq!(parse_threads(None), 1);
        assert_eq!(parse_threads(Some("8".into())), 8);
        assert_eq!(parse_threads(Some(" 2 ".into())), 2);
        assert_eq!(parse_threads(Some(String::new())), 1);
        assert_eq!(parse_threads(Some("   ".into())), 1);
        assert_eq!(clamp_threads(1, "test"), 1);
        assert_eq!(clamp_threads(64, "test"), 64);
        assert_eq!(invalid_thread_requests(), before);

        // Zero and unparseable values clamp to 1 *and* are counted, so a
        // misconfigured daemon is observable rather than silently serial.
        assert_eq!(parse_threads(Some("0".into())), 1);
        assert_eq!(parse_threads(Some("-3".into())), 1);
        assert_eq!(parse_threads(Some("lots".into())), 1);
        assert_eq!(parse_threads(Some("eight".into())), 1);
        assert_eq!(clamp_threads(0, "test"), 1);
        assert_eq!(ParallelEstimator::new(0).threads(), 1);
        assert_eq!(invalid_thread_requests(), before + 6);
    }

    /// Same single-function policy for the lane-width counter (it is
    /// process-global too, and separate from the thread counter).
    #[test]
    fn parse_lane_words_accepts_supported_widths_only() {
        let before = invalid_lane_requests();
        assert_eq!(parse_lane_words(None), 1);
        assert_eq!(parse_lane_words(Some("1".into())), 1);
        assert_eq!(parse_lane_words(Some("4".into())), 4);
        assert_eq!(parse_lane_words(Some(" 8 ".into())), 8);
        assert_eq!(parse_lane_words(Some(String::new())), 1);
        assert_eq!(clamp_lane_words(4, "test"), 4);
        assert_eq!(clamp_lane_words(8, "test"), 8);
        assert_eq!(invalid_lane_requests(), before);

        assert_eq!(parse_lane_words(Some("0".into())), 1);
        assert_eq!(parse_lane_words(Some("2".into())), 1);
        assert_eq!(parse_lane_words(Some("512".into())), 1);
        assert_eq!(parse_lane_words(Some("wide".into())), 1);
        assert_eq!(clamp_lane_words(0, "test"), 1);
        assert_eq!(clamp_lane_words(16, "test"), 1);
        assert_eq!(ParallelEstimator::new(1).with_lane_words(3).lane_words(), 1);
        assert_eq!(invalid_lane_requests(), before + 7);
    }

    #[test]
    fn small_jobs_stay_on_the_calling_thread() {
        // 4 edges × 1000 samples is far below the per-worker floor.
        assert_eq!(effective_workers(8, 1000, 4), 1);
        // Big jobs use the configured count…
        assert_eq!(effective_workers(8, 4096, 20_000), 8);
        // …scaled down when only some workers can be kept busy.
        let mid = effective_workers(8, 128, 1024);
        assert!((1..=8).contains(&mid));
        // Degenerate inputs stay sane.
        assert_eq!(effective_workers(0, 1, 0), 1);
    }

    #[test]
    fn block_lanes_cover_the_budget_without_panicking() {
        // Wide blocks probing past the end of the budget see 0 lanes — the
        // boundary the old `lanes_in_batch` assert used to panic on.
        assert_eq!(block_lanes::<4>(256, 0), 256);
        assert_eq!(block_lanes::<4>(256, 4), 0);
        assert_eq!(block_lanes::<4>(300, 4), 44);
        assert_eq!(block_lanes::<8>(512, 0), 512);
        assert_eq!(block_lanes::<8>(512, 8), 0);
        assert_eq!(block_lanes::<1>(64, 1), 0);
        assert_eq!(block_lanes::<1>(65, 1), 1);
    }

    #[test]
    fn run_jobs_preserves_job_order_at_every_thread_count() {
        let compute = |i: usize| i * i;
        let expected: Vec<usize> = (0..23).map(compute).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = ParallelEstimator::new(threads).run_jobs(23, compute);
            assert_eq!(got, expected, "threads={threads}");
        }
        let empty = ParallelEstimator::new(4).run_jobs(0, compute);
        assert!(empty.is_empty());
    }

    #[test]
    fn chunking_covers_every_batch_exactly_once() {
        for (batches, threads) in [(1, 8), (7, 2), (16, 3), (16, 16), (5, 1)] {
            let chunks = parallel_chunks(batches, threads, |_w, r| r.collect::<Vec<_>>());
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, (0..batches).collect::<Vec<_>>());
        }
    }
}
