//! Flow estimates with uncertainty accounting.
//!
//! [`FlowEstimate`] aggregates per-sample flow values using Welford's online
//! algorithm, yielding the unbiased sample mean of Lemma 1 together with the
//! variance needed to reason about estimator quality (the §7.3 variance
//! argument for component-wise sampling).

use crate::confidence::{z_for_alpha, ConfidenceInterval};

/// Streaming mean/variance aggregate of sampled flow values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEstimate {
    mean: f64,
    m2: f64,
    samples: u64,
}

impl FlowEstimate {
    /// An empty estimate.
    pub fn new() -> Self {
        FlowEstimate {
            mean: 0.0,
            m2: 0.0,
            samples: 0,
        }
    }

    /// An exact (zero-variance) value, e.g. an analytically computed flow.
    pub fn exact(value: f64) -> Self {
        FlowEstimate {
            mean: value,
            m2: 0.0,
            samples: u64::MAX,
        }
    }

    /// Returns `true` if the value is exact rather than sampled.
    pub fn is_exact(&self) -> bool {
        self.samples == u64::MAX
    }

    /// Adds one sampled observation (Welford update).
    pub fn push(&mut self, value: f64) {
        debug_assert!(
            !self.is_exact(),
            "cannot push samples into an exact estimate"
        );
        self.samples += 1;
        let delta = value - self.mean;
        self.mean += delta / self.samples as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// The sample mean (the Lemma 1 estimator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Number of observations (`u64::MAX` for exact values).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Unbiased sample variance of the observations (0 for exact values or
    /// fewer than two samples).
    pub fn sample_variance(&self) -> f64 {
        if self.is_exact() || self.samples < 2 {
            0.0
        } else {
            self.m2 / (self.samples - 1) as f64
        }
    }

    /// Variance of the *mean* (sample variance / S).
    pub fn variance_of_mean(&self) -> f64 {
        if self.is_exact() || self.samples < 2 {
            0.0
        } else {
            self.sample_variance() / self.samples as f64
        }
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        self.variance_of_mean().sqrt()
    }

    /// CLT-based confidence interval for the mean at significance `alpha`.
    /// Exact values yield a degenerate interval.
    pub fn confidence_interval(&self, alpha: f64) -> ConfidenceInterval {
        if self.is_exact() || self.samples < 2 {
            return ConfidenceInterval::exact(self.mean);
        }
        let half = z_for_alpha(alpha) * self.standard_error();
        ConfidenceInterval {
            lower: self.mean - half,
            upper: self.mean + half,
        }
    }

    /// Merges two independent estimates of the *same* quantity (parallel
    /// Chan et al. combination). Exact values absorb sampled ones.
    pub fn merge(&self, other: &FlowEstimate) -> FlowEstimate {
        if self.is_exact() {
            return *self;
        }
        if other.is_exact() {
            return *other;
        }
        if self.samples == 0 {
            return *other;
        }
        if other.samples == 0 {
            return *self;
        }
        let n1 = self.samples as f64;
        let n2 = other.samples as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        FlowEstimate {
            mean: self.mean + delta * n2 / n,
            m2: self.m2 + other.m2 + delta * delta * n1 * n2 / n,
            samples: self.samples + other.samples,
        }
    }
}

impl Default for FlowEstimate {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_sequence() {
        let mut e = FlowEstimate::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            e.push(v);
        }
        assert!((e.mean() - 5.0).abs() < 1e-12);
        // Population variance 4 → sample variance 32/7.
        assert!((e.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(e.samples(), 8);
    }

    #[test]
    fn exact_estimates() {
        let e = FlowEstimate::exact(3.5);
        assert!(e.is_exact());
        assert_eq!(e.mean(), 3.5);
        assert_eq!(e.sample_variance(), 0.0);
        assert_eq!(e.confidence_interval(0.01).width(), 0.0);
    }

    #[test]
    fn merge_matches_bulk_computation() {
        let values = [1.0, 2.0, 3.0, 10.0, 20.0, 30.0, 5.0];
        let mut whole = FlowEstimate::new();
        for &v in &values {
            whole.push(v);
        }
        let mut a = FlowEstimate::new();
        let mut b = FlowEstimate::new();
        for &v in &values[..3] {
            a.push(v);
        }
        for &v in &values[3..] {
            b.push(v);
        }
        let merged = a.merge(&b);
        assert!((merged.mean() - whole.mean()).abs() < 1e-12);
        assert!((merged.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        assert_eq!(merged.samples(), whole.samples());
    }

    #[test]
    fn merge_with_empty_and_exact() {
        let mut a = FlowEstimate::new();
        a.push(1.0);
        a.push(3.0);
        let empty = FlowEstimate::new();
        assert_eq!(a.merge(&empty).mean(), a.mean());
        assert_eq!(empty.merge(&a).samples(), 2);
        let exact = FlowEstimate::exact(9.0);
        assert!(a.merge(&exact).is_exact());
        assert_eq!(a.merge(&exact).mean(), 9.0);
    }

    #[test]
    fn confidence_interval_narrows_with_samples() {
        let mut small = FlowEstimate::new();
        let mut large = FlowEstimate::new();
        // Alternating 0/1 values: variance 0.25-ish.
        for i in 0..20 {
            small.push((i % 2) as f64);
        }
        for i in 0..2000 {
            large.push((i % 2) as f64);
        }
        assert!(
            large.confidence_interval(0.05).width() < small.confidence_interval(0.05).width() / 5.0
        );
    }

    #[test]
    fn interval_contains_true_mean_for_bernoulli_halves() {
        let mut e = FlowEstimate::new();
        for i in 0..1000 {
            e.push((i % 2) as f64);
        }
        let ci = e.confidence_interval(0.01);
        assert!(ci.contains(0.5));
    }
}
