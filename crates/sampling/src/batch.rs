//! Bit-parallel possible-world sampling: 64 worlds per traversal.
//!
//! The scalar pipeline ([`crate::sampler::sample_world`] + a BFS per world)
//! pays one full traversal per sampled world. This module packs the
//! existence of each edge across **64 simultaneously sampled worlds** into
//! one `u64` lane word ([`WorldBatch`]) and resolves reachability for all 64
//! worlds with a single lane-parallel BFS ([`LaneBfs`]), so the traversal —
//! the dominant cost of every Monte-Carlo estimator in `flowmax` — is paid
//! once per 64 worlds instead of once per world.
//!
//! # Lane/seed contract
//!
//! Lane `w` of a batch sampled with `(seq, first_label)` draws its coins
//! from `seq.rng(first_label + w)` — the *same* child stream a scalar
//! [`crate::sampler::sample_world`] call would use. The per-edge coin is an
//! integer-threshold comparison that is **bit-identical** to the scalar
//! `rng.gen::<f64>() < p` test (see [`EdgeCoin`]), so lane `w` of a
//! [`WorldBatch`] *is* the scalar world of child stream `first_label + w`,
//! not merely statistically equivalent to it. Estimators batch samples in
//! groups of [`LANES`] with `first_label = batch_index * LANES`, which makes
//! every batch a pure function of `(master seed, batch index)` — the property
//! the multi-threaded [`crate::parallel::ParallelEstimator`] relies on to be
//! thread-count invariant.

use flowmax_graph::{EdgeId, EdgeSubset, ProbabilisticGraph, VertexId};

use crate::rng::{FlowRng, SeedSequence};
use rand::RngCore;

/// Number of possible worlds packed into one [`WorldBatch`] lane word.
pub const LANES: u32 = 64;

/// `2^53`, the resolution of the scalar sampler's `f64` coin.
const TWO_POW_53: f64 = 9_007_199_254_740_992.0;

/// Number of active lanes in batch `batch` of a `samples`-world run: full
/// batches hold [`LANES`] worlds, the final batch holds the remainder.
///
/// # Panics
///
/// Panics if `batch` lies beyond the sample budget (i.e. the run has fewer
/// than `batch · 64` worlds), since any lane count for such a batch would
/// be wrong.
pub fn lanes_in_batch(samples: u32, batch: usize) -> u32 {
    let drawn = (batch as u64) * LANES as u64;
    assert!(drawn < samples as u64, "batch beyond the sample budget");
    (samples as u64 - drawn).min(LANES as u64) as u32
}

/// The lane mask with the low `lanes` bits set (`0` gives the empty mask,
/// the state of a freshly constructed, not-yet-sampled [`WorldBatch`]).
#[inline]
pub fn lane_mask(lanes: u32) -> u64 {
    debug_assert!(lanes <= LANES, "lanes out of range");
    if lanes >= 64 {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

/// A per-edge coin, pre-classified so deterministic edges consume no
/// randomness (the RNG stream contract of [`crate::sampler::sample_world`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeCoin {
    /// `P(e) >= 1`: the edge exists in every world; no draw is consumed.
    AlwaysOn,
    /// `P(e) <= 0`: the edge exists in no world; no draw is consumed. (Only
    /// reachable through `Probability::new_unchecked` in release builds; the
    /// validated constructor forbids zero.)
    AlwaysOff,
    /// `0 < P(e) < 1`: one draw per world, success iff
    /// `next_u64() >> 11 < threshold`.
    Threshold(u64),
}

impl EdgeCoin {
    /// Classifies a probability into its coin.
    ///
    /// The scalar sampler tests `rng.gen::<f64>() < p`, where the vendored
    /// `rand` computes `gen::<f64>()` as `(next_u64() >> 11) · 2⁻⁵³`. With
    /// `x = next_u64() >> 11` (an integer below `2⁵³`, hence exact in `f64`)
    /// that test is the real-number comparison `x < p·2⁵³`, which for
    /// integer `x` is exactly `x < ceil(p·2⁵³)` — and `p·2⁵³` itself is
    /// exact because multiplying by a power of two only shifts the exponent.
    /// [`EdgeCoin::Threshold`] therefore reproduces the scalar coin
    /// bit-for-bit with a pure integer compare.
    pub fn classify(p: f64) -> EdgeCoin {
        if p >= 1.0 {
            EdgeCoin::AlwaysOn
        } else if p <= 0.0 {
            EdgeCoin::AlwaysOff
        } else {
            EdgeCoin::Threshold((p * TWO_POW_53).ceil() as u64)
        }
    }

    /// Flips this coin once against a single RNG stream. Deterministic
    /// coins consume no draw.
    ///
    /// This is **the** coin of the whole crate: the scalar sampler
    /// ([`crate::sampler::sample_world`] and friends) and the 64-lane
    /// [`EdgeCoin::flip`] both call it, so the two engines cannot drift
    /// apart coin-wise.
    #[inline]
    pub fn flip_one(&self, rng: &mut FlowRng) -> bool {
        match *self {
            EdgeCoin::AlwaysOn => true,
            EdgeCoin::AlwaysOff => false,
            EdgeCoin::Threshold(t) => rng.next_u64() >> 11 < t,
        }
    }

    /// Flips this coin once per lane RNG and packs the outcomes into a lane
    /// word (lane `w` = bit `w`). Deterministic coins consume no draws.
    pub fn flip(&self, lane_rngs: &mut [FlowRng]) -> u64 {
        match *self {
            EdgeCoin::AlwaysOn => lane_mask(lane_rngs.len() as u32),
            EdgeCoin::AlwaysOff => 0,
            EdgeCoin::Threshold(_) => {
                let mut mask = 0u64;
                for (w, rng) in lane_rngs.iter_mut().enumerate() {
                    if self.flip_one(rng) {
                        mask |= 1u64 << w;
                    }
                }
                mask
            }
        }
    }
}

/// Flips the Bernoulli(`p`) coin for one edge against a scalar RNG stream —
/// the shared helper behind every scalar sampling loop in this crate.
///
/// Bit-identical to the historical `rng.gen::<f64>() < p` (see
/// [`EdgeCoin::classify`]) with the draw-free fast paths for `p >= 1` and
/// `p <= 0`.
#[inline]
pub fn scalar_coin(p: f64, rng: &mut FlowRng) -> bool {
    EdgeCoin::classify(p).flip_one(rng)
}

/// Up to 64 possible worlds sampled together: bit `w` of `masks[e]` says
/// whether edge `e` exists in world (lane) `w`.
///
/// Edges outside the sampled domain have an all-zero mask, so a lane-BFS
/// over the batch automatically respects the domain restriction.
///
/// A batch is a reusable scratch arena: re-sampling via
/// [`WorldBatch::sample_into`] reuses both the mask buffer and the per-lane
/// RNG buffer, so steady-state sampling performs no heap allocation per
/// batch (the edge capacity may even change between calls — buffers only
/// grow).
#[derive(Debug, Clone)]
pub struct WorldBatch {
    /// Lane word per edge id (length = edge capacity of the graph/domain).
    masks: Vec<u64>,
    /// Number of active lanes (1..=64); bits at or above this are zero.
    lanes: u32,
    /// Reusable per-lane RNG buffer (one child stream per active lane).
    lane_rngs: Vec<FlowRng>,
}

impl WorldBatch {
    /// An empty batch sized for `edge_capacity` edges (no active lanes).
    pub fn new(edge_capacity: usize) -> Self {
        WorldBatch {
            masks: vec![0; edge_capacity],
            lanes: 0,
            lane_rngs: Vec::with_capacity(LANES as usize),
        }
    }

    /// Samples `lanes` worlds of `domain`, lane `w` drawing its coins from
    /// `seq.rng(first_label + w)` (see the module docs for the contract).
    pub fn sample(
        graph: &ProbabilisticGraph,
        domain: &EdgeSubset,
        seq: &SeedSequence,
        first_label: u64,
        lanes: u32,
    ) -> WorldBatch {
        let mut batch = WorldBatch::new(graph.edge_count());
        batch.sample_into(graph, domain, seq, first_label, lanes);
        batch
    }

    /// Re-samples this batch in place (buffer-reusing form of
    /// [`WorldBatch::sample`]).
    pub fn sample_into(
        &mut self,
        graph: &ProbabilisticGraph,
        domain: &EdgeSubset,
        seq: &SeedSequence,
        first_label: u64,
        lanes: u32,
    ) {
        let probs = domain
            .iter()
            .map(|e| (e.index(), graph.probability(e).value()));
        self.sample_indexed_into(graph.edge_count(), probs, seq, first_label, lanes);
    }

    /// Core sampling loop over `(edge index, probability)` pairs; shared by
    /// the graph-level and component-local samplers.
    pub(crate) fn sample_indexed_into(
        &mut self,
        edge_capacity: usize,
        probs: impl Iterator<Item = (usize, f64)>,
        seq: &SeedSequence,
        first_label: u64,
        lanes: u32,
    ) {
        assert!((1..=LANES).contains(&lanes), "need 1..=64 lanes");
        self.masks.clear();
        self.masks.resize(edge_capacity, 0);
        self.lanes = lanes;
        // Re-seed the reusable lane-RNG buffer in place: after the first
        // batch its capacity is pinned at 64, so this draws no allocation.
        self.lane_rngs.clear();
        self.lane_rngs
            .extend((0..lanes as u64).map(|w| seq.rng(first_label + w)));
        for (idx, p) in probs {
            self.masks[idx] = EdgeCoin::classify(p).flip(&mut self.lane_rngs);
        }
    }

    /// Number of active lanes.
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// The mask with one bit set per active lane.
    pub fn active_mask(&self) -> u64 {
        lane_mask(self.lanes)
    }

    /// Lane word of edge `e`.
    #[inline]
    pub fn edge_mask(&self, e: EdgeId) -> u64 {
        self.masks[e.index()]
    }

    /// All lane words, indexed by edge id.
    pub fn masks(&self) -> &[u64] {
        &self.masks
    }

    /// Extracts one lane as a scalar world into `out` (cleared first).
    pub fn world(&self, lane: u32, out: &mut EdgeSubset) {
        assert!(lane < self.lanes, "lane {lane} beyond {} lanes", self.lanes);
        out.clear();
        for (i, &mask) in self.masks.iter().enumerate() {
            if mask >> lane & 1 == 1 {
                out.insert(EdgeId(i as u32));
            }
        }
    }
}

/// Lane-parallel BFS: one traversal resolves reachability in all worlds of
/// a [`WorldBatch`] at once.
///
/// `reached[v]` is a lane word — bit `w` says whether `v` is reachable from
/// the source in world `w`. The traversal is a pure frontier worklist: it
/// propagates *newly arrived* lane bits only, so each vertex is reprocessed
/// just when some world discovers it (not once per world), neighbours whose
/// lane word has already converged to the full active mask are skipped
/// outright in late rounds, and between runs only the vertices the previous
/// run actually touched are reset — no dense full-vertex sweep anywhere.
#[derive(Debug, Clone)]
pub struct LaneBfs {
    reached: Vec<u64>,
    pending: Vec<u64>,
    in_queue: Vec<bool>,
    queue: std::collections::VecDeque<u32>,
    /// Vertices whose `reached` word the latest run set (the only entries
    /// that need zeroing before the next run).
    touched: Vec<u32>,
}

impl LaneBfs {
    /// Creates scratch space for graphs with `vertex_count` vertices.
    pub fn new(vertex_count: usize) -> Self {
        LaneBfs {
            reached: vec![0; vertex_count],
            pending: vec![0; vertex_count],
            in_queue: vec![false; vertex_count],
            queue: std::collections::VecDeque::new(),
            touched: Vec::new(),
        }
    }

    /// Re-targets this scratch at a graph with `vertex_count` vertices,
    /// reusing the buffers when the size already matches (the steady-state
    /// case for a pooled scratch that estimates one component repeatedly).
    pub fn prepare(&mut self, vertex_count: usize) {
        if self.reached.len() == vertex_count {
            return;
        }
        self.reached.clear();
        self.reached.resize(vertex_count, 0);
        self.pending.clear();
        self.pending.resize(vertex_count, 0);
        self.in_queue.clear();
        self.in_queue.resize(vertex_count, false);
        self.queue.clear();
        self.touched.clear();
    }

    /// Lane words of the latest run, indexed by vertex.
    pub fn reached(&self) -> &[u64] {
        &self.reached
    }

    /// Lane word of vertex index `v`.
    #[inline]
    pub fn reached_mask(&self, v: usize) -> u64 {
        self.reached[v]
    }

    /// Runs the lane BFS from `source` with initial lane set `init`
    /// (typically the batch's [`WorldBatch::active_mask`]).
    ///
    /// `edge_masks[e]` is the lane word of edge `e` and `neighbors(u)` must
    /// yield `(neighbor vertex index, edge index)` pairs; a world's edge
    /// passes iff its lane bit is set, so edges absent from the sampled
    /// domain (all-zero masks) are never crossed.
    pub fn run<F, I>(&mut self, source: usize, init: u64, edge_masks: &[u64], neighbors: F)
    where
        F: Fn(usize) -> I,
        I: Iterator<Item = (usize, usize)>,
    {
        // Frontier-local reset: only the previous run's touched vertices
        // hold non-zero lane words (`pending`/`in_queue`/`queue` are
        // self-cleaning — the worklist drains them before returning).
        for &v in &self.touched {
            self.reached[v as usize] = 0;
        }
        self.touched.clear();
        self.reached[source] = init;
        self.pending[source] = init;
        self.in_queue[source] = true;
        self.queue.push_back(source as u32);
        self.touched.push(source as u32);
        while let Some(u) = self.queue.pop_front() {
            let u = u as usize;
            self.in_queue[u] = false;
            let delta = self.pending[u];
            self.pending[u] = 0;
            if delta == 0 {
                continue;
            }
            for (v, e) in neighbors(u) {
                // A converged vertex (every active lane reached) can gain
                // no new bits; skip it before touching the edge mask.
                let seen = self.reached[v];
                if seen == init {
                    continue;
                }
                let new = delta & edge_masks[e] & !seen;
                if new != 0 {
                    if seen == 0 {
                        self.touched.push(v as u32);
                    }
                    self.reached[v] = seen | new;
                    self.pending[v] |= new;
                    if !self.in_queue[v] {
                        self.in_queue[v] = true;
                        self.queue.push_back(v as u32);
                    }
                }
            }
        }
    }

    /// Convenience: lane BFS over a graph-level [`WorldBatch`] from `query`.
    pub fn run_graph(&mut self, graph: &ProbabilisticGraph, query: VertexId, batch: &WorldBatch) {
        self.run(query.index(), batch.active_mask(), batch.masks(), |u| {
            graph
                .neighbors(VertexId::from_index(u))
                .map(|(v, e)| (v.index(), e.index()))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::sample_world;
    use flowmax_graph::{Bfs, GraphBuilder, Probability, Weight};
    use rand::Rng;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    /// Q(0)-1-2 triangle (p=0.5 each) with a certain pendant edge 2-3.
    fn mixed_graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::ONE);
        b.add_edge(VertexId(0), VertexId(1), p(0.5)).unwrap();
        b.add_edge(VertexId(1), VertexId(2), p(0.5)).unwrap();
        b.add_edge(VertexId(0), VertexId(2), p(0.5)).unwrap();
        b.add_edge(VertexId(2), VertexId(3), Probability::ONE)
            .unwrap();
        b.build()
    }

    #[test]
    fn threshold_coin_is_bit_identical_to_scalar_coin() {
        // The same underlying u64 stream must decide identically whether it
        // was consumed as `gen::<f64>() < p` or via the integer threshold.
        let seq = SeedSequence::new(99);
        for (i, pv) in [0.001, 0.25, 0.5, 0.9999, 1e-12, 1.0 - 1e-12]
            .into_iter()
            .enumerate()
        {
            let EdgeCoin::Threshold(t) = EdgeCoin::classify(pv) else {
                panic!("fractional probability must classify as Threshold");
            };
            let mut a = seq.rng(i as u64);
            let mut b = seq.rng(i as u64);
            for _ in 0..4000 {
                let scalar = a.gen::<f64>() < pv;
                let batched = b.next_u64() >> 11 < t;
                assert_eq!(scalar, batched, "p={pv}");
            }
        }
    }

    #[test]
    fn classify_fast_paths() {
        assert_eq!(EdgeCoin::classify(1.0), EdgeCoin::AlwaysOn);
        assert_eq!(EdgeCoin::classify(1.5), EdgeCoin::AlwaysOn);
        assert_eq!(EdgeCoin::classify(0.0), EdgeCoin::AlwaysOff);
        assert_eq!(EdgeCoin::classify(-0.5), EdgeCoin::AlwaysOff);
        // Deterministic coins never touch the RNGs.
        let seq = SeedSequence::new(1);
        let mut rngs: Vec<FlowRng> = vec![seq.rng(0)];
        let before = rngs[0].clone();
        assert_eq!(EdgeCoin::AlwaysOn.flip(&mut rngs), 1);
        assert_eq!(EdgeCoin::AlwaysOff.flip(&mut rngs), 0);
        assert!(rngs[0] == before, "fast paths must not consume draws");
    }

    #[test]
    fn batch_lanes_match_scalar_worlds() {
        let g = mixed_graph();
        let domain = EdgeSubset::full(&g);
        let seq = SeedSequence::new(7);
        let batch = WorldBatch::sample(&g, &domain, &seq, 0, LANES);
        let mut scalar = EdgeSubset::for_graph(&g);
        let mut extracted = EdgeSubset::for_graph(&g);
        for lane in 0..LANES {
            let mut rng = seq.rng(lane as u64);
            sample_world(&g, &domain, &mut rng, &mut scalar);
            batch.world(lane, &mut extracted);
            assert_eq!(scalar, extracted, "lane {lane}");
        }
    }

    #[test]
    fn partial_batches_zero_inactive_lanes() {
        let g = mixed_graph();
        let domain = EdgeSubset::full(&g);
        let seq = SeedSequence::new(3);
        let batch = WorldBatch::sample(&g, &domain, &seq, 128, 5);
        assert_eq!(batch.lanes(), 5);
        assert_eq!(batch.active_mask(), 0b11111);
        for e in g.edge_ids() {
            assert_eq!(
                batch.edge_mask(e) & !batch.active_mask(),
                0,
                "bits above the active lanes must stay zero"
            );
        }
        // The certain edge exists in every active lane.
        assert_eq!(batch.edge_mask(EdgeId(3)), 0b11111);
    }

    #[test]
    fn domain_restriction_zeroes_outside_edges() {
        let g = mixed_graph();
        let domain = EdgeSubset::from_edges(g.edge_count(), [EdgeId(0), EdgeId(3)]);
        let batch = WorldBatch::sample(&g, &domain, &SeedSequence::new(5), 0, LANES);
        assert_eq!(batch.edge_mask(EdgeId(1)), 0);
        assert_eq!(batch.edge_mask(EdgeId(2)), 0);
        assert_eq!(batch.edge_mask(EdgeId(3)), !0);
    }

    #[test]
    fn lane_bfs_matches_scalar_bfs_per_lane() {
        let g = mixed_graph();
        let domain = EdgeSubset::full(&g);
        let seq = SeedSequence::new(42);
        let batch = WorldBatch::sample(&g, &domain, &seq, 0, LANES);
        let mut lane_bfs = LaneBfs::new(g.vertex_count());
        lane_bfs.run_graph(&g, VertexId(0), &batch);
        let mut world = EdgeSubset::for_graph(&g);
        let mut bfs = Bfs::new(g.vertex_count());
        for lane in 0..LANES {
            batch.world(lane, &mut world);
            bfs.reachable(&g, &world, VertexId(0));
            for v in g.vertices() {
                assert_eq!(
                    bfs.was_visited(v),
                    lane_bfs.reached_mask(v.index()) >> lane & 1 == 1,
                    "lane {lane}, vertex {v}"
                );
            }
        }
    }

    #[test]
    fn lane_bfs_survival_frequency_is_sane() {
        // Pr[1 reaches 0] in the triangle = 0.625 (direct or two-hop).
        let g = mixed_graph();
        let domain = EdgeSubset::full(&g);
        let seq = SeedSequence::new(11);
        let mut batch = WorldBatch::new(g.edge_count());
        let mut bfs = LaneBfs::new(g.vertex_count());
        let mut hits = 0u32;
        let batches = 300usize;
        for b in 0..batches {
            batch.sample_into(&g, &domain, &seq, b as u64 * LANES as u64, LANES);
            bfs.run_graph(&g, VertexId(0), &batch);
            hits += bfs.reached_mask(1).count_ones();
        }
        let freq = hits as f64 / (batches as f64 * LANES as f64);
        assert!((freq - 0.625).abs() < 0.02, "frequency {freq}");
    }

    #[test]
    fn lanes_in_batch_splits_the_budget() {
        assert_eq!(lanes_in_batch(64, 0), 64);
        assert_eq!(lanes_in_batch(65, 1), 1);
        assert_eq!(lanes_in_batch(1000, 15), 40);
        assert_eq!(lanes_in_batch(1, 0), 1);
        assert_eq!(lane_mask(64), !0);
        assert_eq!(lane_mask(1), 1);
    }
}
