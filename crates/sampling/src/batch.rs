//! Bit-parallel possible-world sampling: 64 worlds per lane word, with
//! optional `[u64; W]` lane *blocks* resolving 256/512 worlds per traversal.
//!
//! The scalar pipeline ([`crate::sampler::sample_world`] + a BFS per world)
//! pays one full traversal per sampled world. This module packs the
//! existence of each edge across **64 simultaneously sampled worlds** into
//! one `u64` lane word ([`WorldBatch`]) and resolves reachability for all 64
//! worlds with a single lane-parallel BFS ([`LaneBfs`]), so the traversal —
//! the dominant cost of every Monte-Carlo estimator in `flowmax` — is paid
//! once per 64 worlds instead of once per world.
//!
//! # Lane widths
//!
//! Both [`WorldBatch`] and [`LaneBfs`] are generic over the number of lane
//! words `W` (default 1). A width-`W` block packs `64·W` worlds into
//! `[u64; W]` arrays the autovectorizer can chew on, so one BFS frontier
//! pass touches 4–8× more worlds per cache line at `W = 4` / `W = 8`. The
//! supported widths are `W ∈ {1, 4, 8}` (64/256/512 worlds per pass),
//! selected at the estimator layer via `FLOWMAX_LANES` or
//! [`crate::parallel::ParallelEstimator::with_lane_words`]. The width-1
//! instantiation *is* the original u64 kernel — byte-for-byte the same coin
//! path — and stays the pinned reference the wide widths are tested
//! against, world for world.
//!
//! # Lane/seed contract
//!
//! Lane `w` of a batch sampled with `(seq, first_label)` draws its coins
//! from `seq.rng(first_label + w)` — the *same* child stream a scalar
//! [`crate::sampler::sample_world`] call would use. The per-edge coin is an
//! integer-threshold comparison that is **bit-identical** to the scalar
//! `rng.gen::<f64>() < p` test (see [`EdgeCoin`]), so lane `w` of a
//! [`WorldBatch`] *is* the scalar world of child stream `first_label + w`,
//! not merely statistically equivalent to it. Because each world is a pure
//! function of its own label, *grouping* worlds — 64 per narrow batch or
//! `64·W` per wide block — never changes any world's coins: lane `w` of a
//! wide block draws the same stream as lane `w` of the narrow batches it
//! replaces. Estimators batch samples in groups of [`LANES`] with
//! `first_label = batch_index * LANES` (wide blocks cover `W` consecutive
//! such batches), which makes every batch a pure function of
//! `(master seed, batch index)` — the property the multi-threaded
//! [`crate::parallel::ParallelEstimator`] relies on to be invariant under
//! both thread count *and* lane width.

use flowmax_graph::{EdgeId, EdgeSubset, ProbabilisticGraph, VertexId};

use crate::rng::{FlowRng, SeedSequence};
use rand::RngCore;

/// Number of possible worlds packed into one lane word — the batching and
/// seed-labelling quantum of every estimator, independent of the lane
/// width (a width-`W` block covers `W` such batches).
pub const LANES: u32 = 64;

/// The widest supported lane block, in words (512 worlds per traversal).
pub const MAX_LANE_WORDS: usize = 8;

// The probability → integer-threshold conversion (`EdgeCoin::classify`,
// `scalar_coin`, and the 2^53 resolution constant) lives in
// `crate::coin`: this file is the bit-parallel kernel and must stay free
// of float comparison/arithmetic (lint rule L5). Re-exported here because
// the coin is part of the batch sampling vocabulary.
pub use crate::coin::scalar_coin;

/// Worlds per `[u64; W]` lane block: `64·W`.
#[inline]
pub const fn block_worlds<const W: usize>() -> u32 {
    LANES * W as u32
}

/// Number of active lanes in batch `batch` of a `samples`-world run: full
/// batches hold [`LANES`] worlds, the final batch holds the remainder, and
/// a batch at or beyond the budget boundary holds 0 — callers that chunk
/// the budget into fixed-size groups (e.g. `W` batches per wide block) can
/// probe past the end without special-casing the boundary.
pub fn lanes_in_batch(samples: u32, batch: usize) -> u32 {
    let drawn = (batch as u64) * LANES as u64;
    (samples as u64).saturating_sub(drawn).min(LANES as u64) as u32
}

/// The lane mask with the low `lanes` bits set (`0` gives the empty mask,
/// the state of a freshly constructed, not-yet-sampled [`WorldBatch`]).
#[inline]
pub fn lane_mask(lanes: u32) -> u64 {
    debug_assert!(lanes <= LANES, "lanes out of range");
    if lanes >= 64 {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

/// The `[u64; W]` block mask with the low `lanes` bits set across words
/// (word `k` covers lanes `64k..64(k+1)`).
#[inline]
pub fn block_mask<const W: usize>(lanes: u32) -> [u64; W] {
    debug_assert!(lanes <= block_worlds::<W>(), "lanes out of range");
    let mut mask = [0u64; W];
    for (k, word) in mask.iter_mut().enumerate() {
        let base = (k as u32) * LANES;
        *word = lane_mask(lanes.saturating_sub(base).min(LANES));
    }
    mask
}

/// Population count of a lane block.
#[inline]
pub fn block_ones<const W: usize>(block: &[u64; W]) -> u32 {
    let mut ones = 0;
    for word in block {
        ones += word.count_ones();
    }
    ones
}

/// A per-edge coin, pre-classified so deterministic edges consume no
/// randomness (the RNG stream contract of [`crate::sampler::sample_world`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeCoin {
    /// `P(e) >= 1`: the edge exists in every world; no draw is consumed.
    AlwaysOn,
    /// `P(e) <= 0`: the edge exists in no world; no draw is consumed. (Only
    /// reachable through `Probability::new_unchecked` in release builds; the
    /// validated constructor forbids zero.)
    AlwaysOff,
    /// `0 < P(e) < 1`: one draw per world, success iff
    /// `next_u64() >> 11 < threshold`.
    Threshold(u64),
}

impl EdgeCoin {
    /// Flips this coin once against a single RNG stream. Deterministic
    /// coins consume no draw.
    ///
    /// This is **the** coin of the whole crate: the scalar sampler
    /// ([`crate::sampler::sample_world`] and friends), the 64-lane
    /// [`EdgeCoin::flip`], and the wide structure-of-arrays flip all make
    /// the same `next_u64() >> 11 < t` comparison, so the engines cannot
    /// drift apart coin-wise.
    #[inline]
    pub fn flip_one(&self, rng: &mut FlowRng) -> bool {
        match *self {
            EdgeCoin::AlwaysOn => true,
            EdgeCoin::AlwaysOff => false,
            EdgeCoin::Threshold(t) => rng.next_u64() >> 11 < t,
        }
    }

    /// Flips this coin once per lane RNG and packs the outcomes into a lane
    /// word (lane `w` = bit `w`). Deterministic coins consume no draws.
    pub fn flip(&self, lane_rngs: &mut [FlowRng]) -> u64 {
        match *self {
            EdgeCoin::AlwaysOn => lane_mask(lane_rngs.len() as u32),
            EdgeCoin::AlwaysOff => 0,
            EdgeCoin::Threshold(_) => {
                let mut mask = 0u64;
                for (w, rng) in lane_rngs.iter_mut().enumerate() {
                    if self.flip_one(rng) {
                        mask |= 1u64 << w;
                    }
                }
                mask
            }
        }
    }
}

/// The per-lane RNG states of a wide block, laid out structure-of-arrays:
/// four contiguous state vectors instead of `lanes` interleaved `[u64; 4]`
/// structs, so the branch-free xoshiro256++ step below autovectorizes
/// across lanes.
///
/// Lane `i` holds exactly the state of `seq.rng(first_label + i)` and is
/// stepped with the same recurrence as [`FlowRng::next_u64`], so its draw
/// stream is bit-identical to the per-lane `Vec<FlowRng>` path of the
/// width-1 reference kernel (pinned by the `soa_steps_match_flowrng`
/// test).
#[derive(Debug, Clone, Default)]
struct SoaLaneRngs {
    s0: Vec<u64>,
    s1: Vec<u64>,
    s2: Vec<u64>,
    s3: Vec<u64>,
    /// Seeded (active) lanes; the vectors are padded with all-zero states
    /// to a whole number of 64-lane words so the hot loop always runs at
    /// a fixed trip count over `[u64; 64]` arrays.
    lanes: usize,
}

/// Edges per tile of the wide coin loop. Within a tile the word loop is
/// outer and the edge loop inner, so each 64-lane state word round-trips
/// through memory once per tile (not once per edge) while the tile's mask
/// slice stays L1-resident.
const TILE: usize = 128;

/// One xoshiro256++ step and threshold compare for all 64 lanes of one
/// word, over fixed-size state arrays. The fixed trip count, the absence
/// of loop-carried dependencies in the hot pass, and the array (not
/// slice) operands are what let LLVM lower this to packed integer SIMD;
/// the serial bit-pack fold runs over the tiny hits array after.
#[inline]
fn step_word(
    s0: &mut [u64; LANES as usize],
    s1: &mut [u64; LANES as usize],
    s2: &mut [u64; LANES as usize],
    s3: &mut [u64; LANES as usize],
    threshold: u64,
) -> u64 {
    let mut hits = [0u64; LANES as usize];
    for j in 0..LANES as usize {
        // The xoshiro256++ step of the vendored `FlowRng`, inlined
        // branch-free. All-zero padding states step to all-zero.
        let (a, b, c, d) = (s0[j], s1[j], s2[j], s3[j]);
        let x = a.wrapping_add(d).rotate_left(23).wrapping_add(a);
        let t = b << 17;
        let c = c ^ a;
        let d = d ^ b;
        let b = b ^ c;
        let a = a ^ d;
        let c = c ^ t;
        let d = d.rotate_left(45);
        s0[j] = a;
        s1[j] = b;
        s2[j] = c;
        s3[j] = d;
        hits[j] = u64::from(x >> 11 < threshold);
    }
    let mut mask = 0u64;
    for (j, hit) in hits.iter().enumerate() {
        mask |= hit << j;
    }
    mask
}

impl SoaLaneRngs {
    /// Re-seeds lane `i` from `seq.rng(first_label + i)` for `lanes` lanes,
    /// reusing the four state buffers. The tail is padded with all-zero
    /// states to a whole number of 64-lane words (xoshiro maps zero to
    /// zero, so padding lanes cost one vector op and their hits are
    /// masked off).
    fn reseed(&mut self, seq: &SeedSequence, first_label: u64, lanes: u32) {
        self.s0.clear();
        self.s1.clear();
        self.s2.clear();
        self.s3.clear();
        self.lanes = lanes as usize;
        for w in 0..lanes as u64 {
            let s = seq.rng(first_label + w).state();
            self.s0.push(s[0]);
            self.s1.push(s[1]);
            self.s2.push(s[2]);
            self.s3.push(s[3]);
        }
        let padded = (lanes as usize).div_ceil(LANES as usize) * LANES as usize;
        self.s0.resize(padded, 0);
        self.s1.resize(padded, 0);
        self.s2.resize(padded, 0);
        self.s3.resize(padded, 0);
    }

    /// Flips every threshold edge's coin for every lane, tiled: edges are
    /// walked in [`TILE`]-sized chunks, and within a tile the word loop is
    /// outer and the edge loop inner. Each 64-lane state word therefore
    /// round-trips through memory once per tile instead of once per edge,
    /// and the tile's mask slice stays cache-hot across all words. Lanes
    /// are independent child streams, so the interchange draws
    /// bit-identical coins: lane `i` still consumes exactly one draw per
    /// threshold edge, in edge order.
    ///
    /// `masks` must be zeroed for the edges in `edges`; hits are OR-ed in
    /// at lane `i` = bit `i % 64` of word `i / 64`.
    fn flip_all<const W: usize>(&mut self, edges: &[(u32, u64)], masks: &mut [[u64; W]]) {
        let lanes_per_word = LANES as usize;
        for tile in edges.chunks(TILE) {
            for base in (0..self.s0.len()).step_by(lanes_per_word) {
                if base >= self.lanes {
                    break;
                }
                let word = base / lanes_per_word;
                // A zero padding state draws x = 0, which any positive
                // threshold "hits" — mask the tail word down to its
                // seeded lanes.
                let live = lane_mask((self.lanes - base).min(lanes_per_word) as u32);
                let end = base + lanes_per_word;
                let s0: &mut [u64; LANES as usize] =
                    (&mut self.s0[base..end]).try_into().expect("padded word");
                let s1: &mut [u64; LANES as usize] =
                    (&mut self.s1[base..end]).try_into().expect("padded word");
                let s2: &mut [u64; LANES as usize] =
                    (&mut self.s2[base..end]).try_into().expect("padded word");
                let s3: &mut [u64; LANES as usize] =
                    (&mut self.s3[base..end]).try_into().expect("padded word");
                for &(idx, threshold) in tile {
                    let mask = step_word(&mut *s0, &mut *s1, &mut *s2, &mut *s3, threshold);
                    masks[idx as usize][word] |= mask & live;
                }
            }
        }
    }
}

/// Up to `64·W` possible worlds sampled together: bit `w % 64` of word
/// `w / 64` of `masks[e]` says whether edge `e` exists in world (lane) `w`.
///
/// Edges outside the sampled domain have an all-zero block, so a lane-BFS
/// over the batch automatically respects the domain restriction.
///
/// A batch is a reusable scratch arena: re-sampling via
/// [`WorldBatch::sample_into`] reuses the mask buffer and the per-lane RNG
/// state, so steady-state sampling performs no heap allocation per batch
/// (the edge capacity may even change between calls — buffers only grow).
#[derive(Debug, Clone)]
pub struct WorldBatch<const W: usize = 1> {
    /// Lane block per edge id (length = edge capacity of the graph/domain).
    masks: Vec<[u64; W]>,
    /// Number of active lanes (1..=64·W); bits at or above this are zero.
    lanes: u32,
    /// Per-lane RNG buffer of the width-1 reference path (one child stream
    /// per active lane, stepped through [`EdgeCoin::flip`]).
    lane_rngs: Vec<FlowRng>,
    /// Structure-of-arrays RNG states of the wide (`W > 1`) path.
    soa_rngs: SoaLaneRngs,
    /// Scratch `(edge index, threshold)` list of the wide path: the coin
    /// loop is lane-major, so threshold edges are collected once per batch
    /// and streamed once per lane group.
    threshold_edges: Vec<(u32, u64)>,
}

impl<const W: usize> WorldBatch<W> {
    /// An empty batch sized for `edge_capacity` edges (no active lanes).
    pub fn new(edge_capacity: usize) -> Self {
        WorldBatch {
            masks: vec![[0; W]; edge_capacity],
            lanes: 0,
            lane_rngs: Vec::new(),
            soa_rngs: SoaLaneRngs::default(),
            threshold_edges: Vec::new(),
        }
    }

    /// Samples `lanes` worlds of `domain`, lane `w` drawing its coins from
    /// `seq.rng(first_label + w)` (see the module docs for the contract).
    pub fn sample(
        graph: &ProbabilisticGraph,
        domain: &EdgeSubset,
        seq: &SeedSequence,
        first_label: u64,
        lanes: u32,
    ) -> Self {
        let mut batch = WorldBatch::new(graph.edge_count());
        batch.sample_into(graph, domain, seq, first_label, lanes);
        batch
    }

    /// Re-samples this batch in place (buffer-reusing form of
    /// [`WorldBatch::sample`]).
    pub fn sample_into(
        &mut self,
        graph: &ProbabilisticGraph,
        domain: &EdgeSubset,
        seq: &SeedSequence,
        first_label: u64,
        lanes: u32,
    ) {
        let probs = domain
            .iter()
            .map(|e| (e.index(), graph.probability(e).value()));
        self.sample_indexed_into(graph.edge_count(), probs, seq, first_label, lanes);
    }

    /// Core sampling loop over `(edge index, probability)` pairs; shared by
    /// the graph-level and component-local samplers.
    ///
    /// Width 1 flips coins through the per-lane [`EdgeCoin::flip`] path —
    /// the pinned reference kernel, byte-for-byte the pre-widening code.
    /// Wider blocks step the same per-lane streams in
    /// structure-of-arrays form (see [`SoaLaneRngs`]); both paths draw
    /// bit-identical coins for every world label.
    pub(crate) fn sample_indexed_into(
        &mut self,
        edge_capacity: usize,
        // flowmax-lint: allow(L5, probability ingestion boundary: the f64 is classified into an integer threshold by EdgeCoin::classify before any per-world loop runs)
        probs: impl Iterator<Item = (usize, f64)>,
        seq: &SeedSequence,
        first_label: u64,
        lanes: u32,
    ) {
        assert!(
            (1..=block_worlds::<W>()).contains(&lanes),
            "need 1..={} lanes at width {W}",
            block_worlds::<W>()
        );
        self.masks.clear();
        self.masks.resize(edge_capacity, [0; W]);
        self.lanes = lanes;
        if W == 1 {
            // Re-seed the reusable lane-RNG buffer in place: after the
            // first batch its capacity is pinned at 64, so this draws no
            // allocation.
            self.lane_rngs.clear();
            self.lane_rngs
                .extend((0..lanes as u64).map(|w| seq.rng(first_label + w)));
            for (idx, p) in probs {
                self.masks[idx][0] = EdgeCoin::classify(p).flip(&mut self.lane_rngs);
            }
        } else {
            self.soa_rngs.reseed(seq, first_label, lanes);
            let on = block_mask::<W>(lanes);
            self.threshold_edges.clear();
            for (idx, p) in probs {
                match EdgeCoin::classify(p) {
                    EdgeCoin::AlwaysOn => self.masks[idx] = on,
                    // The resize above already zeroed every block.
                    EdgeCoin::AlwaysOff => {}
                    EdgeCoin::Threshold(t) => {
                        let idx = u32::try_from(idx).expect("edge index fits in u32");
                        self.threshold_edges.push((idx, t));
                    }
                }
            }
            self.soa_rngs
                .flip_all(&self.threshold_edges, &mut self.masks);
        }
    }

    /// Number of active lanes.
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// The block with one bit set per active lane.
    pub fn active_mask(&self) -> [u64; W] {
        block_mask::<W>(self.lanes)
    }

    /// Lane block of edge `e`.
    #[inline]
    pub fn edge_mask(&self, e: EdgeId) -> [u64; W] {
        self.masks[e.index()]
    }

    /// All lane blocks, indexed by edge id.
    pub fn masks(&self) -> &[[u64; W]] {
        &self.masks
    }

    /// Extracts one lane as a scalar world into `out` (cleared first).
    pub fn world(&self, lane: u32, out: &mut EdgeSubset) {
        assert!(lane < self.lanes, "lane {lane} beyond {} lanes", self.lanes);
        let (word, bit) = ((lane / LANES) as usize, lane % LANES);
        out.clear();
        for (i, mask) in self.masks.iter().enumerate() {
            if mask[word] >> bit & 1 == 1 {
                out.insert(EdgeId(i as u32));
            }
        }
    }
}

/// Lane-parallel BFS: one traversal resolves reachability in all worlds of
/// a [`WorldBatch`] at once.
///
/// `reached[v]` is a lane block — bit `w % 64` of word `w / 64` says
/// whether `v` is reachable from the source in world `w`. The traversal is
/// a pure frontier worklist: it propagates *newly arrived* lane bits only,
/// so each vertex is reprocessed just when some world discovers it (not
/// once per world), neighbours whose lane block has already converged to
/// the full active mask are skipped outright in late rounds, and between
/// runs only the vertices the previous run actually touched are reset — no
/// dense full-vertex sweep anywhere. At widths above 1 every mask operation
/// covers `W` words, so the frontier bookkeeping is amortized over `64·W`
/// worlds per pass.
#[derive(Debug, Clone)]
pub struct LaneBfs<const W: usize = 1> {
    reached: Vec<[u64; W]>,
    pending: Vec<[u64; W]>,
    in_queue: Vec<bool>,
    queue: std::collections::VecDeque<u32>,
    /// Vertices whose `reached` block the latest run set (the only entries
    /// that need zeroing before the next run).
    touched: Vec<u32>,
}

impl<const W: usize> LaneBfs<W> {
    /// Creates scratch space for graphs with `vertex_count` vertices.
    pub fn new(vertex_count: usize) -> Self {
        LaneBfs {
            reached: vec![[0; W]; vertex_count],
            pending: vec![[0; W]; vertex_count],
            in_queue: vec![false; vertex_count],
            queue: std::collections::VecDeque::new(),
            touched: Vec::new(),
        }
    }

    /// Re-targets this scratch at a graph with `vertex_count` vertices,
    /// reusing the buffers when the size already matches (the steady-state
    /// case for a pooled scratch that estimates one component repeatedly).
    pub fn prepare(&mut self, vertex_count: usize) {
        if self.reached.len() == vertex_count {
            return;
        }
        self.reached.clear();
        self.reached.resize(vertex_count, [0; W]);
        self.pending.clear();
        self.pending.resize(vertex_count, [0; W]);
        self.in_queue.clear();
        self.in_queue.resize(vertex_count, false);
        self.queue.clear();
        self.touched.clear();
    }

    /// Lane blocks of the latest run, indexed by vertex.
    pub fn reached(&self) -> &[[u64; W]] {
        &self.reached
    }

    /// Lane block of vertex index `v`.
    #[inline]
    pub fn reached_mask(&self, v: usize) -> [u64; W] {
        self.reached[v]
    }

    /// Runs the lane BFS from `source` with initial lane set `init`
    /// (typically the batch's [`WorldBatch::active_mask`]).
    ///
    /// `edge_masks[e]` is the lane block of edge `e` and `neighbors(u)`
    /// must yield `(neighbor vertex index, edge index)` pairs; a world's
    /// edge passes iff its lane bit is set, so edges absent from the
    /// sampled domain (all-zero blocks) are never crossed.
    pub fn run<F, I>(
        &mut self,
        source: usize,
        init: [u64; W],
        edge_masks: &[[u64; W]],
        neighbors: F,
    ) where
        F: Fn(usize) -> I,
        I: Iterator<Item = (usize, usize)>,
    {
        // Frontier-local reset: only the previous run's touched vertices
        // hold non-zero lane blocks (`pending`/`in_queue`/`queue` are
        // self-cleaning — the worklist drains them before returning).
        for &v in &self.touched {
            self.reached[v as usize] = [0; W];
        }
        self.touched.clear();
        self.reached[source] = init;
        self.pending[source] = init;
        self.in_queue[source] = true;
        self.queue.push_back(source as u32);
        self.touched.push(source as u32);
        while let Some(u) = self.queue.pop_front() {
            let u = u as usize;
            self.in_queue[u] = false;
            let delta = self.pending[u];
            self.pending[u] = [0; W];
            if delta == [0; W] {
                continue;
            }
            for (v, e) in neighbors(u) {
                // A converged vertex (every active lane reached) can gain
                // no new bits; skip it before touching the edge mask.
                let seen = self.reached[v];
                if seen == init {
                    continue;
                }
                let mask = &edge_masks[e];
                let mut new = [0u64; W];
                let mut any = 0u64;
                let mut old = 0u64;
                for k in 0..W {
                    new[k] = delta[k] & mask[k] & !seen[k];
                    any |= new[k];
                    old |= seen[k];
                }
                if any != 0 {
                    if old == 0 {
                        self.touched.push(v as u32);
                    }
                    let (reached, pending) = (&mut self.reached[v], &mut self.pending[v]);
                    for k in 0..W {
                        reached[k] = seen[k] | new[k];
                        pending[k] |= new[k];
                    }
                    if !self.in_queue[v] {
                        self.in_queue[v] = true;
                        self.queue.push_back(v as u32);
                    }
                }
            }
        }
    }

    /// Convenience: lane BFS over a graph-level [`WorldBatch`] from `query`.
    pub fn run_graph(
        &mut self,
        graph: &ProbabilisticGraph,
        query: VertexId,
        batch: &WorldBatch<W>,
    ) {
        self.run(query.index(), batch.active_mask(), batch.masks(), |u| {
            graph
                .neighbors(VertexId::from_index(u))
                .map(|(v, e)| (v.index(), e.index()))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::sample_world;
    use flowmax_graph::{Bfs, GraphBuilder, Probability, Weight};
    use rand::Rng;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    /// Q(0)-1-2 triangle (p=0.5 each) with a certain pendant edge 2-3.
    fn mixed_graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::ONE);
        b.add_edge(VertexId(0), VertexId(1), p(0.5)).unwrap();
        b.add_edge(VertexId(1), VertexId(2), p(0.5)).unwrap();
        b.add_edge(VertexId(0), VertexId(2), p(0.5)).unwrap();
        b.add_edge(VertexId(2), VertexId(3), Probability::ONE)
            .unwrap();
        b.build()
    }

    #[test]
    fn threshold_coin_is_bit_identical_to_scalar_coin() {
        // The same underlying u64 stream must decide identically whether it
        // was consumed as `gen::<f64>() < p` or via the integer threshold.
        let seq = SeedSequence::new(99);
        for (i, pv) in [0.001, 0.25, 0.5, 0.9999, 1e-12, 1.0 - 1e-12]
            .into_iter()
            .enumerate()
        {
            let EdgeCoin::Threshold(t) = EdgeCoin::classify(pv) else {
                panic!("fractional probability must classify as Threshold");
            };
            let mut a = seq.rng(i as u64);
            let mut b = seq.rng(i as u64);
            for _ in 0..4000 {
                let scalar = a.gen::<f64>() < pv;
                let batched = b.next_u64() >> 11 < t;
                assert_eq!(scalar, batched, "p={pv}");
            }
        }
    }

    #[test]
    fn soa_steps_match_flowrng() {
        // The structure-of-arrays stepper duplicates the vendored
        // xoshiro256++ recurrence; this pins the two against each other so
        // they cannot drift. Three lanes (a partial, padded group), 2000
        // draws streamed through the lane-major loop in one call.
        let seq = SeedSequence::new(5150);
        let EdgeCoin::Threshold(t) = EdgeCoin::classify(0.37) else {
            panic!("fractional probability must classify as Threshold");
        };
        let mut soa = SoaLaneRngs::default();
        soa.reseed(&seq, 7, 3);
        let edges: Vec<(u32, u64)> = (0..2000).map(|i| (i, t)).collect();
        let mut wide = vec![[0u64; 1]; edges.len()];
        soa.flip_all(&edges, &mut wide);
        let mut rngs: Vec<FlowRng> = (0..3).map(|w| seq.rng(7 + w)).collect();
        for (round, mask) in wide.iter().enumerate() {
            let narrow = EdgeCoin::Threshold(t).flip(&mut rngs);
            assert_eq!(mask[0], narrow, "round {round}");
        }
    }

    #[test]
    fn classify_fast_paths() {
        assert_eq!(EdgeCoin::classify(1.0), EdgeCoin::AlwaysOn);
        assert_eq!(EdgeCoin::classify(1.5), EdgeCoin::AlwaysOn);
        assert_eq!(EdgeCoin::classify(0.0), EdgeCoin::AlwaysOff);
        assert_eq!(EdgeCoin::classify(-0.5), EdgeCoin::AlwaysOff);
        // Deterministic coins never touch the RNGs.
        let seq = SeedSequence::new(1);
        let mut rngs: Vec<FlowRng> = vec![seq.rng(0)];
        let before = rngs[0].clone();
        assert_eq!(EdgeCoin::AlwaysOn.flip(&mut rngs), 1);
        assert_eq!(EdgeCoin::AlwaysOff.flip(&mut rngs), 0);
        assert!(rngs[0] == before, "fast paths must not consume draws");
    }

    fn batch_lanes_match_scalar_worlds_at<const W: usize>() {
        let g = mixed_graph();
        let domain = EdgeSubset::full(&g);
        let seq = SeedSequence::new(7);
        let worlds = block_worlds::<W>();
        let batch = WorldBatch::<W>::sample(&g, &domain, &seq, 0, worlds);
        let mut scalar = EdgeSubset::for_graph(&g);
        let mut extracted = EdgeSubset::for_graph(&g);
        for lane in 0..worlds {
            let mut rng = seq.rng(lane as u64);
            sample_world(&g, &domain, &mut rng, &mut scalar);
            batch.world(lane, &mut extracted);
            assert_eq!(scalar, extracted, "width {W}, lane {lane}");
        }
    }

    #[test]
    fn batch_lanes_match_scalar_worlds() {
        batch_lanes_match_scalar_worlds_at::<1>();
        batch_lanes_match_scalar_worlds_at::<4>();
        batch_lanes_match_scalar_worlds_at::<8>();
    }

    fn wide_blocks_match_narrow_batches_at<const W: usize>() {
        // The cross-width contract itself: lane `w` of a wide block equals
        // lane `w % 64` of narrow batch `w / 64` at the same labels.
        let g = mixed_graph();
        let domain = EdgeSubset::full(&g);
        let seq = SeedSequence::new(314);
        let first_label = 128;
        let wide = WorldBatch::<W>::sample(&g, &domain, &seq, first_label, block_worlds::<W>());
        for k in 0..W {
            let narrow = WorldBatch::<1>::sample(
                &g,
                &domain,
                &seq,
                first_label + (k as u64) * LANES as u64,
                LANES,
            );
            for e in g.edge_ids() {
                assert_eq!(
                    wide.edge_mask(e)[k],
                    narrow.edge_mask(e)[0],
                    "width {W}, word {k}, edge {e}"
                );
            }
        }
    }

    #[test]
    fn wide_blocks_match_narrow_batches_word_for_word() {
        wide_blocks_match_narrow_batches_at::<4>();
        wide_blocks_match_narrow_batches_at::<8>();
    }

    fn partial_batches_zero_inactive_lanes_at<const W: usize>(lanes: u32) {
        let g = mixed_graph();
        let domain = EdgeSubset::full(&g);
        let seq = SeedSequence::new(3);
        let batch = WorldBatch::<W>::sample(&g, &domain, &seq, 128, lanes);
        assert_eq!(batch.lanes(), lanes);
        assert_eq!(batch.active_mask(), block_mask::<W>(lanes));
        let active = batch.active_mask();
        for e in g.edge_ids() {
            let mask = batch.edge_mask(e);
            for k in 0..W {
                assert_eq!(
                    mask[k] & !active[k],
                    0,
                    "width {W}: bits above the active lanes must stay zero"
                );
            }
        }
        // The certain edge exists in every active lane.
        assert_eq!(batch.edge_mask(EdgeId(3)), active);
    }

    #[test]
    fn partial_batches_zero_inactive_lanes() {
        partial_batches_zero_inactive_lanes_at::<1>(5);
        partial_batches_zero_inactive_lanes_at::<4>(5);
        partial_batches_zero_inactive_lanes_at::<4>(130);
        partial_batches_zero_inactive_lanes_at::<8>(300);
    }

    #[test]
    fn domain_restriction_zeroes_outside_edges() {
        let g = mixed_graph();
        let domain = EdgeSubset::from_edges(g.edge_count(), [EdgeId(0), EdgeId(3)]);
        let batch = WorldBatch::<4>::sample(&g, &domain, &SeedSequence::new(5), 0, 256);
        assert_eq!(batch.edge_mask(EdgeId(1)), [0; 4]);
        assert_eq!(batch.edge_mask(EdgeId(2)), [0; 4]);
        assert_eq!(batch.edge_mask(EdgeId(3)), [!0; 4]);
    }

    fn lane_bfs_matches_scalar_bfs_at<const W: usize>() {
        let g = mixed_graph();
        let domain = EdgeSubset::full(&g);
        let seq = SeedSequence::new(42);
        let worlds = block_worlds::<W>();
        let batch = WorldBatch::<W>::sample(&g, &domain, &seq, 0, worlds);
        let mut lane_bfs = LaneBfs::<W>::new(g.vertex_count());
        lane_bfs.run_graph(&g, VertexId(0), &batch);
        let mut world = EdgeSubset::for_graph(&g);
        let mut bfs = Bfs::new(g.vertex_count());
        for lane in 0..worlds {
            batch.world(lane, &mut world);
            bfs.reachable(&g, &world, VertexId(0));
            let (word, bit) = ((lane / LANES) as usize, lane % LANES);
            for v in g.vertices() {
                assert_eq!(
                    bfs.was_visited(v),
                    lane_bfs.reached_mask(v.index())[word] >> bit & 1 == 1,
                    "width {W}, lane {lane}, vertex {v}"
                );
            }
        }
    }

    #[test]
    fn lane_bfs_matches_scalar_bfs_per_lane() {
        lane_bfs_matches_scalar_bfs_at::<1>();
        lane_bfs_matches_scalar_bfs_at::<4>();
        lane_bfs_matches_scalar_bfs_at::<8>();
    }

    #[test]
    fn lane_bfs_survival_frequency_is_sane() {
        // Pr[1 reaches 0] in the triangle = 0.625 (direct or two-hop).
        let g = mixed_graph();
        let domain = EdgeSubset::full(&g);
        let seq = SeedSequence::new(11);
        let mut batch = WorldBatch::<1>::new(g.edge_count());
        let mut bfs = LaneBfs::new(g.vertex_count());
        let mut hits = 0u32;
        let batches = 300usize;
        for b in 0..batches {
            batch.sample_into(&g, &domain, &seq, b as u64 * LANES as u64, LANES);
            bfs.run_graph(&g, VertexId(0), &batch);
            hits += bfs.reached_mask(1)[0].count_ones();
        }
        let freq = hits as f64 / (batches as f64 * LANES as f64);
        assert!((freq - 0.625).abs() < 0.02, "frequency {freq}");
    }

    #[test]
    fn lanes_in_batch_splits_the_budget() {
        assert_eq!(lanes_in_batch(64, 0), 64);
        assert_eq!(lanes_in_batch(65, 1), 1);
        assert_eq!(lanes_in_batch(1000, 15), 40);
        assert_eq!(lanes_in_batch(1, 0), 1);
        assert_eq!(lane_mask(64), !0);
        assert_eq!(lane_mask(1), 1);
    }

    #[test]
    fn lanes_in_batch_is_zero_at_and_past_the_boundary() {
        // A caller landing exactly on the budget boundary — e.g. a wide
        // block probing `W` consecutive batches of which only some exist —
        // gets 0 lanes instead of a panic, at every multiple-of-64 budget.
        assert_eq!(lanes_in_batch(64, 1), 0);
        assert_eq!(lanes_in_batch(128, 2), 0);
        assert_eq!(lanes_in_batch(128, 3), 0);
        assert_eq!(lanes_in_batch(1000, 16), 0);
        assert_eq!(lanes_in_batch(1000, 1_000_000), 0);
        // The same boundary at the wide widths: a 256-world (W=4) and a
        // 512-world (W=8) budget end exactly on their block boundaries.
        assert_eq!(lanes_in_batch(block_worlds::<4>(), 4), 0);
        assert_eq!(lanes_in_batch(block_worlds::<8>(), 8), 0);
        for b in 0..4 {
            assert_eq!(lanes_in_batch(block_worlds::<4>(), b), 64);
        }
        for b in 0..8 {
            assert_eq!(lanes_in_batch(block_worlds::<8>(), b), 64);
        }
    }

    #[test]
    fn block_masks_cover_partial_words() {
        assert_eq!(block_mask::<1>(5), [0b11111]);
        assert_eq!(block_mask::<4>(64), [!0, 0, 0, 0]);
        assert_eq!(block_mask::<4>(70), [!0, 0b111111, 0, 0]);
        assert_eq!(block_mask::<4>(256), [!0; 4]);
        assert_eq!(block_mask::<8>(0), [0; 8]);
        assert_eq!(block_ones(&block_mask::<8>(300)), 300);
        assert_eq!(block_worlds::<1>(), 64);
        assert_eq!(block_worlds::<4>(), 256);
        assert_eq!(block_worlds::<8>(), 512);
    }
}
