//! Deterministic random-number management.
//!
//! Every stochastic experiment in `flowmax` must be reproducible from a
//! single `u64` master seed: workload generation, world sampling during edge
//! selection, and final evaluation each derive *independent* streams via
//! [`SeedSequence`], so adding samples in one phase never perturbs another.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG used throughout `flowmax` hot paths.
///
/// `SmallRng` (xoshiro-family) is the right trade-off here: non-cryptographic
/// but fast, and every estimator draws millions of Bernoulli variables.
pub type FlowRng = SmallRng;

/// Derives independent child seeds from a master seed.
///
/// Uses the SplitMix64 finalizer, the standard way to expand one seed into a
/// family of decorrelated streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence from a master seed.
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Deterministically derives the child seed for a labelled stream.
    pub fn child_seed(&self, label: u64) -> u64 {
        splitmix64(self.master ^ splitmix64(label.wrapping_add(0x9E37_79B9_7F4A_7C15)))
    }

    /// Creates an RNG for a labelled stream.
    pub fn rng(&self, label: u64) -> FlowRng {
        FlowRng::seed_from_u64(self.child_seed(label))
    }
}

/// SplitMix64 finalizer: bijective 64-bit mixing with full avalanche.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn child_seeds_are_deterministic() {
        let s = SeedSequence::new(42);
        assert_eq!(s.child_seed(0), s.child_seed(0));
        assert_eq!(s.master(), 42);
    }

    #[test]
    fn child_seeds_differ_by_label() {
        let s = SeedSequence::new(42);
        assert_ne!(s.child_seed(0), s.child_seed(1));
        assert_ne!(s.child_seed(1), s.child_seed(2));
    }

    #[test]
    fn child_seeds_differ_by_master() {
        assert_ne!(
            SeedSequence::new(1).child_seed(7),
            SeedSequence::new(2).child_seed(7)
        );
    }

    #[test]
    fn rngs_produce_reproducible_streams() {
        let s = SeedSequence::new(7);
        let a: Vec<u32> = s
            .rng(3)
            .sample_iter(rand::distributions::Standard)
            .take(5)
            .collect();
        let b: Vec<u32> = s
            .rng(3)
            .sample_iter(rand::distributions::Standard)
            .take(5)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn splitmix_is_bijective_on_samples() {
        // Spot check: distinct inputs give distinct outputs.
        let outs: std::collections::HashSet<u64> = (0..1000).map(splitmix64).collect();
        assert_eq!(outs.len(), 1000);
    }
}
