//! Component-local reachability estimation — the F-tree's sampling kernel
//! (§5.3, Lemma 1 applied per bi-connected component).
//!
//! A bi-connected component `BC = (BC.V, BC.P(v), BC.AV)` needs the
//! probability that each of its vertices reaches the articulation vertex
//! using *only the component's edges*. [`ComponentGraph`] snapshots the
//! component into a compact local-index form once, then either
//! * samples it (`sample_reachability`) — the paper's estimator, or
//! * enumerates it exactly (`exact_reachability`) — possible because
//!   components are small; this powers the `Exact`/`Hybrid` estimators used
//!   for ground-truth testing and low-variance evaluation.

use flowmax_graph::{EdgeId, ProbabilisticGraph, VertexId};

use crate::batch::WorldBatch;
use crate::coin::scalar_coin;
use crate::confidence::{wald_interval, ConfidenceInterval};
use crate::parallel::ParallelEstimator;
use crate::rng::{splitmix64, FlowRng, SeedSequence};

/// Reusable global-vertex → local-id scratch map for
/// [`ComponentGraph::build_with`].
///
/// A graph-sized dense array replaces the per-snapshot `HashMap` the
/// builder used to allocate: entries are validated by an epoch counter, so
/// resetting between builds is a single integer increment rather than a
/// clear or a reallocation. Allocate one per solver session (the F-tree
/// owns one) and thread it through every snapshot build.
#[derive(Debug, Clone, Default)]
pub struct LocalIdScratch {
    /// `local[v]` is valid iff `mark[v] == epoch`.
    mark: Vec<u64>,
    local: Vec<u32>,
    epoch: u64,
}

impl LocalIdScratch {
    /// A scratch sized for graphs with `vertex_count` vertices.
    pub fn new(vertex_count: usize) -> Self {
        LocalIdScratch {
            mark: vec![0; vertex_count],
            local: vec![0; vertex_count],
            epoch: 0,
        }
    }

    /// Starts a new build: bumps the epoch (invalidating every entry in
    /// O(1)) and grows the arrays if the graph is larger than any seen
    /// before.
    fn begin(&mut self, vertex_count: usize) {
        if self.mark.len() < vertex_count {
            self.mark.resize(vertex_count, 0);
            self.local.resize(vertex_count, 0);
        }
        self.epoch += 1;
    }

    /// The local id of `v`, assigning the next one (and recording `v` in
    /// `vertices`) on first sight this epoch.
    #[inline]
    fn local_of(&mut self, v: VertexId, vertices: &mut Vec<VertexId>) -> u32 {
        let i = v.index();
        if self.mark[i] == self.epoch {
            return self.local[i];
        }
        let id = vertices.len() as u32;
        vertices.push(v);
        self.mark[i] = self.epoch;
        self.local[i] = id;
        id
    }
}

/// A compact, self-contained snapshot of one component: local vertex ids are
/// `0..n` with the articulation vertex at local id 0.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentGraph {
    /// Local → global vertex ids; `vertices[0]` is the articulation vertex.
    vertices: Vec<VertexId>,
    /// Edge probabilities, parallel to `global_edges`.
    edge_probs: Vec<f64>,
    /// Global edge ids of the component.
    global_edges: Vec<EdgeId>,
    /// CSR adjacency over local ids: `(local vertex, local edge)`.
    adj_offsets: Vec<u32>,
    adj_entries: Vec<(u32, u32)>,
    /// Commutative identity hash over (AV, edge multiset), fixed at build
    /// time — see [`ComponentGraph::fingerprint`].
    fingerprint: u64,
}

/// Salt decorrelating the per-edge terms of the commutative fingerprint from
/// raw edge ids (so `{e}` and `{e+1}` don't land one apart).
const FINGERPRINT_EDGE_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

impl ComponentGraph {
    /// Snapshots the subgraph formed by `edges`, rooted at the articulation
    /// vertex `articulation`, using a throwaway [`LocalIdScratch`].
    ///
    /// Hot callers (the F-tree's insert and probe paths) should prefer
    /// [`ComponentGraph::build_with`] with a long-lived scratch — this
    /// convenience form pays one graph-sized allocation per call.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty; a component always has at least one edge.
    pub fn build(graph: &ProbabilisticGraph, articulation: VertexId, edges: &[EdgeId]) -> Self {
        Self::build_with(
            graph,
            articulation,
            edges,
            &mut LocalIdScratch::new(graph.vertex_count()),
        )
    }

    /// [`ComponentGraph::build`] against a reusable [`LocalIdScratch`]: the
    /// epoch bump replaces the old per-snapshot hash map, so repeated
    /// builds allocate only the snapshot's own (component-sized) vectors.
    ///
    /// The produced snapshot is identical to [`ComponentGraph::build`]'s —
    /// local ids are assigned in first-sight order either way.
    pub fn build_with(
        graph: &ProbabilisticGraph,
        articulation: VertexId,
        edges: &[EdgeId],
        scratch: &mut LocalIdScratch,
    ) -> Self {
        assert!(
            !edges.is_empty(),
            "a component snapshot needs at least one edge"
        );
        scratch.begin(graph.vertex_count());
        let mut vertices = Vec::with_capacity(edges.len() + 1);
        scratch.local_of(articulation, &mut vertices);
        let mut local_endpoints = Vec::with_capacity(edges.len());
        let mut edge_probs = Vec::with_capacity(edges.len());
        let mut fingerprint = splitmix64(articulation.0 as u64);
        for &e in edges {
            let (a, b) = graph.endpoints(e);
            let la = scratch.local_of(a, &mut vertices);
            let lb = scratch.local_of(b, &mut vertices);
            local_endpoints.push((la, lb));
            edge_probs.push(graph.probability(e).value());
            fingerprint = fingerprint.wrapping_add(splitmix64(e.0 as u64 ^ FINGERPRINT_EDGE_SALT));
        }
        // Build local CSR.
        let n = vertices.len();
        let mut degree = vec![0u32; n];
        for &(a, b) in &local_endpoints {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut adj_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        adj_offsets.push(0);
        for d in &degree {
            acc += d;
            adj_offsets.push(acc);
        }
        let mut cursor: Vec<u32> = adj_offsets[..n].to_vec();
        let mut adj_entries = vec![(0u32, 0u32); 2 * local_endpoints.len()];
        for (i, &(a, b)) in local_endpoints.iter().enumerate() {
            adj_entries[cursor[a as usize] as usize] = (b, i as u32);
            cursor[a as usize] += 1;
            adj_entries[cursor[b as usize] as usize] = (a, i as u32);
            cursor[b as usize] += 1;
        }
        ComponentGraph {
            vertices,
            edge_probs,
            global_edges: edges.to_vec(),
            adj_offsets,
            adj_entries,
            fingerprint,
        }
    }

    /// Number of vertices (including the articulation vertex).
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.global_edges.len()
    }

    /// Global vertex ids, articulation vertex first.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// The articulation vertex.
    pub fn articulation(&self) -> VertexId {
        self.vertices[0]
    }

    /// Global edge ids of the component.
    pub fn global_edges(&self) -> &[EdgeId] {
        &self.global_edges
    }

    /// Number of edges with probability strictly below one.
    pub fn uncertain_edge_count(&self) -> usize {
        self.edge_probs.iter().filter(|&&p| p < 1.0).count()
    }

    /// A 64-bit identity fingerprint: articulation vertex + global edge set.
    /// Two snapshots of the *same* component (same edges, same AV) always
    /// collide, regardless of edge order; this keys memoization and the
    /// racing engine's per-component seed streams.
    ///
    /// The hash is a commutative running sum (`splitmix64(AV)` plus one
    /// salted `splitmix64` term per edge) accumulated during
    /// [`ComponentGraph::build_with`], so reading it here is O(1) — no
    /// per-call sort of the edge set. Order independence comes from the
    /// commutativity of the per-edge terms instead.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Samples `lanes` worlds of the component's edge domain into `batch`,
    /// lane `w` drawing from `seq.rng(first_label + w)` (the engine-wide
    /// lane/seed contract of [`crate::batch`]).
    pub(crate) fn fill_batch<const W: usize>(
        &self,
        batch: &mut WorldBatch<W>,
        seq: &SeedSequence,
        first_label: u64,
        lanes: u32,
    ) {
        let probs = self.edge_probs.iter().copied().enumerate();
        batch.sample_indexed_into(self.edge_count(), probs, seq, first_label, lanes);
    }

    /// Local CSR adjacency of vertex `u`: `(local vertex, local edge)`.
    pub(crate) fn local_neighbors(&self, u: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj_entries[self.adj_offsets[u] as usize..self.adj_offsets[u + 1] as usize]
            .iter()
            .map(|&(v, e)| (v as usize, e as usize))
    }

    fn bfs_from_articulation(&self, alive: &[bool], visited: &mut [bool], stack: &mut Vec<u32>) {
        visited.fill(false);
        visited[0] = true;
        stack.clear();
        stack.push(0);
        while let Some(u) = stack.pop() {
            let range =
                self.adj_offsets[u as usize] as usize..self.adj_offsets[u as usize + 1] as usize;
            for &(v, e) in &self.adj_entries[range] {
                if alive[e as usize] && !visited[v as usize] {
                    visited[v as usize] = true;
                    stack.push(v);
                }
            }
        }
    }

    /// Monte-Carlo estimate of `Pr[v ↔ AV]` for every local vertex
    /// (Lemma 1 applied to the component).
    pub fn sample_reachability(&self, samples: u32, rng: &mut FlowRng) -> ComponentEstimate {
        assert!(samples > 0, "need at least one sample");
        let n = self.vertex_count();
        let m = self.edge_count();
        let mut successes = vec![0u32; n];
        let mut alive = vec![false; m];
        let mut visited = vec![false; n];
        let mut stack = Vec::with_capacity(n);
        for _ in 0..samples {
            for (a, &p) in alive.iter_mut().zip(&self.edge_probs) {
                *a = scalar_coin(p, rng);
            }
            self.bfs_from_articulation(&alive, &mut visited, &mut stack);
            for (s, &v) in successes.iter_mut().zip(&visited) {
                *s += v as u32;
            }
        }
        let reach = successes
            .iter()
            .map(|&s| s as f64 / samples as f64)
            .collect();
        ComponentEstimate {
            reach,
            successes,
            samples,
        }
    }

    /// Bit-parallel, optionally multi-threaded variant of
    /// [`ComponentGraph::sample_reachability`]: worlds are drawn in batches
    /// of [`LANES`](crate::batch::LANES), each batch resolved by one lane
    /// BFS, batches sharded over `threads` workers.
    ///
    /// World `i` draws its coins from `seq.rng(i)`, so the result is a pure
    /// function of `(seq, samples)` — bit-identical for every thread count.
    ///
    /// This convenience form builds a [`ParallelEstimator`] per call, which
    /// is free: execution runs on the persistent process-global worker pool
    /// against each thread's warm scratch either way. Hot callers may still
    /// prefer [`ParallelEstimator::sample_component`] directly.
    pub fn sample_reachability_batched(
        &self,
        samples: u32,
        seq: &SeedSequence,
        threads: usize,
    ) -> ComponentEstimate {
        ParallelEstimator::new(threads).sample_component(self, samples, seq)
    }

    /// Exact `Pr[v ↔ AV]` by enumerating the `2^u` worlds over the `u`
    /// uncertain edges. Returns `None` when `u > cap`.
    pub fn exact_reachability(&self, cap: usize) -> Option<ComponentEstimate> {
        let uncertain: Vec<usize> = self
            .edge_probs
            .iter()
            .enumerate()
            .filter(|(_, &p)| p < 1.0)
            .map(|(i, _)| i)
            .collect();
        if uncertain.len() > cap {
            return None;
        }
        let n = self.vertex_count();
        let m = self.edge_count();
        let mut reach = vec![0.0f64; n];
        let mut alive = vec![true; m]; // certain edges always alive
        let mut visited = vec![false; n];
        let mut stack = Vec::with_capacity(n);
        let worlds: u64 = 1u64 << uncertain.len();
        for mask in 0..worlds {
            let mut prob = 1.0;
            for (bit, &e) in uncertain.iter().enumerate() {
                let on = mask >> bit & 1 == 1;
                alive[e] = on;
                let p = self.edge_probs[e];
                prob *= if on { p } else { 1.0 - p };
            }
            self.bfs_from_articulation(&alive, &mut visited, &mut stack);
            for (r, &v) in reach.iter_mut().zip(&visited) {
                if v {
                    *r += prob;
                }
            }
        }
        Some(ComponentEstimate {
            reach,
            successes: Vec::new(),
            samples: 0,
        })
    }
}

/// Per-vertex reachability probabilities of a component toward its
/// articulation vertex — the `BC.P(v)` function of Def. 9(3).
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentEstimate {
    /// `reach[local]` = `Pr[v ↔ AV]`; `reach[0] == 1`.
    reach: Vec<f64>,
    /// Success counts (empty for exact estimates).
    successes: Vec<u32>,
    /// Number of samples drawn; 0 marks an exact estimate.
    samples: u32,
}

impl ComponentEstimate {
    /// Builds a sampled estimate from per-vertex success counts over
    /// `samples` worlds (local vertex 0 is the articulation vertex, which
    /// trivially reaches itself in every world).
    ///
    /// # Panics
    ///
    /// Panics when `samples` is zero (0 marks exact estimates) or the
    /// articulation vertex's count disagrees with `samples`.
    pub fn from_success_counts(successes: Vec<u32>, samples: u32) -> Self {
        assert!(samples > 0, "sampled estimates need at least one world");
        assert_eq!(
            successes.first().copied(),
            Some(samples),
            "the articulation vertex reaches itself in every world"
        );
        let reach = successes
            .iter()
            .map(|&s| s as f64 / samples as f64)
            .collect();
        ComponentEstimate {
            reach,
            successes,
            samples,
        }
    }

    /// A placeholder for deferred estimation: the articulation vertex
    /// reaches itself, everything else reads as unreachable, no samples.
    /// Consumers must replace it (via [`ComponentEstimate::from_success_counts`]
    /// or a real estimator) before evaluating flow.
    pub fn placeholder(vertex_count: usize) -> Self {
        assert!(vertex_count >= 1, "a component has an articulation vertex");
        let mut reach = vec![0.0; vertex_count];
        reach[0] = 1.0;
        ComponentEstimate {
            reach,
            successes: Vec::new(),
            samples: 0,
        }
    }

    /// Reachability probability of the local vertex `local`.
    pub fn reach(&self, local: usize) -> f64 {
        self.reach[local]
    }

    /// All reachability probabilities, indexed by local vertex id.
    pub fn reach_all(&self) -> &[f64] {
        &self.reach
    }

    /// `true` when produced by exact enumeration.
    pub fn is_exact(&self) -> bool {
        self.samples == 0
    }

    /// Samples drawn (0 for exact estimates).
    pub fn samples(&self) -> u32 {
        self.samples
    }

    /// Confidence interval for the local vertex's reachability (degenerate
    /// when exact).
    pub fn interval(&self, local: usize, alpha: f64) -> ConfidenceInterval {
        if self.is_exact() {
            ConfidenceInterval::exact(self.reach[local])
        } else {
            wald_interval(self.successes[local], self.samples, alpha)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedSequence;
    use flowmax_graph::{GraphBuilder, Probability, Weight};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    /// Triangle AV(0)-1-2 with all p = 0.5 (the paper's component B shape:
    /// each non-AV vertex reaches AV with probability 0.375... computed:
    /// For a triangle with p=0.5 everywhere, Pr[1 ↔ 0] = p01 coverage:
    /// direct (0.5) + indirect (0.5·0.25) = 0.625? Enumerate: 8 worlds.
    /// e01, e12, e02 each 0.5. 1↔0 iff e01 ∨ (e12 ∧ e02):
    /// Pr = 0.5 + 0.5·0.25 = 0.625.
    fn triangle() -> (ProbabilisticGraph, Vec<EdgeId>) {
        let mut b = GraphBuilder::new();
        b.add_vertices(3, Weight::ONE);
        let e0 = b.add_edge(VertexId(0), VertexId(1), p(0.5)).unwrap();
        let e1 = b.add_edge(VertexId(1), VertexId(2), p(0.5)).unwrap();
        let e2 = b.add_edge(VertexId(0), VertexId(2), p(0.5)).unwrap();
        (b.build(), vec![e0, e1, e2])
    }

    #[test]
    fn build_maps_articulation_to_local_zero() {
        let (g, es) = triangle();
        let c = ComponentGraph::build(&g, VertexId(1), &es);
        assert_eq!(c.articulation(), VertexId(1));
        assert_eq!(c.vertices()[0], VertexId(1));
        assert_eq!(c.vertex_count(), 3);
        assert_eq!(c.edge_count(), 3);
        assert_eq!(c.uncertain_edge_count(), 3);
    }

    #[test]
    fn exact_triangle_reachability() {
        let (g, es) = triangle();
        let c = ComponentGraph::build(&g, VertexId(0), &es);
        let est = c.exact_reachability(20).unwrap();
        assert!(est.is_exact());
        assert_eq!(est.reach(0), 1.0);
        // Both non-AV vertices: p + (1-p)·p² = 0.5 + 0.5·0.25 = 0.625.
        for local in 1..3 {
            assert!((est.reach(local) - 0.625).abs() < 1e-12, "local {local}");
        }
    }

    #[test]
    fn sampled_matches_exact_within_tolerance() {
        let (g, es) = triangle();
        let c = ComponentGraph::build(&g, VertexId(0), &es);
        let exact = c.exact_reachability(20).unwrap();
        let mut rng = SeedSequence::new(17).rng(0);
        let est = c.sample_reachability(20_000, &mut rng);
        assert!(!est.is_exact());
        assert_eq!(est.samples(), 20_000);
        for local in 0..3 {
            assert!(
                (est.reach(local) - exact.reach(local)).abs() < 0.02,
                "local {local}: {} vs {}",
                est.reach(local),
                exact.reach(local)
            );
        }
    }

    #[test]
    fn exact_respects_cap() {
        let (g, es) = triangle();
        let c = ComponentGraph::build(&g, VertexId(0), &es);
        assert!(c.exact_reachability(2).is_none());
        assert!(c.exact_reachability(3).is_some());
    }

    #[test]
    fn certain_edges_not_counted_against_cap() {
        let mut b = GraphBuilder::new();
        b.add_vertices(3, Weight::ONE);
        let e0 = b
            .add_edge(VertexId(0), VertexId(1), Probability::ONE)
            .unwrap();
        let e1 = b.add_edge(VertexId(1), VertexId(2), p(0.5)).unwrap();
        let g = b.build();
        let c = ComponentGraph::build(&g, VertexId(0), &[e0, e1]);
        assert_eq!(c.uncertain_edge_count(), 1);
        let est = c.exact_reachability(1).unwrap();
        assert_eq!(est.reach(1), 1.0);
        assert!((est.reach(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn intervals_behave() {
        let (g, es) = triangle();
        let c = ComponentGraph::build(&g, VertexId(0), &es);
        let mut rng = SeedSequence::new(3).rng(0);
        let est = c.sample_reachability(1000, &mut rng);
        let ci = est.interval(1, 0.01);
        assert!(ci.contains(est.reach(1)));
        assert!(ci.width() > 0.0);
        let exact = c.exact_reachability(20).unwrap();
        assert_eq!(exact.interval(1, 0.01).width(), 0.0);
    }

    #[test]
    fn batched_sampling_matches_exact_within_tolerance() {
        let (g, es) = triangle();
        let c = ComponentGraph::build(&g, VertexId(0), &es);
        let exact = c.exact_reachability(20).unwrap();
        let seq = SeedSequence::new(29);
        let est = c.sample_reachability_batched(20_000, &seq, 4);
        assert!(!est.is_exact());
        assert_eq!(est.samples(), 20_000);
        assert_eq!(est.reach(0), 1.0);
        for local in 0..3 {
            assert!(
                (est.reach(local) - exact.reach(local)).abs() < 0.02,
                "local {local}: {} vs {}",
                est.reach(local),
                exact.reach(local)
            );
        }
    }

    #[test]
    fn batched_sampling_is_thread_count_invariant() {
        let (g, es) = triangle();
        let c = ComponentGraph::build(&g, VertexId(1), &es);
        let seq = SeedSequence::new(71);
        for samples in [1, 64, 100, 1000] {
            let base = c.sample_reachability_batched(samples, &seq, 1);
            for threads in [2, 8] {
                let est = c.sample_reachability_batched(samples, &seq, threads);
                assert_eq!(base, est, "samples={samples} threads={threads}");
            }
        }
    }

    #[test]
    fn articulation_always_reaches_itself() {
        let (g, es) = triangle();
        let c = ComponentGraph::build(&g, VertexId(2), &es);
        let mut rng = SeedSequence::new(9).rng(0);
        let est = c.sample_reachability(100, &mut rng);
        assert_eq!(est.reach(0), 1.0);
    }

    #[test]
    fn snapshot_is_independent_of_graph_edge_order() {
        // Same component described with edges in different order must give
        // identical exact estimates (keyed by global vertex id).
        let (g, es) = triangle();
        let c1 = ComponentGraph::build(&g, VertexId(0), &es);
        let reversed: Vec<EdgeId> = es.iter().rev().copied().collect();
        let c2 = ComponentGraph::build(&g, VertexId(0), &reversed);
        let e1 = c1.exact_reachability(20).unwrap();
        let e2 = c2.exact_reachability(20).unwrap();
        for v in g.vertices() {
            let l1 = c1.vertices().iter().position(|&x| x == v).unwrap();
            let l2 = c2.vertices().iter().position(|&x| x == v).unwrap();
            assert!((e1.reach(l1) - e2.reach(l2)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn empty_component_rejected() {
        let (g, _) = triangle();
        ComponentGraph::build(&g, VertexId(0), &[]);
    }

    #[test]
    fn fingerprint_is_order_independent_and_identity_sensitive() {
        let (g, es) = triangle();
        let base = ComponentGraph::build(&g, VertexId(0), &es);
        let reversed: Vec<EdgeId> = es.iter().rev().copied().collect();
        let same = ComponentGraph::build(&g, VertexId(0), &reversed);
        assert_eq!(
            base.fingerprint(),
            same.fingerprint(),
            "edge order must not affect the identity hash"
        );
        let other_av = ComponentGraph::build(&g, VertexId(1), &es);
        assert_ne!(base.fingerprint(), other_av.fingerprint());
        let fewer = ComponentGraph::build(&g, VertexId(0), &es[..2]);
        assert_ne!(base.fingerprint(), fewer.fingerprint());
    }
}
