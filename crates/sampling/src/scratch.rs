//! Reusable sampling scratch arenas.
//!
//! Every batched estimation needs the same per-worker working set: a
//! [`WorldBatch`] (lane blocks per edge plus the per-lane RNG buffers) and a
//! [`LaneBfs`] (reached/pending lane blocks, the frontier worklist and its
//! touched-vertex reset list). Allocating those per call is cheap once but
//! ruinous in the greedy selection loop, where every candidate probe runs a
//! small component estimation: thousands of probes per iteration each paid
//! a fresh batch + BFS allocation.
//!
//! [`SamplingScratch`] bundles the working set, and
//! [`with_thread_scratch`] keeps **one scratch per OS thread per lane
//! width** — each persistent [`WorkerPool`](crate::pool::WorkerPool) worker
//! owns one slot per supported width `W ∈ {1, 4, 8}`, warmed by the first
//! job it ever serves at that width and reused by every estimation the
//! process runs afterwards; submitting threads (which compute chunk 0 of
//! their own jobs, and whole jobs that are too small to shard) get their
//! own. Buffers survive across jobs and only grow, so steady-state
//! estimation performs zero heap allocation per batch: the mask buffer,
//! lane RNGs, BFS arrays and frontier queues are all reused, whatever
//! sequence of components and domains the thread serves.
//!
//! Scratch contents never influence results — every buffer is fully
//! re-initialized (sized, re-seeded, or frontier-reset) before use, so a
//! pooled run is bit-identical to one on freshly allocated buffers. For the
//! same reason a *re-entrant* checkout (an estimation callback calling back
//! into an estimator on the same thread, at the same width) is handled by
//! handing the inner call a fresh temporary scratch instead of deadlocking
//! or panicking.

use std::cell::RefCell;

use crate::batch::{LaneBfs, WorldBatch};

/// One thread's reusable estimation working set at lane width `W`.
#[derive(Debug)]
pub struct SamplingScratch<const W: usize = 1> {
    /// Lane-block batch (edge masks + per-lane RNG buffers).
    pub batch: WorldBatch<W>,
    /// Lane BFS state (reached/pending blocks, frontier worklist).
    pub bfs: LaneBfs<W>,
}

impl<const W: usize> SamplingScratch<W> {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        SamplingScratch {
            batch: WorldBatch::new(0),
            bfs: LaneBfs::new(0),
        }
    }
}

impl<const W: usize> Default for SamplingScratch<W> {
    fn default() -> Self {
        SamplingScratch::new()
    }
}

/// The lane widths that own a persistent per-thread scratch slot.
///
/// Implemented exactly for `SamplingScratch<1>`, `SamplingScratch<4>` and
/// `SamplingScratch<8>` — the supported `FLOWMAX_LANES` widths. A generic
/// estimation driver bounds itself with `where SamplingScratch<W>:
/// ScratchSlot`, which statically rules out unsupported widths instead of
/// panicking at runtime.
pub trait ScratchSlot: Sized {
    /// Runs `f` against this thread's warm slot of the implementing width.
    fn with_slot<R>(f: impl FnOnce(&mut Self) -> R) -> R;
}

macro_rules! scratch_slot {
    ($slot:ident, $w:literal) => {
        thread_local! {
            static $slot: RefCell<SamplingScratch<$w>> = RefCell::new(SamplingScratch::new());
        }

        impl ScratchSlot for SamplingScratch<$w> {
            fn with_slot<R>(f: impl FnOnce(&mut Self) -> R) -> R {
                $slot.with(|cell| match cell.try_borrow_mut() {
                    Ok(mut scratch) => f(&mut scratch),
                    Err(_) => f(&mut SamplingScratch::new()),
                })
            }
        }
    };
}

scratch_slot!(THREAD_SCRATCH_W1, 1);
scratch_slot!(THREAD_SCRATCH_W4, 4);
scratch_slot!(THREAD_SCRATCH_W8, 8);

/// Runs `f` against the calling thread's warm [`SamplingScratch`] of width
/// `W`.
///
/// The scratch persists for the life of the thread — on a
/// [`WorkerPool`](crate::pool::WorkerPool) worker that means for the life
/// of the process — so arenas stay hot across estimations, jobs, sessions
/// and queries. Each supported width keeps its own slot: a daemon serving
/// both narrow and wide queries never thrashes one buffer set between
/// layouts. If the thread is already inside a `with_thread_scratch` call at
/// the same width (an estimator callback re-entering an estimator), the
/// inner call receives a fresh temporary scratch: correct, allocating, and
/// impossible to deadlock.
pub fn with_thread_scratch<const W: usize, R>(f: impl FnOnce(&mut SamplingScratch<W>) -> R) -> R
where
    SamplingScratch<W>: ScratchSlot,
{
    SamplingScratch::<W>::with_slot(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_buffers_grow_and_are_reusable() {
        let mut s = SamplingScratch::<1>::new();
        s.bfs.prepare(10);
        assert_eq!(s.bfs.reached().len(), 10);
        s.bfs.prepare(4);
        assert_eq!(s.bfs.reached().len(), 4);
    }

    #[test]
    fn thread_scratch_is_warm_across_checkouts() {
        with_thread_scratch::<1, _>(|s| s.bfs.prepare(16));
        let len = with_thread_scratch::<1, _>(|s| s.bfs.reached().len());
        assert_eq!(len, 16, "same thread sees the same buffers");
    }

    #[test]
    fn widths_own_independent_slots() {
        with_thread_scratch::<4, _>(|s| s.bfs.prepare(12));
        with_thread_scratch::<8, _>(|s| s.bfs.prepare(5));
        let (w4, w8) = (
            with_thread_scratch::<4, _>(|s| s.bfs.reached().len()),
            with_thread_scratch::<8, _>(|s| s.bfs.reached().len()),
        );
        assert_eq!(w4, 12, "width-4 slot keeps its own buffers");
        assert_eq!(w8, 5, "width-8 slot keeps its own buffers");
    }

    #[test]
    fn reentrant_checkout_gets_a_fresh_scratch() {
        with_thread_scratch::<1, _>(|outer| {
            outer.bfs.prepare(8);
            let inner_len = with_thread_scratch::<1, _>(|inner| {
                inner.bfs.prepare(3);
                inner.bfs.reached().len()
            });
            assert_eq!(inner_len, 3);
            assert_eq!(outer.bfs.reached().len(), 8, "outer scratch untouched");
        });
    }
}
