//! Reusable sampling scratch arenas.
//!
//! Every batched estimation needs the same per-worker working set: a
//! [`WorldBatch`] (lane words per edge plus the per-lane RNG buffer) and a
//! [`LaneBfs`] (reached/pending lane words, the frontier worklist and its
//! touched-vertex reset list). Allocating those per call is cheap once but
//! ruinous in the greedy selection loop, where every candidate probe runs a
//! small component estimation: thousands of probes per iteration each paid
//! a fresh batch + BFS allocation.
//!
//! [`SamplingScratch`] bundles the working set, and
//! [`with_thread_scratch`] keeps **one scratch per OS thread** — each
//! persistent [`WorkerPool`](crate::pool::WorkerPool) worker owns exactly
//! one, warmed by the first job it ever serves and reused by every
//! estimation the process runs afterwards; submitting threads (which
//! compute chunk 0 of their own jobs, and whole jobs that are too small to
//! shard) get their own. Buffers survive across jobs and only grow, so
//! steady-state estimation performs zero heap allocation per batch: the
//! mask buffer, lane RNGs, BFS arrays and frontier queues are all reused,
//! whatever sequence of components and domains the thread serves.
//!
//! Scratch contents never influence results — every buffer is fully
//! re-initialized (sized, re-seeded, or frontier-reset) before use, so a
//! pooled run is bit-identical to one on freshly allocated buffers. For the
//! same reason a *re-entrant* checkout (an estimation callback calling back
//! into an estimator on the same thread) is handled by handing the inner
//! call a fresh temporary scratch instead of deadlocking or panicking.

use std::cell::RefCell;

use crate::batch::{LaneBfs, WorldBatch};

/// One thread's reusable estimation working set.
#[derive(Debug)]
pub struct SamplingScratch {
    /// Lane-word batch (edge masks + per-lane RNG buffer).
    pub batch: WorldBatch,
    /// Lane BFS state (reached/pending words, frontier worklist).
    pub bfs: LaneBfs,
}

impl SamplingScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        SamplingScratch {
            batch: WorldBatch::new(0),
            bfs: LaneBfs::new(0),
        }
    }
}

impl Default for SamplingScratch {
    fn default() -> Self {
        SamplingScratch::new()
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<SamplingScratch> = RefCell::new(SamplingScratch::new());
}

/// Runs `f` against the calling thread's warm [`SamplingScratch`].
///
/// The scratch persists for the life of the thread — on a
/// [`WorkerPool`](crate::pool::WorkerPool) worker that means for the life
/// of the process — so arenas stay hot across estimations, jobs, sessions
/// and queries. If the thread is already inside a `with_thread_scratch`
/// call (an estimator callback re-entering an estimator), the inner call
/// receives a fresh temporary scratch: correct, allocating, and impossible
/// to deadlock.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut SamplingScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut SamplingScratch::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_buffers_grow_and_are_reusable() {
        let mut s = SamplingScratch::new();
        s.bfs.prepare(10);
        assert_eq!(s.bfs.reached().len(), 10);
        s.bfs.prepare(4);
        assert_eq!(s.bfs.reached().len(), 4);
    }

    #[test]
    fn thread_scratch_is_warm_across_checkouts() {
        with_thread_scratch(|s| s.bfs.prepare(16));
        let len = with_thread_scratch(|s| s.bfs.reached().len());
        assert_eq!(len, 16, "same thread sees the same buffers");
    }

    #[test]
    fn reentrant_checkout_gets_a_fresh_scratch() {
        with_thread_scratch(|outer| {
            outer.bfs.prepare(8);
            let inner_len = with_thread_scratch(|inner| {
                inner.bfs.prepare(3);
                inner.bfs.reached().len()
            });
            assert_eq!(inner_len, 3);
            assert_eq!(outer.bfs.reached().len(), 8, "outer scratch untouched");
        });
    }
}
