//! Reusable sampling scratch arenas.
//!
//! Every batched estimation needs the same per-worker working set: a
//! [`WorldBatch`] (lane words per edge plus the per-lane RNG buffer) and a
//! [`LaneBfs`] (reached/pending lane words, the frontier worklist and its
//! touched-vertex reset list). Allocating those per call is cheap once but
//! ruinous in the greedy selection loop, where every candidate probe runs a
//! small component estimation: thousands of probes per iteration each paid
//! a fresh batch + BFS allocation.
//!
//! [`SamplingScratch`] bundles the working set and [`ScratchPool`] keeps
//! **one scratch per worker slot** of a
//! [`ParallelEstimator`](crate::parallel::ParallelEstimator), checked out by
//! worker index for the duration of a chunk. Buffers survive across jobs and
//! only grow, so steady-state estimation performs zero heap allocation per
//! batch: the mask buffer, lane RNGs, BFS arrays and frontier queues are all
//! reused, whatever sequence of components and domains the estimator serves.
//!
//! Scratch contents never influence results — every buffer is fully
//! re-initialized (sized, re-seeded, or frontier-reset) before use, so a
//! pooled run is bit-identical to one on freshly allocated buffers.

use std::sync::{Mutex, MutexGuard};

use crate::batch::{LaneBfs, WorldBatch};

/// One worker's reusable estimation working set.
#[derive(Debug)]
pub struct SamplingScratch {
    /// Lane-word batch (edge masks + per-lane RNG buffer).
    pub batch: WorldBatch,
    /// Lane BFS state (reached/pending words, frontier worklist).
    pub bfs: LaneBfs,
}

impl SamplingScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        SamplingScratch {
            batch: WorldBatch::new(0),
            bfs: LaneBfs::new(0),
        }
    }
}

impl Default for SamplingScratch {
    fn default() -> Self {
        SamplingScratch::new()
    }
}

/// A fixed set of [`SamplingScratch`] slots, one per worker of a
/// [`ParallelEstimator`](crate::parallel::ParallelEstimator).
///
/// Workers address their slot by index, so the mutexes are uncontended in
/// normal operation — they exist only to make the pool `Sync` (scoped
/// workers borrow it across threads). The mutexes are **not** re-entrant:
/// checking out a slot while the same thread already holds it (e.g.
/// calling back into the same estimator from inside a `fill`/`per_batch`
/// callback) deadlocks — callbacks must never re-enter their estimator.
#[derive(Debug)]
pub struct ScratchPool {
    slots: Vec<Mutex<SamplingScratch>>,
}

impl ScratchPool {
    /// A pool with `workers` slots (at least one).
    pub fn new(workers: usize) -> Self {
        ScratchPool {
            slots: (0..workers.max(1))
                .map(|_| Mutex::new(SamplingScratch::new()))
                .collect(),
        }
    }

    /// Checks out worker `worker`'s scratch for the duration of a chunk.
    pub fn checkout(&self, worker: usize) -> MutexGuard<'_, SamplingScratch> {
        self.slots[worker % self.slots.len()]
            .lock()
            .expect("sampling scratch poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_always_has_a_slot() {
        let pool = ScratchPool::new(0);
        let _guard = pool.checkout(0);
        let pool = ScratchPool::new(3);
        let _a = pool.checkout(0);
        let _b = pool.checkout(1);
        // Out-of-range workers wrap instead of panicking.
        let _c = pool.checkout(5);
    }

    #[test]
    fn scratch_buffers_grow_and_are_reusable() {
        let mut s = SamplingScratch::new();
        s.bfs.prepare(10);
        assert_eq!(s.bfs.reached().len(), 10);
        s.bfs.prepare(4);
        assert_eq!(s.bfs.reached().len(), 4);
    }
}
