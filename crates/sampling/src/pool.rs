//! The persistent worker pool behind every multi-threaded estimation.
//!
//! Before this module, every estimation job re-spawned a fresh
//! `std::thread::scope` worker set — tens of microseconds of spawn/join per
//! job, paid thousands of times per selection and once per query in a
//! long-lived serving process. [`WorkerPool`] replaces that with **one
//! long-lived thread per worker slot**, each fed through its own channel:
//!
//! * a job's chunk `j` always runs on pool worker `j - 1` (chunk `0` runs
//!   on the submitting thread, which would otherwise idle-wait), so worker
//!   assignment is as deterministic as the scoped spawn it replaces;
//! * worker threads survive panicking jobs: a panicking task is caught on
//!   the worker, shipped back to the submitter, and re-raised *there* — the
//!   pool stays serviceable for every later job (see
//!   `tests/failure_injection.rs`). Should a slot thread nevertheless die
//!   (a panic *outside* the task containment — deliberately injectable via
//!   the `pool/worker` failpoint), the slot is respawned on its next
//!   dispatch with a warn-once notice, so one dead thread never bricks the
//!   pool;
//! * each worker thread keeps its own warm
//!   [`SamplingScratch`](crate::scratch::SamplingScratch) (thread-local, see
//!   [`crate::scratch::with_thread_scratch`]), so arenas stay hot across
//!   *every* estimation the process ever runs, not just within one job;
//! * dropping an owned pool is a clean shutdown: queued tasks drain, then
//!   every worker exits and is joined.
//!
//! Results never depend on the pool: chunk contents are a pure function of
//! the job (see [`crate::parallel`]), and which OS thread computes a chunk
//! is unobservable. The whole determinism test suite is the oracle for
//! this.
//!
//! # Safety
//!
//! This is the one module in the workspace that uses `unsafe`. Submitted
//! closures borrow the caller's stack (the graph, the per-chunk result
//! slots), but a channel to a `'static` worker thread can only carry
//! `'static` payloads, so [`WorkerPool::run`] erases the task's lifetime
//! with a single `transmute` — the standard scoped-thread-pool idiom. It is
//! sound because `run` **never returns (or unwinds) while any submitted
//! task can still run**: each task sends its result (or caught panic)
//! over a completion channel as its final action, and the submitter blocks
//! until every chunk has answered *or* the channel disconnects — and
//! disconnect itself proves every task closure has been destroyed (a task
//! drops its channel sender either after reporting or when a dying slot
//! thread drops it unrun), keeping every borrow alive for as long as any
//! worker can touch it.
//!
//! This file is the only entry in `crates/lint/allow_unsafe.toml`;
//! `flowmax-lint` (rule L4) rejects `unsafe` anywhere else in the
//! workspace and demands the `// SAFETY:` audit trail here.

// Future-proofing for the audited region: if an `unsafe fn` is ever added
// here, every unsafe operation inside it must still be wrapped in its own
// explicitly justified `unsafe {}` block.
#![deny(unsafe_op_in_unsafe_fn)]

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// A lifetime-erased unit of work, executed exactly once by a worker.
type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Set for the lifetime of every pool worker thread: a nested
    /// [`WorkerPool::run`] from inside a task must not wait on workers that
    /// may be busy running its own parent job (a deadlock), so it runs its
    /// chunks inline instead — bit-identical, only scheduling changes.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True on threads owned by a [`WorkerPool`].
pub fn is_pool_worker() -> bool {
    IS_POOL_WORKER.with(|flag| flag.get())
}

struct PoolState {
    senders: Vec<Sender<Task>>,
    handles: Vec<JoinHandle<()>>,
}

/// A persistent, channel-fed worker pool: one long-lived thread per worker
/// slot, grown on demand and reused by every estimation job in the process
/// (via [`WorkerPool::global`]) or owned directly (tests, embedders that
/// want [`Drop`]-time shutdown).
pub struct WorkerPool {
    state: Mutex<PoolState>,
    /// Worker slots respawned after their thread died (see
    /// [`WorkerPool::restarts`]).
    restarts: AtomicU64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.width())
            .field("restarts", &self.restarts())
            .finish()
    }
}

/// Warn-once flag for worker-slot respawns, mirroring the clamp helpers in
/// [`crate::parallel`]: one stderr line per process, results unaffected.
static WORKER_RESTART_WARNED: AtomicBool = AtomicBool::new(false);

fn note_worker_restart(index: usize) {
    if !WORKER_RESTART_WARNED.swap(true, Ordering::Relaxed) {
        // flowmax-lint: allow(L6, sanctioned warn-once restart notice: one stderr line per process when a dead worker slot is respawned; results are unaffected)
        eprintln!(
            "flowmax: warning: pool worker slot {index} died (task panicked outside its \
             containment); respawning the slot — in-flight jobs on it failed, later jobs are \
             unaffected"
        );
    }
}

impl WorkerPool {
    /// A pool with `width` worker threads, spawned immediately. More
    /// workers are added on demand by jobs that need them.
    pub fn new(width: usize) -> Self {
        let pool = WorkerPool {
            state: Mutex::new(PoolState {
                senders: Vec::new(),
                handles: Vec::new(),
            }),
            restarts: AtomicU64::new(0),
        };
        pool.ensure_width(width);
        pool
    }

    /// The process-wide shared pool used by
    /// [`ParallelEstimator`](crate::parallel::ParallelEstimator). Created
    /// empty on first use and grown to the widest job ever submitted; its
    /// threads live for the rest of the process (there is no point in
    /// shutting down a pool the next query would recreate).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(0))
    }

    /// The current number of spawned worker threads.
    pub fn width(&self) -> usize {
        self.lock_state().senders.len()
    }

    /// How many worker slots have been respawned after their thread died.
    ///
    /// A slot thread only dies when something panics *outside* a task's
    /// own containment — in practice the `pool/worker` failpoint or a bug
    /// in the pool itself. The job whose chunk was lost fails with a
    /// panic, the slot is respawned on its next dispatch, and this counter
    /// (plus a warn-once stderr notice) records that it happened.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, PoolState> {
        // A poisoned state mutex only means some thread panicked while
        // growing the pool; the sender list itself is always consistent
        // (push is the last step), so recover instead of cascading.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn ensure_width(&self, width: usize) {
        let mut state = self.lock_state();
        while state.senders.len() < width {
            let index = state.senders.len();
            let (tx, handle) = spawn_worker(index);
            state.senders.push(tx);
            state.handles.push(handle);
        }
    }

    /// Replaces a dead worker slot with a fresh thread (and reaps the dead
    /// one). Called with the state lock held, from the dispatch path that
    /// discovered the slot's channel disconnected.
    fn respawn_slot(&self, state: &mut PoolState, index: usize) {
        note_worker_restart(index);
        self.restarts.fetch_add(1, Ordering::Relaxed);
        let (tx, handle) = spawn_worker(index);
        state.senders[index] = tx;
        let dead = std::mem::replace(&mut state.handles[index], handle);
        // The old thread already exited (its receiver is gone); joining
        // just reaps it and discards the panic payload it died with.
        let _ = dead.join();
    }

    /// Runs one chunk of work per entry of `ranges` and returns the chunk
    /// results in chunk order: result `j` is `work(j, ranges[j])`.
    ///
    /// Chunk `0` runs on the calling thread; chunk `j ≥ 1` runs on pool
    /// worker `j - 1`. If any chunk panics, the panic is re-raised on the
    /// calling thread — but only after **every** chunk has finished, so the
    /// pool (and the borrows the chunks share) are never left in a torn
    /// state, and the worker threads survive to serve the next job.
    ///
    /// Called from inside a pool worker (a nested job), all chunks run
    /// inline on that worker instead — waiting on siblings that may be
    /// busy with the parent job would deadlock. Results are identical
    /// either way.
    pub fn run<T, F>(&self, ranges: Vec<Range<usize>>, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> T + Sync,
    {
        let chunks = ranges.len();
        if chunks <= 1 || is_pool_worker() {
            return ranges
                .into_iter()
                .enumerate()
                .map(|(j, range)| work(j, range))
                .collect();
        }
        self.ensure_width(chunks - 1);

        // Fault site: all dispatch decisions are evaluated *before* any
        // task is handed out, so a triggered dispatch fault aborts the job
        // while no lifetime-erased borrow is in flight — the transmute
        // contract below never sees a partial dispatch.
        for j in 1..chunks {
            flowmax_faults::failpoint_keyed("pool/dispatch", j as u64);
        }

        // Every task reports on this channel exactly once — its result or
        // the panic payload it caught — and the loop below collects the
        // reports before the function can return or unwind. (If a slot
        // thread dies *between* receiving a task and running it, the task
        // is dropped unrun and its report never arrives; the channel then
        // disconnects once every live task has reported, and the missing
        // chunks fail the job with a synthesized panic below.)
        let (done_tx, done_rx) = channel::<(usize, std::thread::Result<T>)>();
        let work_ref: &(dyn Fn(usize, Range<usize>) -> T + Sync) = &work;
        {
            let mut state = self.lock_state();
            for (j, range) in ranges.iter().enumerate().skip(1) {
                let range = range.clone();
                let tx = done_tx.clone();
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| work_ref(j, range)));
                    let _ = tx.send((j, result));
                });
                // SAFETY: lifetime erasure of a scoped task (allowlisted in
                // crates/lint/allow_unsafe.toml).
                //
                // * Erased borrows: the task captures `work_ref` (borrowing
                //   the caller's `work`) and `tx` (a clone of `done_tx`,
                //   owned by this stack frame).
                // * Why they live long enough: `run` blocks until **all**
                //   chunks have reported on `done_rx` — the report is each
                //   task's final action, sent only after the borrowed
                //   closure call has returned — or until `done_rx`
                //   disconnects, which proves every task closure (and its
                //   borrow) has already been destroyed: a task's sender is
                //   dropped only after it reports, or when a dying slot
                //   thread drops the task unrun. Either way no worker can
                //   touch the erased borrows after `run` resumes.
                // * Panic path: a panicking task still reports (the payload
                //   is caught by `catch_unwind` above) and the submitter
                //   re-raises it only after every chunk has answered, so
                //   unwinding can never release the borrows early.
                #[allow(unsafe_code)]
                let task: Task =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Task>(task) };
                // A send only fails when the slot's thread died (its
                // receiver was dropped during unwinding). Respawn the slot
                // and hand the returned task to the fresh thread: one dead
                // worker costs the job that was on it, never this one.
                if let Err(returned) = state.senders[j - 1].send(task) {
                    self.respawn_slot(&mut state, j - 1);
                    state.senders[j - 1]
                        .send(returned.0)
                        .expect("a freshly respawned flowmax pool worker accepts tasks");
                }
            }
        }
        drop(done_tx);

        // The submitting thread computes chunk 0 instead of idling; its
        // panic, too, is deferred until every worker chunk has answered.
        let first = catch_unwind(AssertUnwindSafe(|| work(0, ranges[0].clone())));
        let mut slots: Vec<Option<std::thread::Result<T>>> = Vec::with_capacity(chunks);
        slots.push(Some(first));
        slots.resize_with(chunks, || None);
        for _ in 1..chunks {
            match done_rx.recv() {
                Ok((j, result)) => slots[j] = Some(result),
                // Disconnect before all chunks answered: some slot thread
                // died with its task unrun. Every *live* task has reported
                // by now (disconnect requires all senders dropped, and a
                // running task drops its sender only after reporting), so
                // no worker can touch the erased borrows any more — the
                // missing chunks fail the job below.
                Err(_) => break,
            }
        }
        // All chunks have reported (or their slot thread is gone): no
        // worker can touch `work` or the channel any more, so the erased
        // borrows end here.
        //
        // Respawn the slot behind every lost chunk *now*, not at the next
        // dispatch: `respawn_slot` joins the dead thread, which closes the
        // race where a later job's send still reaches the dying thread's
        // receiver and queues a task that will never run.
        let lost: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(j, slot)| slot.is_none().then_some(j))
            .collect();
        if !lost.is_empty() {
            let mut state = self.lock_state();
            for &j in &lost {
                self.respawn_slot(&mut state, j - 1);
            }
        }
        flowmax_faults::failpoint_keyed("pool/join", chunks as u64);
        let mut out = Vec::with_capacity(chunks);
        for slot in slots {
            match slot {
                Some(Ok(value)) => out.push(value),
                Some(Err(payload)) => resume_unwind(payload),
                None => panic!(
                    "flowmax pool worker died before running its chunk; \
                     the slot has been respawned"
                ),
            }
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let PoolState { senders, handles } = {
            let mut state = self.lock_state();
            PoolState {
                senders: std::mem::take(&mut state.senders),
                handles: std::mem::take(&mut state.handles),
            }
        };
        // Closing the channels lets each worker drain any queued tasks and
        // exit its receive loop; joining then guarantees no thread outlives
        // the pool.
        drop(senders);
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn spawn_worker(index: usize) -> (Sender<Task>, JoinHandle<()>) {
    let (tx, rx) = channel::<Task>();
    let handle = std::thread::Builder::new()
        .name(format!("flowmax-worker-{index}"))
        .spawn(move || worker_loop(index, rx))
        .expect("spawn flowmax pool worker");
    (tx, handle)
}

fn worker_loop(index: usize, rx: Receiver<Task>) {
    IS_POOL_WORKER.with(|flag| flag.set(true));
    // Tasks contain their own panic containment (`catch_unwind` around the
    // user closure), so this loop never unwinds: one thread per worker
    // slot, for the life of the pool. When the pool closes the channel,
    // `recv` keeps delivering queued tasks before reporting disconnect, so
    // shutdown never drops submitted work.
    //
    // The `pool/worker` failpoint sits *outside* that containment — it is
    // the one deliberate way to kill a slot thread, so the chaos suite can
    // exercise the respawn path ([`WorkerPool::respawn_slot`]) end to end.
    while let Ok(task) = rx.recv() {
        flowmax_faults::failpoint_keyed("pool/worker", index as u64);
        task();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn ranges(chunks: usize, per: usize) -> Vec<Range<usize>> {
        (0..chunks).map(|j| j * per..(j + 1) * per).collect()
    }

    #[test]
    fn run_returns_chunk_results_in_order() {
        let pool = WorkerPool::new(3);
        let out = pool.run(ranges(4, 5), |j, range| (j, range.sum::<usize>()));
        assert_eq!(out.len(), 4);
        for (j, (cj, _)) in out.iter().enumerate() {
            assert_eq!(j, *cj);
        }
        assert!(pool.width() >= 3);
    }

    #[test]
    fn pool_grows_on_demand_and_reuses_threads() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.width(), 0);
        let a = pool.run(ranges(5, 1), |j, _| j);
        assert_eq!(a, vec![0, 1, 2, 3, 4]);
        assert_eq!(pool.width(), 4, "grown to widest job");
        let b = pool.run(ranges(2, 1), |j, _| j * 10);
        assert_eq!(b, vec![0, 10]);
        assert_eq!(pool.width(), 4, "no shrink, no respawn");
    }

    #[test]
    fn panicking_chunk_fails_the_job_but_not_the_pool() {
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(ranges(3, 1), |j, _| {
                if j == 1 {
                    panic!("injected worker fault");
                }
                completed.fetch_add(1, Ordering::SeqCst);
                j
            })
        }));
        let payload = result.expect_err("the injected panic must surface");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "injected worker fault");
        // Every non-faulty chunk still ran to completion before the panic
        // was re-raised on the submitting thread.
        assert_eq!(completed.load(Ordering::SeqCst), 2);
        // The pool stays serviceable: the worker that ran the faulty task
        // is still alive and answers the next job.
        let out = pool.run(ranges(3, 1), |j, _| j + 100);
        assert_eq!(out, vec![100, 101, 102]);
    }

    #[test]
    fn submitter_panic_is_also_deferred_until_workers_finish() {
        let pool = WorkerPool::new(1);
        let worker_done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(ranges(2, 1), |j, _| {
                if j == 0 {
                    panic!("chunk zero fault");
                }
                worker_done.fetch_add(1, Ordering::SeqCst);
            })
        }));
        assert!(result.is_err());
        assert_eq!(worker_done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_jobs_run_inline_instead_of_deadlocking() {
        let pool = WorkerPool::new(2);
        // Each outer chunk submits an inner multi-chunk job to the same
        // pool; inner jobs detect they are on a pool worker and run inline.
        let out = pool.run(ranges(3, 1), |_, _| {
            let inner = WorkerPool::global().run(ranges(4, 1), |j, _| j);
            inner.into_iter().sum::<usize>()
        });
        assert_eq!(out, vec![6, 6, 6]);
    }

    #[test]
    fn drop_joins_all_workers_after_draining() {
        let pool = WorkerPool::new(4);
        let out = pool.run(ranges(5, 2), |j, _| j);
        assert_eq!(out.len(), 5);
        drop(pool); // must not hang or leak threads
    }

    #[test]
    fn single_chunk_jobs_never_touch_the_workers() {
        let pool = WorkerPool::new(0);
        let out = pool.run(ranges(1, 7), |j, range| (j, range.len()));
        assert_eq!(out, vec![(0, 7)]);
        assert_eq!(pool.width(), 0);
    }
}
