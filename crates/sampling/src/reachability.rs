//! Whole-subgraph Monte-Carlo reachability estimation — the *Naive*
//! estimator of \[7\], \[22\] used as the baseline in §7.2.
//!
//! Each sample draws a full possible world of the active subgraph, runs a BFS
//! from the query vertex, and records which vertices were reached. This is
//! exactly what the F-tree avoids doing globally: it has both higher variance
//! (§7.3's covariance argument) and higher cost than component-local
//! sampling.
//!
//! These scalar loops are the pinned one-world-per-BFS reference; the
//! production path is [`crate::parallel::ParallelEstimator`]'s batched
//! equivalents (`sample_reachability` / `sample_flow` there), which run 64
//! worlds per traversal against the estimator's pooled
//! [`SamplingScratch`](crate::scratch::SamplingScratch) — zero allocation
//! per batch in steady state. The scalar loops still hoist their own
//! per-call scratch (the dense world subset and the BFS) out of the sample
//! loop, so their cost per world is one coin sweep plus one traversal.

use flowmax_graph::{Bfs, EdgeSubset, ProbabilisticGraph, VertexId};

use crate::coin::scalar_coin;
use crate::confidence::{wald_interval, ConfidenceInterval};
use crate::estimate::FlowEstimate;
use crate::rng::FlowRng;

/// Per-vertex reachability frequencies from a whole-subgraph sampling run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachabilityEstimate {
    /// `successes[v]` = number of sampled worlds in which `v` was reached.
    successes: Vec<u32>,
    samples: u32,
}

impl ReachabilityEstimate {
    /// Assembles an estimate from raw counts (used by the batched engine).
    pub(crate) fn from_parts(successes: Vec<u32>, samples: u32) -> Self {
        ReachabilityEstimate { successes, samples }
    }

    /// Number of sampled worlds.
    pub fn samples(&self) -> u32 {
        self.samples
    }

    /// Estimated `Pr[Q ↔ v]`.
    pub fn probability(&self, v: VertexId) -> f64 {
        self.successes[v.index()] as f64 / self.samples as f64
    }

    /// Raw success count for `v`.
    pub fn successes(&self, v: VertexId) -> u32 {
        self.successes[v.index()]
    }

    /// Confidence interval for `Pr[Q ↔ v]` (corrected Def. 10).
    pub fn interval(&self, v: VertexId, alpha: f64) -> ConfidenceInterval {
        wald_interval(self.successes[v.index()], self.samples, alpha)
    }

    /// Point estimate of the expected flow to `query` (Lemma 1 + Eq. 2).
    pub fn flow(&self, graph: &ProbabilisticGraph, query: VertexId, include_query: bool) -> f64 {
        let mut flow = 0.0;
        for v in graph.vertices() {
            if v == query && !include_query {
                continue;
            }
            flow += self.probability(v) * graph.weight(v).value();
        }
        flow
    }

    /// Lower/upper bounds of the expected flow obtained by summing per-vertex
    /// interval bounds (§6.3, `E_lb`/`E_ub`).
    pub fn flow_bounds(
        &self,
        graph: &ProbabilisticGraph,
        query: VertexId,
        include_query: bool,
        alpha: f64,
    ) -> (f64, f64) {
        let mut lb = 0.0;
        let mut ub = 0.0;
        for v in graph.vertices() {
            if v == query && !include_query {
                continue;
            }
            let w = graph.weight(v).value();
            if w == 0.0 {
                continue;
            }
            let ci = self.interval(v, alpha);
            lb += ci.lower * w;
            ub += ci.upper * w;
        }
        (lb, ub)
    }
}

/// Samples `samples` worlds of the `active` subgraph and counts per-vertex
/// reachability from `query`.
///
/// This is the estimator the `Naive` algorithm pays for on the *entire*
/// selected subgraph at every probe.
pub fn sample_reachability(
    graph: &ProbabilisticGraph,
    active: &EdgeSubset,
    query: VertexId,
    samples: u32,
    rng: &mut FlowRng,
) -> ReachabilityEstimate {
    assert!(samples > 0, "need at least one sample");
    let mut successes = vec![0u32; graph.vertex_count()];
    let mut bfs = Bfs::new(graph.vertex_count());
    // Pre-draw the active edge list once: iterating the bitset per sample is
    // wasteful when the selection is sparse.
    let active_edges: Vec<_> = active.iter().collect();
    let mut alive = EdgeSubset::new(graph.edge_count());
    for _ in 0..samples {
        alive.clear();
        for &e in &active_edges {
            if scalar_coin(graph.probability(e).value(), rng) {
                alive.insert(e);
            }
        }
        bfs.run(
            graph,
            query,
            |e| alive.contains(e),
            |v| {
                successes[v.index()] += 1;
            },
        );
    }
    ReachabilityEstimate { successes, samples }
}

/// Convenience wrapper: a [`FlowEstimate`] over per-world flow values,
/// exposing the estimator variance (used by the variance experiment).
pub fn sample_flow(
    graph: &ProbabilisticGraph,
    active: &EdgeSubset,
    query: VertexId,
    include_query: bool,
    samples: u32,
    rng: &mut FlowRng,
) -> FlowEstimate {
    assert!(samples > 0, "need at least one sample");
    let mut est = FlowEstimate::new();
    let mut bfs = Bfs::new(graph.vertex_count());
    let active_edges: Vec<_> = active.iter().collect();
    let mut alive = EdgeSubset::new(graph.edge_count());
    for _ in 0..samples {
        alive.clear();
        for &e in &active_edges {
            if scalar_coin(graph.probability(e).value(), rng) {
                alive.insert(e);
            }
        }
        let mut flow = 0.0;
        bfs.run(
            graph,
            query,
            |e| alive.contains(e),
            |v| {
                if v != query || include_query {
                    flow += graph.weight(v).value();
                }
            },
        );
        est.push(flow);
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedSequence;
    use flowmax_graph::{
        exact_expected_flow, exact_reachability, GraphBuilder, Probability, Weight,
        DEFAULT_ENUMERATION_CAP,
    };

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    /// Small cyclic graph: Q(0)-1 (0.5), 1-2 (0.5), Q-2 (0.5), 2-3 (0.8).
    fn cyclic() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::new(2.0).unwrap());
        b.add_edge(VertexId(0), VertexId(1), p(0.5)).unwrap();
        b.add_edge(VertexId(1), VertexId(2), p(0.5)).unwrap();
        b.add_edge(VertexId(0), VertexId(2), p(0.5)).unwrap();
        b.add_edge(VertexId(2), VertexId(3), p(0.8)).unwrap();
        b.build()
    }

    #[test]
    fn estimates_converge_to_exact_values() {
        let g = cyclic();
        let active = EdgeSubset::full(&g);
        let exact = exact_reachability(&g, &active, VertexId(0), DEFAULT_ENUMERATION_CAP).unwrap();
        let mut rng = SeedSequence::new(99).rng(0);
        let est = sample_reachability(&g, &active, VertexId(0), 20_000, &mut rng);
        for v in g.vertices() {
            let diff = (est.probability(v) - exact[v.index()]).abs();
            assert!(
                diff < 0.02,
                "vertex {v:?}: {} vs {}",
                est.probability(v),
                exact[v.index()]
            );
        }
    }

    #[test]
    fn flow_estimate_converges_to_exact_flow() {
        let g = cyclic();
        let active = EdgeSubset::full(&g);
        let exact =
            exact_expected_flow(&g, &active, VertexId(0), false, DEFAULT_ENUMERATION_CAP).unwrap();
        let mut rng = SeedSequence::new(5).rng(1);
        let est = sample_flow(&g, &active, VertexId(0), false, 20_000, &mut rng);
        assert!(
            (est.mean() - exact).abs() < 0.08,
            "{} vs {exact}",
            est.mean()
        );
        assert!(est.confidence_interval(0.01).contains(exact));
    }

    #[test]
    fn query_always_reached() {
        let g = cyclic();
        let active = EdgeSubset::full(&g);
        let mut rng = SeedSequence::new(2).rng(0);
        let est = sample_reachability(&g, &active, VertexId(0), 100, &mut rng);
        assert_eq!(est.probability(VertexId(0)), 1.0);
        assert_eq!(est.successes(VertexId(0)), 100);
    }

    #[test]
    fn empty_active_set_reaches_only_query() {
        let g = cyclic();
        let active = EdgeSubset::for_graph(&g);
        let mut rng = SeedSequence::new(2).rng(0);
        let est = sample_reachability(&g, &active, VertexId(0), 100, &mut rng);
        assert_eq!(est.flow(&g, VertexId(0), false), 0.0);
        assert_eq!(est.flow(&g, VertexId(0), true), 2.0);
    }

    #[test]
    fn flow_bounds_bracket_point_estimate() {
        let g = cyclic();
        let active = EdgeSubset::full(&g);
        let mut rng = SeedSequence::new(31).rng(0);
        let est = sample_reachability(&g, &active, VertexId(0), 500, &mut rng);
        let flow = est.flow(&g, VertexId(0), false);
        let (lb, ub) = est.flow_bounds(&g, VertexId(0), false, 0.01);
        assert!(lb <= flow && flow <= ub, "{lb} <= {flow} <= {ub}");
        assert!(ub - lb > 0.0);
    }

    #[test]
    fn interval_is_degenerate_for_query() {
        let g = cyclic();
        let active = EdgeSubset::full(&g);
        let mut rng = SeedSequence::new(4).rng(0);
        let est = sample_reachability(&g, &active, VertexId(0), 200, &mut rng);
        let ci = est.interval(VertexId(0), 0.01);
        assert_eq!(ci.lower, 1.0);
        assert_eq!(ci.upper, 1.0);
    }
}
