//! Confidence intervals for sampled reachability probabilities (§6.3).
//!
//! The paper's Definition 10 derives a two-sided `1 − α` interval for the
//! binomial success probability via the Central Limit Theorem. As printed,
//! the formula `p̂ ± z·sqrt(p̂(1−p̂))` omits the `1/√S` factor; we implement
//! the standard Wald interval `p̂ ± z·sqrt(p̂(1−p̂)/S)` (clamped to `[0,1]`)
//! and additionally offer the Wilson score interval, which remains sane at
//! `p̂ ∈ {0, 1}` where the Wald width collapses to zero.

/// The paper applies CLT-based pruning only once at least this many samples
/// were drawn (§6.3, last sentence).
pub const MIN_SAMPLES_FOR_CLT: u32 = 30;

/// Default significance level (`α = 0.01`, Def. 10).
pub const DEFAULT_ALPHA: f64 = 0.01;

/// A two-sided confidence interval `[lower, upper] ⊆ [0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
}

impl ConfidenceInterval {
    /// The degenerate interval `[p, p]` of an exactly known probability.
    pub fn exact(p: f64) -> Self {
        ConfidenceInterval { lower: p, upper: p }
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Returns `true` if the interval contains `p`.
    pub fn contains(&self, p: f64) -> bool {
        self.lower <= p && p <= self.upper
    }
}

/// Quantile function (inverse CDF) of the standard normal distribution.
///
/// Peter Acklam's rational approximation; absolute error below `1.15e-9`,
/// far finer than any sampling noise this crate deals with.
#[allow(clippy::excessive_precision)] // Acklam's published constants
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The `z` value of Def. 10: the `100·(1 − α/2)` percentile of the standard
/// normal distribution.
pub fn z_for_alpha(alpha: f64) -> f64 {
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "alpha must be in (0,1), got {alpha}"
    );
    normal_quantile(1.0 - 0.5 * alpha)
}

/// Wald (CLT) interval of Def. 10 with the corrected `1/√S` factor:
/// `p̂ ± z·sqrt(p̂(1−p̂)/S)`, clamped to `[0, 1]`.
pub fn wald_interval(successes: u32, samples: u32, alpha: f64) -> ConfidenceInterval {
    assert!(samples > 0, "need at least one sample");
    assert!(successes <= samples);
    let s = samples as f64;
    let p_hat = successes as f64 / s;
    let half = z_for_alpha(alpha) * (p_hat * (1.0 - p_hat) / s).sqrt();
    ConfidenceInterval {
        lower: (p_hat - half).max(0.0),
        upper: (p_hat + half).min(1.0),
    }
}

/// Wilson score interval: better coverage than Wald for extreme `p̂`,
/// in particular non-degenerate at `p̂ ∈ {0, 1}`.
pub fn wilson_interval(successes: u32, samples: u32, alpha: f64) -> ConfidenceInterval {
    assert!(samples > 0, "need at least one sample");
    assert!(successes <= samples);
    let n = samples as f64;
    let p_hat = successes as f64 / n;
    let z = z_for_alpha(alpha);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p_hat + z2 / (2.0 * n)) / denom;
    let half = z * (p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ConfidenceInterval {
        lower: (centre - half).max(0.0),
        upper: (centre + half).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_known_values() {
        // Classic table values.
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-5);
        assert!((normal_quantile(0.995) - 2.575_829).abs() < 1e-5);
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-5);
    }

    #[test]
    fn quantile_symmetric() {
        for p in [0.001, 0.01, 0.1, 0.3] {
            let lo = normal_quantile(p);
            let hi = normal_quantile(1.0 - p);
            assert!((lo + hi).abs() < 1e-7, "asymmetric at {p}");
        }
    }

    #[test]
    fn z_for_default_alpha() {
        // α = 0.01 → 99.5th percentile ≈ 2.5758.
        assert!((z_for_alpha(DEFAULT_ALPHA) - 2.575_829).abs() < 1e-4);
    }

    #[test]
    fn wald_interval_contains_p_hat_and_clamps() {
        let ci = wald_interval(50, 100, 0.05);
        assert!(ci.contains(0.5));
        assert!(ci.lower > 0.3 && ci.upper < 0.7);
        let ci = wald_interval(0, 100, 0.05);
        assert_eq!(ci.lower, 0.0);
        let ci = wald_interval(100, 100, 0.05);
        assert_eq!(ci.upper, 1.0);
    }

    #[test]
    fn wald_width_shrinks_with_samples() {
        let w100 = wald_interval(50, 100, 0.01).width();
        let w10000 = wald_interval(5000, 10000, 0.01).width();
        assert!(w10000 < w100 / 5.0, "width must shrink ~1/sqrt(S)");
    }

    #[test]
    fn wald_degenerate_cases_stay_clamped_and_contain_p_hat() {
        // 0 successes, all successes, and single-sample runs across several
        // significance levels: the interval must stay inside [0, 1] and
        // always contain the point estimate.
        let cases = [
            (0u32, 1u32),
            (1, 1),
            (0, 30),
            (30, 30),
            (0, 100_000),
            (100_000, 100_000),
            (1, 2),
        ];
        for (s, n) in cases {
            let p_hat = s as f64 / n as f64;
            for alpha in [0.001, 0.01, 0.05, 0.2] {
                let wald = wald_interval(s, n, alpha);
                assert!(wald.contains(p_hat), "wald ({s},{n},{alpha}) misses p̂");
                // Wilson's centre is shrunk toward 1/2, so at p̂ ∈ {0, 1} its
                // endpoint equals p̂ only in real arithmetic — allow rounding.
                let wilson = wilson_interval(s, n, alpha);
                assert!(
                    wilson.lower - 1e-12 <= p_hat && p_hat <= wilson.upper + 1e-12,
                    "wilson ({s},{n},{alpha}) misses p̂"
                );
                for ci in [wald, wilson] {
                    assert!(ci.lower >= 0.0, "({s},{n},{alpha}): lower {}", ci.lower);
                    assert!(ci.upper <= 1.0, "({s},{n},{alpha}): upper {}", ci.upper);
                    assert!(ci.lower <= ci.upper, "({s},{n},{alpha}) inverted");
                }
            }
        }
        // At p̂ ∈ {0, 1} the Wald width collapses to a point — the known
        // pathology Wilson exists to avoid.
        assert_eq!(wald_interval(0, 50, 0.05).width(), 0.0);
        assert_eq!(wald_interval(50, 50, 0.05).width(), 0.0);
        // One sample: still clamped, still a valid (degenerate) interval.
        let one = wald_interval(1, 1, 0.01);
        assert_eq!((one.lower, one.upper), (1.0, 1.0));
    }

    #[test]
    fn wald_empirical_coverage_on_seeded_bernoulli_stream() {
        use crate::rng::SeedSequence;
        use rand::Rng;
        // 400 independent repetitions of n=200 Bernoulli(0.3) draws; the
        // nominal 95% Wald interval must cover the true p close to its
        // nominal rate (the stream is seeded, so this never flakes).
        let (p_true, alpha, n, reps) = (0.3, 0.05, 200u32, 400u64);
        let seq = SeedSequence::new(0x5EED_C0DE);
        let mut covered = 0u32;
        for rep in 0..reps {
            let mut rng = seq.rng(rep);
            let successes = (0..n).filter(|_| rng.gen::<f64>() < p_true).count() as u32;
            if wald_interval(successes, n, alpha).contains(p_true) {
                covered += 1;
            }
        }
        let coverage = covered as f64 / reps as f64;
        assert!(
            (0.90..=0.995).contains(&coverage),
            "empirical coverage {coverage} too far from nominal 0.95"
        );
    }

    #[test]
    fn wilson_nondegenerate_at_extremes() {
        let ci = wilson_interval(0, 100, 0.05);
        assert_eq!(ci.lower, 0.0);
        assert!(ci.upper > 0.0, "Wilson upper must stay positive at p̂=0");
        let ci = wilson_interval(100, 100, 0.05);
        assert!(ci.lower < 1.0);
        assert_eq!(ci.upper, 1.0);
    }

    #[test]
    fn wilson_close_to_wald_in_the_middle() {
        let a = wald_interval(500, 1000, 0.05);
        let b = wilson_interval(500, 1000, 0.05);
        assert!((a.lower - b.lower).abs() < 0.01);
        assert!((a.upper - b.upper).abs() < 0.01);
    }

    #[test]
    fn exact_interval_has_zero_width() {
        let ci = ConfidenceInterval::exact(0.37);
        assert_eq!(ci.width(), 0.0);
        assert!(ci.contains(0.37));
        assert!(!ci.contains(0.38));
    }

    #[test]
    #[should_panic(expected = "quantile requires p in (0,1)")]
    fn quantile_rejects_bad_input() {
        normal_quantile(1.0);
    }
}
