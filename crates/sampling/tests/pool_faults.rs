//! Chaos tests for the worker pool's fault sites and the worker-slot
//! respawn path. Compiled only with `--features faults`; every test arms
//! the process-global registry, so they serialize on a gate and this file
//! stays a dedicated test binary (lib unit tests never see an armed plan).

#![cfg(feature = "faults")]

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};

use flowmax_faults::{self as faults, FailPlan};
use flowmax_sampling::WorkerPool;

static GATE: Mutex<()> = Mutex::new(());

/// Arms `plan` for the duration of the returned guard, then disarms —
/// even when the test body panics through it.
struct Armed(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

fn arm(plan: FailPlan) -> Armed {
    let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    faults::install(plan);
    Armed(gate)
}

impl Drop for Armed {
    fn drop(&mut self) {
        faults::clear();
    }
}

fn ranges(chunks: usize, per: usize) -> Vec<Range<usize>> {
    (0..chunks).map(|j| j * per..(j + 1) * per).collect()
}

#[test]
fn dispatch_fault_fails_the_job_before_any_task_is_sent() {
    let _armed = arm(FailPlan::new(5).fail_key_nth("pool/dispatch", 2, &[0]));
    let pool = WorkerPool::new(3);
    let result = catch_unwind(AssertUnwindSafe(|| pool.run(ranges(4, 1), |j, _| j)));
    let payload = result.expect_err("the dispatch fault must surface");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        faults::is_fault_panic(&message),
        "expected a tagged fault panic, got: {message}"
    );
    // Nothing was dispatched, so the pool is untouched and the next job
    // runs normally.
    let out = pool.run(ranges(4, 1), |j, _| j);
    assert_eq!(out, vec![0, 1, 2, 3]);
    assert_eq!(pool.restarts(), 0);
}

#[test]
fn dead_worker_slot_is_respawned_and_serves_later_jobs() {
    // Kill slot 1 (which runs chunk 2) on the first task it receives.
    let _armed = arm(FailPlan::new(7).fail_key_nth("pool/worker", 1, &[0]));
    let pool = WorkerPool::new(3);

    let result = catch_unwind(AssertUnwindSafe(|| pool.run(ranges(4, 1), |j, _| j)));
    let payload = result.expect_err("the lost chunk must fail the job");
    let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert!(
        message.contains("died before running its chunk"),
        "expected the synthesized lost-chunk panic, got: {message}"
    );

    // The next dispatch to the dead slot discovers the disconnect,
    // respawns the thread, and the job completes bit-identically to a
    // healthy pool.
    let out = pool.run(ranges(4, 1), |j, _| j + 10);
    assert_eq!(out, vec![10, 11, 12, 13]);
    assert_eq!(pool.restarts(), 1, "exactly one slot respawn");
    assert_eq!(pool.width(), 3, "width unchanged by the respawn");

    // And it stays serviceable across further jobs without respawning
    // again (the nth schedule targeted only the slot's first arrival).
    for round in 0..3 {
        let out = pool.run(ranges(4, 2), move |j, _| j * 100 + round);
        assert_eq!(out.len(), 4);
    }
    assert_eq!(pool.restarts(), 1);
}

#[test]
fn join_fault_surfaces_after_all_chunks_reported() {
    let _armed = arm(FailPlan::new(9).fail_nth("pool/join", &[0]));
    let pool = WorkerPool::new(2);
    let result = catch_unwind(AssertUnwindSafe(|| pool.run(ranges(3, 1), |j, _| j)));
    assert!(result.is_err());
    // All workers had already reported when the join fault fired, so the
    // pool is fully consistent afterwards.
    let out = pool.run(ranges(3, 1), |j, _| j);
    assert_eq!(out, vec![0, 1, 2]);
    assert_eq!(pool.restarts(), 0);
}

#[test]
fn sampling_batch_fault_is_contained_like_a_real_batch_crash() {
    use flowmax_graph::{EdgeSubset, GraphBuilder, Probability, VertexId, Weight};
    use flowmax_sampling::{ParallelEstimator, SeedSequence};

    // A 40-vertex ring with chords, every edge p=0.5: enough worlds and
    // edges for several sampled blocks.
    let mut b = GraphBuilder::new();
    b.add_vertices(40, Weight::ONE);
    let half = Probability::new(0.5).expect("0.5 is a probability");
    for v in 0..40u32 {
        b.add_edge(VertexId(v), VertexId((v + 1) % 40), half)
            .expect("ring edge");
        if v % 3 == 0 {
            b.add_edge(VertexId(v), VertexId((v + 7) % 40), half)
                .expect("chord edge");
        }
    }
    let graph = b.build();
    let active = EdgeSubset::full(&graph);
    let query = VertexId(3);
    let seq = SeedSequence::new(42);

    // Baseline estimate with no faults armed.
    {
        let _quiet = arm(FailPlan::new(0));
        let est = ParallelEstimator::new(2);
        let clean = est.sample_reachability(&graph, &active, query, 512, &seq);

        // Fault the second sampled block: the injected panic unwinds
        // through the pool's task containment and fails the estimation.
        faults::install(FailPlan::new(3).fail_key_nth("sampling/batch", 1, &[0]));
        let result = catch_unwind(AssertUnwindSafe(|| {
            est.sample_reachability(&graph, &active, query, 512, &seq)
        }));
        assert!(result.is_err(), "the faulted batch must fail the job");

        // Disarmed, the same estimation replays bit-identically.
        faults::clear();
        let replay = est.sample_reachability(&graph, &active, query, 512, &seq);
        assert_eq!(clean, replay);
    }
}
