//! `flowmax-faults` — a seeded, deterministic failpoint registry.
//!
//! The serving stack's failure paths (worker panics, admission overload,
//! batch-loop crashes, connection drops) are exercised by *injecting*
//! failures at named sites threaded through the pool, the sampling batch
//! loop, the server's admission/coalescing path, and the daemon's
//! connection handler. A [`FailPlan`] decides — as a pure function of the
//! plan seed, the site name, the caller-supplied key, and the per-site hit
//! ordinal — whether a given arrival at a site fails. No clocks, no
//! environment reads, no randomness beyond the seeded hash: the same plan
//! against the same execution produces the same injected failures.
//!
//! Two call forms:
//!
//! - [`failpoint`] / [`failpoint_keyed`] panic with a
//!   [`PANIC_PREFIX`]-tagged message when the plan triggers. Panics surface
//!   through the stack's existing `catch_unwind` seams (the pool's task
//!   isolation, the session's batch guard), so an injected panic exercises
//!   exactly the path a real one would take.
//! - [`should_fail`] / [`should_fail_keyed`] merely report the decision,
//!   for sites whose failure mode is an error return (e.g. admission
//!   rejection) rather than a panic.
//!
//! The `key` is the caller's stable identity for the arrival — a chunk
//! index in the pool, a block index in the sampling loop, an admission
//! sequence number — so concurrent arrivals keep deterministic decisions
//! regardless of thread interleaving. Arrivals at the same `(site, key)`
//! are further numbered by a per-`(site, key)` ordinal, so a schedule can
//! target "the first task slot 2 receives" precisely.
//!
//! Unless the `enabled` cargo feature is on, every function here compiles
//! to an inline no-op and the registry cannot be armed: production builds
//! carry zero fault machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prefix of every panic message raised by a triggered failpoint.
pub const PANIC_PREFIX: &str = "flowmax-fault: ";

/// True when `message` comes from a triggered failpoint, for test
/// assertions that want to distinguish injected panics from real bugs.
pub fn is_fault_panic(message: &str) -> bool {
    message.starts_with(PANIC_PREFIX)
}

/// How a scheduled site decides whether a given arrival fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trigger {
    /// Fail the arrivals whose per-`(site, key)` ordinal (0-based) is in
    /// the set.
    Nth(Vec<u64>),
    /// Fail roughly one arrival in `rate`, decided by a seeded hash of
    /// `(seed, site, key, ordinal)` — deterministic, but spread across the
    /// arrival stream instead of pinned to fixed ordinals.
    Rate(u64),
    /// Fail every arrival.
    Always,
}

/// One scheduled site: a name, an optional key filter, and a trigger.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Site {
    name: String,
    /// `None` matches every key; `Some(k)` only arrivals with key `k`.
    key: Option<u64>,
    trigger: Trigger,
}

/// A seeded schedule of failures, keyed by site name.
///
/// Build one with the `fail_*` combinators or parse the daemon's
/// `--fault-plan` syntax with [`FailPlan::parse`], then arm it with
/// [`install`]. Decisions are a pure function of
/// `(seed, site, key, ordinal)`; the plan holds no mutable state itself.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FailPlan {
    seed: u64,
    sites: Vec<Site>,
}

impl FailPlan {
    /// An empty plan (no site ever fails) under `seed`.
    pub fn new(seed: u64) -> Self {
        FailPlan {
            seed,
            sites: Vec::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when no site is scheduled.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Schedules `site` to fail at the given per-key arrival ordinals
    /// (0-based), for every key.
    pub fn fail_nth(mut self, site: &str, ordinals: &[u64]) -> Self {
        self.sites.push(Site {
            name: site.to_string(),
            key: None,
            trigger: Trigger::Nth(ordinals.to_vec()),
        });
        self
    }

    /// Schedules `site` to fail at the given arrival ordinals, but only
    /// for arrivals carrying exactly `key`.
    pub fn fail_key_nth(mut self, site: &str, key: u64, ordinals: &[u64]) -> Self {
        self.sites.push(Site {
            name: site.to_string(),
            key: Some(key),
            trigger: Trigger::Nth(ordinals.to_vec()),
        });
        self
    }

    /// Schedules `site` to fail roughly one arrival in `rate` (clamped to
    /// at least 1), decided by the seeded hash.
    pub fn fail_rate(mut self, site: &str, rate: u64) -> Self {
        self.sites.push(Site {
            name: site.to_string(),
            key: None,
            trigger: Trigger::Rate(rate.max(1)),
        });
        self
    }

    /// Schedules `site` to fail every arrival.
    pub fn fail_always(mut self, site: &str) -> Self {
        self.sites.push(Site {
            name: site.to_string(),
            key: None,
            trigger: Trigger::Always,
        });
        self
    }

    /// Parses the daemon's `--fault-plan` syntax: `;`-separated entries of
    /// the form `site=always`, `site=nth:0,2,5`, `site=rate:16`, with an
    /// optional `@key` suffix on the site name (`pool/worker@2=nth:0`).
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = FailPlan::new(seed);
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (name_part, trigger_part) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry `{entry}` is missing `=`"))?;
            let (name, key) = match name_part.split_once('@') {
                Some((name, key)) => {
                    let key = key
                        .parse::<u64>()
                        .map_err(|_| format!("fault key `{key}` is not a u64 in `{entry}`"))?;
                    (name.trim(), Some(key))
                }
                None => (name_part.trim(), None),
            };
            if name.is_empty() {
                return Err(format!("fault entry `{entry}` has an empty site name"));
            }
            let trigger = if trigger_part == "always" {
                Trigger::Always
            } else if let Some(rate) = trigger_part.strip_prefix("rate:") {
                let rate = rate
                    .parse::<u64>()
                    .map_err(|_| format!("fault rate `{rate}` is not a u64 in `{entry}`"))?;
                Trigger::Rate(rate.max(1))
            } else if let Some(list) = trigger_part.strip_prefix("nth:") {
                let mut ordinals = Vec::new();
                for part in list.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    ordinals.push(part.parse::<u64>().map_err(|_| {
                        format!("fault ordinal `{part}` is not a u64 in `{entry}`")
                    })?);
                }
                if ordinals.is_empty() {
                    return Err(format!("fault entry `{entry}` lists no ordinals"));
                }
                Trigger::Nth(ordinals)
            } else {
                return Err(format!(
                    "fault trigger `{trigger_part}` is not `always`, `nth:...`, or `rate:...`"
                ));
            };
            plan.sites.push(Site {
                name: name.to_string(),
                key,
                trigger,
            });
        }
        Ok(plan)
    }

    /// The pure decision: does arrival number `ordinal` (0-based, counted
    /// per `(site, key)`) at `site` with `key` fail under this plan?
    ///
    /// The first scheduled entry whose name and key filter match wins;
    /// unscheduled sites never fail.
    pub fn decides_failure(&self, site: &str, key: u64, ordinal: u64) -> bool {
        for entry in &self.sites {
            if entry.name != site {
                continue;
            }
            if let Some(wanted) = entry.key {
                if wanted != key {
                    continue;
                }
            }
            return match &entry.trigger {
                Trigger::Nth(ordinals) => ordinals.contains(&ordinal),
                Trigger::Rate(rate) => {
                    let mixed = splitmix64(splitmix64(self.seed ^ fnv1a(site)) ^ key);
                    splitmix64(mixed ^ ordinal).is_multiple_of(*rate)
                }
                Trigger::Always => true,
            };
        }
        false
    }

    /// True when any scheduled entry names `site`, regardless of key or
    /// trigger — lets hot paths skip per-arrival bookkeeping for sites the
    /// plan never mentions.
    pub fn mentions(&self, site: &str) -> bool {
        self.sites.iter().any(|entry| entry.name == site)
    }
}

/// SplitMix64: the same finalizer the sampling substrate uses for seed
/// derivation — a bijective avalanche, so distinct inputs cannot collide
/// into systematically correlated decisions.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the site name, to fold the site identity into the seed.
fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(feature = "enabled")]
mod armed {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, PoisonError};

    use crate::FailPlan;

    /// Fast-path gate: checked with one relaxed load before any locking,
    /// so unarmed `--features faults` builds stay cheap at every site.
    static ARMED: AtomicBool = AtomicBool::new(false);

    struct Registry {
        plan: FailPlan,
        /// Per-`(site index, key)` arrival counters. A `BTreeMap` (not a
        /// hash map) so the registry has no iteration-order hazards.
        counters: BTreeMap<(usize, u64), u64>,
    }

    static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

    fn lock_registry() -> std::sync::MutexGuard<'static, Option<Registry>> {
        // A failpoint panics *after* releasing the lock, but a panicking
        // test elsewhere could still poison it; the registry is always
        // internally consistent, so recover rather than cascade.
        REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms `plan`: subsequent failpoint arrivals are decided by it, with
    /// all arrival counters starting from zero.
    pub fn install(plan: FailPlan) {
        let mut guard = lock_registry();
        *guard = Some(Registry {
            plan,
            counters: BTreeMap::new(),
        });
        ARMED.store(true, Ordering::Release);
    }

    /// Disarms the registry; every site stops failing immediately.
    pub fn clear() {
        let mut guard = lock_registry();
        ARMED.store(false, Ordering::Release);
        *guard = None;
    }

    /// True when a plan is armed.
    pub fn is_armed() -> bool {
        ARMED.load(Ordering::Acquire)
    }

    /// The armed decision for one arrival at `(site, key)`: consumes the
    /// next per-`(site, key)` ordinal and evaluates the plan.
    pub fn should_fail_keyed(site: &str, key: u64) -> bool {
        if !ARMED.load(Ordering::Acquire) {
            return false;
        }
        let mut guard = lock_registry();
        let Some(registry) = guard.as_mut() else {
            return false;
        };
        let Some(site_index) = registry
            .plan
            .sites
            .iter()
            .position(|entry| entry.name == site)
        else {
            return false;
        };
        let ordinal = registry
            .counters
            .entry((site_index, key))
            .and_modify(|n| *n += 1)
            .or_insert(0);
        let ordinal = *ordinal;
        registry.plan.decides_failure(site, key, ordinal)
    }
}

#[cfg(feature = "enabled")]
pub use armed::{clear, install, is_armed, should_fail_keyed};

/// Arms `plan` (no-op without the `enabled` feature).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn install(_plan: FailPlan) {}

/// Disarms the registry (no-op without the `enabled` feature).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn clear() {}

/// True when a plan is armed (always false without the `enabled` feature).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn is_armed() -> bool {
    false
}

/// Decides one keyed arrival at `site` (always false without the
/// `enabled` feature).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn should_fail_keyed(_site: &str, _key: u64) -> bool {
    false
}

/// [`should_fail_keyed`] with the default key 0, for sites with a single
/// arrival stream.
#[inline]
pub fn should_fail(site: &str) -> bool {
    should_fail_keyed(site, 0)
}

/// Panics with a [`PANIC_PREFIX`]-tagged message when the armed plan
/// triggers for this keyed arrival; otherwise returns normally. Compiles
/// to an inline no-op without the `enabled` feature.
#[inline]
pub fn failpoint_keyed(site: &str, key: u64) {
    if should_fail_keyed(site, key) {
        panic!("{PANIC_PREFIX}{site} (key {key})");
    }
}

/// [`failpoint_keyed`] with the default key 0.
#[inline]
pub fn failpoint(site: &str) {
    if should_fail_keyed(site, 0) {
        panic!("{PANIC_PREFIX}{site}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscheduled_sites_never_fail() {
        let plan = FailPlan::new(7).fail_always("pool/worker");
        assert!(!plan.decides_failure("serve/admit", 0, 0));
        assert!(plan.decides_failure("pool/worker", 3, 9));
        assert!(plan.mentions("pool/worker"));
        assert!(!plan.mentions("serve/admit"));
    }

    #[test]
    fn nth_targets_exact_ordinals() {
        let plan = FailPlan::new(1).fail_nth("s", &[0, 2]);
        assert!(plan.decides_failure("s", 5, 0));
        assert!(!plan.decides_failure("s", 5, 1));
        assert!(plan.decides_failure("s", 5, 2));
        assert!(!plan.decides_failure("s", 5, 3));
    }

    #[test]
    fn key_filter_restricts_the_schedule() {
        let plan = FailPlan::new(1).fail_key_nth("s", 2, &[0]);
        assert!(plan.decides_failure("s", 2, 0));
        assert!(!plan.decides_failure("s", 3, 0));
        assert!(!plan.decides_failure("s", 2, 1));
    }

    #[test]
    fn rate_decisions_are_seed_deterministic_and_seed_sensitive() {
        let a = FailPlan::new(11).fail_rate("s", 4);
        let b = FailPlan::new(11).fail_rate("s", 4);
        let c = FailPlan::new(12).fail_rate("s", 4);
        let decide = |plan: &FailPlan| -> Vec<bool> {
            (0..64)
                .map(|i| plan.decides_failure("s", i / 8, i % 8))
                .collect()
        };
        assert_eq!(decide(&a), decide(&b), "same seed, same decisions");
        assert_ne!(decide(&a), decide(&c), "different seed, different plan");
        let hits = decide(&a).iter().filter(|&&f| f).count();
        assert!(
            hits > 0 && hits < 64,
            "rate 4 fails some but not all: {hits}"
        );
    }

    #[test]
    fn parse_round_trips_the_combinators() {
        let parsed =
            FailPlan::parse("pool/worker@2=nth:0; serve/admit=rate:16; conn=always", 9).unwrap();
        let built = FailPlan::new(9)
            .fail_key_nth("pool/worker", 2, &[0])
            .fail_rate("serve/admit", 16)
            .fail_always("conn");
        assert_eq!(parsed, built);
        assert!(FailPlan::parse("", 9).unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        assert!(FailPlan::parse("noequals", 0).is_err());
        assert!(FailPlan::parse("s=nope", 0).is_err());
        assert!(FailPlan::parse("s=nth:", 0).is_err());
        assert!(FailPlan::parse("s@x=always", 0).is_err());
        assert!(FailPlan::parse("=always", 0).is_err());
    }

    #[test]
    fn fault_panics_are_recognizable() {
        assert!(is_fault_panic("flowmax-fault: pool/worker (key 2)"));
        assert!(!is_fault_panic("index out of bounds"));
    }

    #[cfg(feature = "enabled")]
    mod armed {
        use super::*;
        use std::sync::Mutex;

        /// The registry is process-global; serialize the tests that arm it.
        static GATE: Mutex<()> = Mutex::new(());

        #[test]
        fn install_arms_and_counts_per_site_and_key() {
            let _gate = GATE
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            install(FailPlan::new(3).fail_nth("s", &[1]));
            assert!(is_armed());
            assert!(!should_fail_keyed("s", 7), "ordinal 0 spared");
            assert!(should_fail_keyed("s", 7), "ordinal 1 fails");
            assert!(!should_fail_keyed("s", 7), "ordinal 2 spared");
            assert!(!should_fail_keyed("s", 8), "other keys count separately");
            assert!(should_fail_keyed("s", 8));
            assert!(!should_fail("other"), "unscheduled sites never fail");
            clear();
            assert!(!is_armed());
            assert!(!should_fail_keyed("s", 7), "disarmed registry is inert");
        }

        #[test]
        fn reinstall_resets_counters() {
            let _gate = GATE
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            install(FailPlan::new(3).fail_nth("s", &[0]));
            assert!(should_fail("s"));
            assert!(!should_fail("s"));
            install(FailPlan::new(3).fail_nth("s", &[0]));
            assert!(should_fail("s"), "fresh install starts ordinals at zero");
            clear();
        }

        #[test]
        #[should_panic(expected = "flowmax-fault: boom")]
        fn triggered_failpoint_panics_with_the_tagged_message() {
            let _gate = GATE
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            install(FailPlan::new(0).fail_always("boom"));
            // Disarm before panicking so sibling tests are unaffected even
            // though the panic unwinds past the guard.
            struct Disarm;
            impl Drop for Disarm {
                fn drop(&mut self) {
                    clear();
                }
            }
            let _disarm = Disarm;
            failpoint("boom");
        }
    }
}
