//! Criterion: one full greedy selection per algorithm/heuristic stack
//! (the end-to-end cost the paper's runtime plots report).

use criterion::{criterion_group, criterion_main, Criterion};
use flowmax_core::{Algorithm, Session};
use flowmax_datasets::{suggest_query, ErdosConfig, PartitionedConfig};

fn bench_selection(c: &mut Criterion) {
    let locality = PartitionedConfig::paper(1000, 6).generate(3);
    let no_locality = ErdosConfig::paper(1000, 10.0).generate(3);

    for (tag, graph) in [("locality", &locality), ("no_locality", &no_locality)] {
        let q = suggest_query(graph);
        // The session is reused across iterations, as a serving loop would.
        let session = Session::new(graph).with_seed(7);
        let mut group = c.benchmark_group(format!("selection_{tag}"));
        group.sample_size(10);
        for alg in [
            Algorithm::Dijkstra,
            Algorithm::Ft,
            Algorithm::FtM,
            Algorithm::FtMCi,
            Algorithm::FtMDs,
            Algorithm::FtMCiDs,
        ] {
            group.bench_function(alg.name(), |b| {
                b.iter(|| {
                    session
                        .query(q)
                        .expect("q is a graph vertex")
                        .algorithm(alg)
                        .budget(25)
                        .samples(300)
                        .run()
                        .expect("valid query")
                        .flow
                })
            });
        }
        // Naive at a budget it can afford in a benchmark loop.
        group.bench_function("Naive_k10", |b| {
            b.iter(|| {
                session
                    .query(q)
                    .expect("q is a graph vertex")
                    .algorithm(Algorithm::Naive)
                    .budget(10)
                    .samples(100)
                    .run()
                    .expect("valid query")
                    .flow
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
