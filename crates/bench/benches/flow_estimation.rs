//! Criterion: expected-flow estimation — F-tree (component-wise, §5.3)
//! versus whole-graph Monte-Carlo (Naive, [7][22]) at equal sample counts,
//! plus the analytic re-evaluation path.

use criterion::{criterion_group, criterion_main, Criterion};
use flowmax_core::{EstimatorConfig, FTree, GreedyConfig, SamplingProvider};
use flowmax_datasets::{suggest_query, PartitionedConfig};
use flowmax_graph::{EdgeId, EdgeSubset};
use flowmax_sampling::{sample_flow, SeedSequence};

fn bench_flow_estimation(c: &mut Criterion) {
    let graph = PartitionedConfig::paper(2000, 6).generate(11);
    let q = suggest_query(&graph);
    // A realistic selection (with cycles) chosen by the greedy itself.
    let mut cfg = GreedyConfig::ft(60, 5).with_memo();
    cfg.samples = 300;
    let selection = flowmax_core::greedy_select(&graph, q, &cfg).selected;
    let subset = EdgeSubset::from_edges(graph.edge_count(), selection.iter().copied());

    let mut group = c.benchmark_group("flow_estimation");
    group.sample_size(20);

    for samples in [200u32, 1000] {
        group.bench_function(format!("whole_graph_{samples}"), |b| {
            let mut rng = SeedSequence::new(1).rng(0);
            b.iter(|| sample_flow(&graph, &subset, q, false, samples, &mut rng).mean())
        });
        group.bench_function(format!("ftree_build_and_estimate_{samples}"), |b| {
            b.iter(|| {
                let mut provider = SamplingProvider::new(EstimatorConfig::monte_carlo(samples), 2);
                let mut tree = FTree::new(&graph, q);
                let mut remaining: Vec<EdgeId> = selection.clone();
                while !remaining.is_empty() {
                    let pos = remaining.iter().position(|&e| {
                        let (a, bb) = graph.endpoints(e);
                        tree.contains_vertex(a) || tree.contains_vertex(bb)
                    });
                    let Some(pos) = pos else { break };
                    let e = remaining.remove(pos);
                    tree.insert_edge(&graph, e, &mut provider).unwrap();
                }
                tree.expected_flow(&graph, false)
            })
        });
    }

    // Re-evaluating an already-built tree is the common path in the greedy
    // loop: pure analytic aggregation.
    let mut provider = SamplingProvider::new(EstimatorConfig::monte_carlo(1000), 3);
    let mut tree = FTree::new(&graph, q);
    let mut remaining = selection.clone();
    while !remaining.is_empty() {
        let pos = remaining.iter().position(|&e| {
            let (a, bb) = graph.endpoints(e);
            tree.contains_vertex(a) || tree.contains_vertex(bb)
        });
        let Some(pos) = pos else { break };
        let e = remaining.remove(pos);
        tree.insert_edge(&graph, e, &mut provider).unwrap();
    }
    group.bench_function("ftree_reevaluate_only", |b| {
        b.iter(|| tree.expected_flow(&graph, false))
    });

    group.finish();
}

criterion_group!(benches, bench_flow_estimation);
criterion_main!(benches);
