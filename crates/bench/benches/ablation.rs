//! Criterion: ablations of the design choices DESIGN.md calls out —
//! memoization on/off, exact vs sampled small components, CI race budgets,
//! and the DS penalty parameter.

use criterion::{criterion_group, criterion_main, Criterion};
use flowmax_core::{greedy_select, GreedyConfig};
use flowmax_datasets::{suggest_query, PartitionedConfig};

fn bench_ablation(c: &mut Criterion) {
    let graph = PartitionedConfig::paper(1000, 6).generate(13);
    let q = suggest_query(&graph);
    let base = |seed| {
        let mut g = GreedyConfig::ft(25, seed);
        g.samples = 300;
        g
    };

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    group.bench_function("memo_off", |b| {
        b.iter(|| greedy_select(&graph, q, &base(1)).final_flow)
    });
    group.bench_function("memo_on", |b| {
        b.iter(|| greedy_select(&graph, q, &base(1).with_memo()).final_flow)
    });

    // Exact enumeration for small components instead of sampling them.
    group.bench_function("exact_small_components", |b| {
        b.iter(|| {
            let mut cfg = base(1).with_memo();
            cfg.exact_edge_cap = 12;
            greedy_select(&graph, q, &cfg).final_flow
        })
    });

    for c_param in [1.2f64, 2.0, 16.0] {
        group.bench_function(format!("ds_penalty_c_{c_param}"), |b| {
            b.iter(|| {
                let mut cfg = base(1).with_memo().with_ds();
                cfg.ds_penalty_c = c_param;
                greedy_select(&graph, q, &cfg).final_flow
            })
        });
    }

    group.bench_function("ci_race", |b| {
        b.iter(|| greedy_select(&graph, q, &base(1).with_memo().with_ci()).final_flow)
    });

    // The §2 alternative the paper rejected: analytic reliability bounds
    // instead of sampling. Fast — but the tests show the interval is too
    // loose to replace per-component estimation.
    {
        use flowmax_graph::{reliability_bounds, EdgeSubset};
        let selection = greedy_select(&graph, q, &base(1).with_memo()).selected;
        let subset = EdgeSubset::from_edges(graph.edge_count(), selection.iter().copied());
        group.bench_function("analytic_reliability_bounds", |b| {
            b.iter(|| reliability_bounds(&graph, &subset, q).lower.len())
        });
    }

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
