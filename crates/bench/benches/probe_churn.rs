//! Criterion micro-benchmark: per-candidate structural probe cost, journal
//! engine vs the pinned clone-based reference.
//!
//! The workload is the diamond-chain of `flowmax_bench::probe_churn`: a
//! fully selected chain of small bi-connected components with one
//! cross-link chord per link. Probing a chord is a Case IV structural
//! insertion across two adjacent components — the historical engine clones
//! the whole tree per probe, the journal applies and rolls back touching
//! only those two components. Both benches exercise the *plan* phase (the
//! structural work); estimation cost is identical between engines and is
//! excluded.

use criterion::{criterion_group, criterion_main, Criterion};
use flowmax_bench::probe_churn::diamond_chain;
use flowmax_core::{EstimatorConfig, FTree, SamplingProvider};
use flowmax_graph::{EdgeId, VertexId};

fn bench_probe_churn(c: &mut Criterion) {
    let links = 60usize;
    let graph = diamond_chain(links);
    let mut provider = SamplingProvider::new(EstimatorConfig::monte_carlo(200), 5);
    let mut tree = FTree::new(&graph, VertexId(0));
    // Select every diamond edge (ids 0..4 per link block of 4 or 5), leaving
    // the chords as perpetual structural candidates.
    let chords: Vec<EdgeId> = graph
        .edge_ids()
        .filter(|&e| graph.probability(e).value() < 0.5)
        .collect();
    for e in graph.edge_ids() {
        if graph.probability(e).value() >= 0.5 {
            tree.insert_edge(&graph, e, &mut provider).unwrap();
        }
    }
    assert_eq!(tree.edge_count(), 4 * links);
    let base = tree.expected_flow(&graph, false);

    let mut group = c.benchmark_group("probe_churn");
    group.sample_size(20);
    // One full chord sweep per iteration — the per-greedy-iteration shape.
    group.bench_function("plan_sweep_journal", |b| {
        b.iter(|| {
            for &e in &chords {
                let plan = tree.probe_plan(&graph, e, base).unwrap();
                criterion::black_box(&plan);
            }
        })
    });
    group.bench_function("plan_sweep_cloning_reference", |b| {
        b.iter(|| {
            for &e in &chords {
                let plan = tree.probe_plan_cloning(&graph, e, base).unwrap();
                criterion::black_box(&plan);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_probe_churn);
criterion_main!(benches);
