//! Criterion micro-benchmarks: per-case F-tree insertion cost (§5.4).
//!
//! Case II (leaf) must be near-free; IIIa pays one component re-estimation;
//! IIIb/IV additionally restructure the tree.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use flowmax_core::{EstimatorConfig, FTree, SamplingProvider};
use flowmax_datasets::{suggest_query, PartitionedConfig};
use flowmax_graph::{EdgeId, ProbabilisticGraph};

/// Builds a tree with `k` leaf attachments plus *every other* chord, so that
/// cycle-forming candidates of every case remain available for probing.
fn setup(graph: &ProbabilisticGraph, k: usize) -> (FTree, SamplingProvider) {
    let q = suggest_query(graph);
    let mut tree = FTree::new(graph, q);
    let mut provider = SamplingProvider::new(EstimatorConfig::monte_carlo(1000), 7);
    // Phase 1: grow a pure tree by BFS-frontier leaf attachments, so the
    // selection forms a dense ball around Q (chords become available).
    let mut inserted = 0;
    let mut frontier = std::collections::VecDeque::from([q]);
    'grow: while let Some(v) = frontier.pop_front() {
        for (n, e) in graph.neighbors(v) {
            if inserted >= k {
                break 'grow;
            }
            if !tree.contains_vertex(n) {
                tree.insert_edge(graph, e, &mut provider).unwrap();
                frontier.push_back(n);
                inserted += 1;
            }
        }
    }
    // Phase 2: close every other internal chord, keeping the rest as
    // candidates for the cycle-case benchmarks.
    let chords: Vec<EdgeId> = graph
        .edge_ids()
        .filter(|&e| {
            if tree.selected_edges().contains(e) {
                return false;
            }
            let (a, b) = graph.endpoints(e);
            tree.contains_vertex(a) && tree.contains_vertex(b)
        })
        .collect();
    for e in chords.iter().step_by(6) {
        tree.insert_edge(graph, *e, &mut provider).unwrap();
    }
    (tree, provider)
}

/// First candidate edge whose insertion would take the wanted case, probed
/// non-destructively (journalled apply + rollback under the hood).
fn edge_for_case(
    graph: &ProbabilisticGraph,
    tree: &mut FTree,
    provider: &mut SamplingProvider,
    want: &[flowmax_core::InsertCase],
) -> Option<EdgeId> {
    let base = tree.expected_flow(graph, false);
    graph.edge_ids().collect::<Vec<_>>().into_iter().find(|&e| {
        if tree.selected_edges().contains(e) {
            return false;
        }
        let (a, b) = graph.endpoints(e);
        if !tree.contains_vertex(a) && !tree.contains_vertex(b) {
            return false;
        }
        tree.probe_edge(graph, e, base, false, 0.01, provider)
            .map(|p| want.contains(&p.case))
            .unwrap_or(false)
    })
}

fn bench_insert_cases(c: &mut Criterion) {
    let graph = PartitionedConfig::paper(2000, 6).generate(3);
    let (mut tree, mut provider) = setup(&graph, 60);

    let mut group = c.benchmark_group("ftree_insert");
    group.sample_size(30);

    use flowmax_core::InsertCase::*;
    // Case IIIb gets a dedicated workload below (a long mono chain); the
    // BFS-ball workload rarely leaves two same-mono-component candidates.
    for (label, cases) in [
        ("case_ii_leaf", &[LeafMono, LeafBi][..]),
        ("case_iiia_cycle_in_bi", &[CycleInBi][..]),
        ("case_iv_cross_component", &[CycleAcross][..]),
    ] {
        let Some(edge) = edge_for_case(&graph, &mut tree, &mut provider, cases) else {
            eprintln!("warning: no candidate for {label}, skipping");
            continue;
        };
        group.bench_function(label, |b| {
            b.iter_batched(
                || tree.clone(),
                |mut t| {
                    t.insert_edge(&graph, edge, &mut provider).unwrap();
                    t
                },
                BatchSize::SmallInput,
            )
        });
    }

    // Case IIIb on a dedicated long mono chain: a chord deep inside one
    // mono component triggers the full splitTree machinery.
    {
        use flowmax_graph::{GraphBuilder, Probability, VertexId, Weight};
        let mut gb = GraphBuilder::new();
        gb.add_vertices(64, Weight::ONE);
        for i in 0..63u32 {
            gb.add_edge(VertexId(i), VertexId(i + 1), Probability::new(0.9).unwrap())
                .unwrap();
        }
        let chord = gb
            .add_edge(VertexId(10), VertexId(50), Probability::new(0.5).unwrap())
            .unwrap();
        let chain = gb.build();
        let mut mono_tree = FTree::new(&chain, VertexId(0));
        for i in 0..63u32 {
            mono_tree
                .insert_edge(&chain, EdgeId(i), &mut provider)
                .unwrap();
        }
        group.bench_function("case_iiib_split_tree_40_vertex_cycle", |b| {
            b.iter_batched(
                || mono_tree.clone(),
                |mut t| {
                    t.insert_edge(&chain, chord, &mut provider).unwrap();
                    t
                },
                BatchSize::SmallInput,
            )
        });
    }

    // The structural clone that IIIb/IV probes pay.
    group.bench_function("tree_clone", |b| b.iter(|| tree.clone()));
    group.finish();
}

criterion_group!(benches, bench_insert_cases);
criterion_main!(benches);
