//! Criterion: the graph substrates the F-tree is built on — static
//! biconnected decomposition, union-find, spanning trees, and BFS.

use criterion::{criterion_group, criterion_main, Criterion};
use flowmax_datasets::{suggest_query, ErdosConfig};
use flowmax_graph::{
    biconnected_components, max_probability_spanning_tree_full, Bfs, EdgeSubset, UnionFind,
    VertexId,
};
use rand::Rng;

fn bench_substrates(c: &mut Criterion) {
    let graph = ErdosConfig::paper(10_000, 8.0).generate(5);
    let q = suggest_query(&graph);
    let full = EdgeSubset::full(&graph);

    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);

    group.bench_function("biconnected_components_10k", |b| {
        b.iter(|| biconnected_components(&graph, &full).blocks.len())
    });

    group.bench_function("spanning_tree_10k", |b| {
        b.iter(|| max_probability_spanning_tree_full(&graph, q).order.len())
    });

    group.bench_function("bfs_full_10k", |b| {
        let mut bfs = Bfs::new(graph.vertex_count());
        b.iter(|| bfs.run(&graph, q, |e| full.contains(e), |_| {}))
    });

    group.bench_function("union_find_10k_edges", |b| {
        let edges: Vec<(VertexId, VertexId)> = graph.edges().map(|(_, e)| e.endpoints()).collect();
        b.iter(|| {
            let mut uf = UnionFind::new(graph.vertex_count());
            for &(u, v) in &edges {
                uf.union(u, v);
            }
            uf.component_count()
        })
    });

    group.bench_function("world_sampling_10k", |b| {
        let mut rng = flowmax_sampling::SeedSequence::new(1).rng(0);
        let mut out = EdgeSubset::for_graph(&graph);
        b.iter(|| {
            flowmax_sampling::sample_world(&graph, &full, &mut rng, &mut out);
            out.len()
        })
    });

    group.bench_function("exact_enumeration_16_edges", |b| {
        let small = ErdosConfig::paper(10, 3.2).generate(9);
        let domain = EdgeSubset::full(&small);
        b.iter(|| flowmax_graph::exact_reachability(&small, &domain, VertexId(0), 24).unwrap())
    });

    let _ = rand::thread_rng().gen::<u8>(); // keep rand linked for Criterion
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
