//! Criterion: fixed-budget scalar selection vs the §6.3 candidate races.
//!
//! The tentpole comparison of the racing engine: the same greedy selection
//! run (a) probing every candidate at the full sample budget with the
//! scalar one-world-per-BFS kernel (the pre-engine baseline), (b) on the
//! bit-parallel engine, (c) through the scalar reference race, and (d)
//! through the batched racing engine (single- and multi-threaded). The
//! machine-readable counterpart is `experiments bench3` → `BENCH_3.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use flowmax_core::{greedy_select, GreedyConfig};
use flowmax_datasets::{suggest_query, ErdosConfig};
use flowmax_graph::VertexId;

fn bench_candidate_race(c: &mut Criterion) {
    let graph = ErdosConfig::paper(200, 10.0).generate(11);
    let query: VertexId = suggest_query(&graph);
    let budget = 100;
    let base = || {
        let mut cfg = GreedyConfig::ft(budget, 5).with_memo();
        cfg.samples = 1000;
        cfg.with_threads(1)
    };

    let mut group = c.benchmark_group("candidate_race");
    group.sample_size(10);

    group.bench_function("fixed_budget_scalar", |b| {
        let cfg = base().with_scalar_estimation();
        b.iter(|| greedy_select(&graph, query, &cfg).selected.len())
    });
    group.bench_function("fixed_budget_batched", |b| {
        let cfg = base();
        b.iter(|| greedy_select(&graph, query, &cfg).selected.len())
    });
    group.bench_function("scalar_race", |b| {
        let cfg = base().with_scalar_ci();
        b.iter(|| greedy_select(&graph, query, &cfg).selected.len())
    });
    for threads in [1usize, 4] {
        group.bench_function(format!("batched_race_threads{threads}"), |b| {
            let cfg = base().with_ci().with_threads(threads);
            b.iter(|| greedy_select(&graph, query, &cfg).selected.len())
        });
    }

    group.finish();
}

criterion_group!(benches, bench_candidate_race);
criterion_main!(benches);
