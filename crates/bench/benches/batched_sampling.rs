//! Criterion: scalar vs 64-lane vs wide-lane vs multi-threaded sampling.
//!
//! Measures the tentpole speedup of the bit-parallel engine: the same
//! 1024-world reachability estimation run (a) one world + one BFS at a time
//! (the scalar reference), (b) 64 worlds per lane-BFS on one thread,
//! (c) 256/512 worlds per SIMD lane block, and (d) the same batches sharded
//! across worker threads. All are statistically equivalent estimators;
//! (b)–(d) are bit-identical to each other by the engine's thread- and
//! lane-width-invariance guarantees.

use criterion::{criterion_group, criterion_main, Criterion};
use flowmax_datasets::{suggest_query, ErdosConfig};
use flowmax_graph::EdgeSubset;
use flowmax_sampling::{sample_reachability, ParallelEstimator, SeedSequence};

fn bench_batched_sampling(c: &mut Criterion) {
    let graph = ErdosConfig::paper(5_000, 8.0).generate(11);
    let query = suggest_query(&graph);
    let full = EdgeSubset::full(&graph);
    const SAMPLES: u32 = 1024;
    let seq = SeedSequence::new(7);

    let mut group = c.benchmark_group("batched_sampling");
    group.sample_size(10);

    group.bench_function("scalar_1024_worlds", |b| {
        b.iter(|| {
            let mut rng = seq.rng(0);
            sample_reachability(&graph, &full, query, SAMPLES, &mut rng).samples()
        })
    });

    for threads in [1usize, 2, 4, 8] {
        let engine = ParallelEstimator::new(threads);
        group.bench_function(format!("lanes64_threads{threads}_1024_worlds"), |b| {
            b.iter(|| {
                engine
                    .sample_reachability(&graph, &full, query, SAMPLES, &seq)
                    .samples()
            })
        });
    }

    // The wide SIMD lane blocks (256 and 512 worlds per BFS pass), single
    // thread so the kernel width is the only variable.
    for lane_words in [4usize, 8] {
        let engine = ParallelEstimator::new(1).with_lane_words(lane_words);
        let worlds = 64 * lane_words;
        group.bench_function(format!("lanes{worlds}_threads1_1024_worlds"), |b| {
            b.iter(|| {
                engine
                    .sample_reachability(&graph, &full, query, SAMPLES, &seq)
                    .samples()
            })
        });
    }

    // The component-local kernel the F-tree pays for on every probe.
    let small = ErdosConfig::paper(60, 4.0).generate(13);
    let edges: Vec<_> = small.edge_ids().collect();
    let comp_query = suggest_query(&small);
    let component = flowmax_sampling::ComponentGraph::build(&small, comp_query, &edges);
    group.bench_function("component_scalar_1024_worlds", |b| {
        b.iter(|| {
            let mut rng = seq.rng(1);
            component.sample_reachability(SAMPLES, &mut rng).samples()
        })
    });
    group.bench_function("component_lanes64_1024_worlds", |b| {
        b.iter(|| {
            component
                .sample_reachability_batched(SAMPLES, &seq, 1)
                .samples()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_batched_sampling);
criterion_main!(benches);
