//! The serving snapshot behind `BENCH_7.json`: query throughput of the
//! long-lived [`FlowServer`] (resident graph, shared session state, warm
//! worker pool, queue coalescing) against the cold baseline it replaces —
//! one fresh [`Session`] constructed per query, the way a batch script or a
//! CGI-style front-end would drive the library.
//!
//! The workload is a mixed stream against one Erdős–Rényi graph: half the
//! queries run the full `FT+M+CI+DS` sampling stack (pool- and
//! scratch-bound), half run `Dijkstra` (spanning-tree-bound, where the
//! server's per-graph [`SessionState`] cache turns repeat queries into
//! cache hits while the cold path re-runs Dijkstra every time).
//!
//! Both paths produce **bit-identical results per query** — asserted for
//! every query, plus an explicit replay of the first query through the warm
//! server at the end. The ratio is therefore pure serving-path wall time:
//! session construction, spanning-tree reuse, and batch coalescing.
//!
//! [`SessionState`]: flowmax_core::SessionState

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;
use std::time::Instant;

use flowmax_core::{Algorithm, FlowServer, QueryParams, ServeConfig, Session};
use flowmax_datasets::{suggest_query, ErdosConfig};
use flowmax_graph::{EdgeId, ProbabilisticGraph};

use crate::Scale;

/// One measured serving mode.
#[derive(Debug, Clone)]
pub struct ServeMeasurement {
    /// Mode name (`cold_sessions` / `warm_server`).
    pub name: String,
    /// Wall time for the whole stream, milliseconds.
    pub total_ms: f64,
    /// Queries answered per second of wall time.
    pub qps: f64,
    /// Median per-query latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-query latency, milliseconds.
    pub p99_ms: f64,
    /// Executed batches (1 per query on the cold path; fewer than the
    /// query count on the warm path when coalescing kicks in).
    pub batches: u64,
}

/// The full `BENCH_7` snapshot.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Workload shape.
    pub graph: String,
    /// Queries in the stream.
    pub queries: usize,
    /// Worker threads per executing batch.
    pub threads: usize,
    /// Monte-Carlo samples per sampled query.
    pub samples: u32,
    /// Both modes' measurements, warm first.
    pub rows: Vec<ServeMeasurement>,
    /// Throughput ratio `warm_qps / cold_qps` — the headline number.
    pub speedup_warm_vs_cold: f64,
}

/// The per-query identity a replay must reproduce bit for bit.
type QueryOutcome = (Vec<EdgeId>, u64);

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn summarize(
    name: &str,
    mut latencies_ms: Vec<f64>,
    total_ms: f64,
    batches: u64,
) -> ServeMeasurement {
    latencies_ms.sort_by(f64::total_cmp);
    ServeMeasurement {
        name: name.to_string(),
        total_ms,
        qps: latencies_ms.len() as f64 / (total_ms / 1e3).max(1e-9),
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        batches,
    }
}

/// The mixed query stream: alternating full-stack sampled queries and
/// spanning-tree-bound Dijkstra queries, each pinning its own seed (the
/// serving replay contract keys on it).
fn query_stream(graph: &ProbabilisticGraph, count: usize, samples: u32) -> Vec<QueryParams> {
    let q = suggest_query(graph);
    (0..count)
        .map(|i| {
            let mut p = QueryParams::new(q, 3 + i % 4);
            p.algorithm = if i % 2 == 0 {
                Algorithm::FtMCiDs
            } else {
                Algorithm::Dijkstra
            };
            p.samples = samples;
            p.seed = Some(1_000 + i as u64);
            p
        })
        .collect()
}

/// The cold baseline: a fresh [`Session`] per query — empty spanning-tree
/// cache, no resident state — exactly what the server replaces.
fn run_cold(
    graph: &ProbabilisticGraph,
    stream: &[QueryParams],
    threads: usize,
) -> (ServeMeasurement, Vec<QueryOutcome>) {
    let started = Instant::now();
    let mut latencies = Vec::with_capacity(stream.len());
    let mut outcomes = Vec::with_capacity(stream.len());
    for p in stream {
        let t0 = Instant::now();
        let session = Session::new(graph).with_threads(threads).with_seed(42);
        let run = session
            .query(p.vertex)
            .expect("stream queries are valid")
            .algorithm(p.algorithm)
            .budget(p.budget)
            .samples(p.samples)
            .seed(p.seed.expect("stream queries pin a seed"))
            .run()
            .expect("stream queries run");
        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        outcomes.push((run.selected.clone(), run.flow.to_bits()));
    }
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    let batches = stream.len() as u64;
    (
        summarize("cold_sessions", latencies, total_ms, batches),
        outcomes,
    )
}

/// The warm path: every query submitted to one [`FlowServer`] with the
/// graph already resident and the dispatcher paused, then released at once
/// — the coalescer's best case, and the shape a bursty client queue takes.
fn run_warm(
    graph: &ProbabilisticGraph,
    stream: &[QueryParams],
    threads: usize,
) -> (ServeMeasurement, Vec<QueryOutcome>, FlowServer, u64) {
    let server = FlowServer::new(ServeConfig {
        threads,
        queue_capacity: stream.len().max(64),
        start_paused: true,
        ..ServeConfig::default()
    });
    let fp = server.load_graph(graph.clone());
    let tickets: Vec<_> = stream
        .iter()
        .map(|p| server.submit(fp, *p).expect("queue sized for the stream"))
        .collect();
    let started = Instant::now();
    server.resume();
    let mut latencies = Vec::with_capacity(stream.len());
    let mut outcomes = Vec::with_capacity(stream.len());
    for ticket in tickets {
        let result = ticket.wait().expect("stream queries run");
        latencies.push(started.elapsed().as_secs_f64() * 1e3);
        outcomes.push((result.selected.clone(), result.flow.to_bits()));
    }
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    let batches = server.stats().batches;
    (
        summarize("warm_server", latencies, total_ms, batches),
        outcomes,
        server,
        fp,
    )
}

/// Runs the snapshot: the same query stream through both serving modes,
/// best-of-`reps` wall time each, with per-query bit-identity asserted
/// between the modes and a final replay through the warm server.
pub fn run(scale: &Scale, reps: u32) -> ServeBench {
    let vertices = scale.pick(2_000, 400);
    let queries = scale.pick(64, 24);
    let samples = 300;
    let threads = 4;
    let graph = ErdosConfig::paper(vertices, 6.0).generate(7);
    let stream = query_stream(&graph, queries, samples);

    let mut cold: Option<(ServeMeasurement, Vec<QueryOutcome>)> = None;
    let mut warm: Option<(ServeMeasurement, Vec<QueryOutcome>, FlowServer, u64)> = None;
    for _ in 0..reps.max(1) {
        let c = run_cold(&graph, &stream, threads);
        if cold.as_ref().is_none_or(|b| c.0.total_ms < b.0.total_ms) {
            cold = Some(c);
        }
        let w = run_warm(&graph, &stream, threads);
        if warm.as_ref().is_none_or(|b| w.0.total_ms < b.0.total_ms) {
            warm = Some(w);
        }
    }
    let (cold, cold_outcomes) = cold.expect("at least one repetition");
    let (warm, warm_outcomes, server, fp) = warm.expect("at least one repetition");

    // The serving contract: mode must never leak into results.
    assert_eq!(
        cold_outcomes, warm_outcomes,
        "warm server diverged from cold sessions"
    );
    // And the replay contract: resubmitting the first query against the
    // now thoroughly warmed server is bit-identical to its cold run.
    let replay = server
        .submit(fp, stream[0])
        .expect("server is idle")
        .wait()
        .expect("replay runs");
    assert_eq!(
        (replay.selected, replay.flow.to_bits()),
        cold_outcomes[0].clone(),
        "replay diverged from the cold baseline"
    );

    let speedup = warm.qps / cold.qps.max(1e-9);
    ServeBench {
        graph: format!(
            "erdos(n={}, m={})",
            graph.vertex_count(),
            graph.edge_count()
        ),
        queries,
        threads,
        samples,
        speedup_warm_vs_cold: speedup,
        rows: vec![warm, cold],
    }
}

impl ServeBench {
    /// Renders the snapshot as pretty-printed JSON (assembled by hand — no
    /// external crates in the build environment; every emitted value is a
    /// plain number or an escape-free ASCII string).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"serve_throughput\",");
        let _ = writeln!(s, "  \"graph\": \"{}\",", self.graph);
        let _ = writeln!(s, "  \"queries\": {},", self.queries);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"samples\": {},", self.samples);
        let _ = writeln!(
            s,
            "  \"speedup_warm_vs_cold\": {:.3},",
            self.speedup_warm_vs_cold
        );
        let _ = writeln!(s, "  \"configs\": [");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
            let _ = writeln!(s, "      \"total_ms\": {:.3},", r.total_ms);
            let _ = writeln!(s, "      \"qps\": {:.1},", r.qps);
            let _ = writeln!(s, "      \"p50_ms\": {:.3},", r.p50_ms);
            let _ = writeln!(s, "      \"p99_ms\": {:.3},", r.p99_ms);
            let _ = writeln!(s, "      \"batches\": {}", r.batches);
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Writes the JSON snapshot to `path`.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_sane_ranks() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&sorted, 0.50), 3.0);
        assert_eq!(percentile(&sorted, 0.99), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn snapshot_emits_valid_shape() {
        let bench = ServeBench {
            graph: "erdos(n=10, m=20)".into(),
            queries: 8,
            threads: 2,
            samples: 100,
            speedup_warm_vs_cold: 1.75,
            rows: vec![summarize("warm_server", vec![1.0, 2.0], 10.0, 1)],
        };
        let json = bench.to_json();
        assert!(json.contains("\"bench\": \"serve_throughput\""));
        assert!(json.contains("\"speedup_warm_vs_cold\": 1.750"));
        assert!(json.contains("\"batches\": 1"));
    }

    #[test]
    fn tiny_stream_agrees_between_modes_and_coalesces() {
        // The full measurement path at toy scale: bit-identity between the
        // modes is asserted inside `run`, and the burst must coalesce into
        // fewer batches than queries.
        let bench = run(&Scale::reduced(), 1);
        assert_eq!(bench.rows.len(), 2);
        let warm = &bench.rows[0];
        let cold = &bench.rows[1];
        assert_eq!(warm.name, "warm_server");
        assert_eq!(cold.batches, bench.queries as u64);
        assert!(
            warm.batches < bench.queries as u64,
            "burst did not coalesce: {} batches for {} queries",
            warm.batches,
            bench.queries
        );
        assert!(warm.qps > 0.0 && cold.qps > 0.0);
    }
}
