//! The candidate-race performance snapshot behind `BENCH_3.json`: selection
//! wall-time and sampling throughput of the fixed-budget probing loop
//! versus the §6.3 races (scalar reference and batched engine) on one
//! mid-size graph, emitted machine-readable so future PRs can track the
//! perf trajectory.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use flowmax_core::{Algorithm, CiEngine, Session};
use flowmax_datasets::{suggest_query, ErdosConfig};
use flowmax_graph::ProbabilisticGraph;

use crate::Scale;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct RaceMeasurement {
    /// Configuration name (`fixed_budget`, `scalar_race`, `batched_race_t1`, …).
    pub name: String,
    /// Selection wall-time in milliseconds (best of the repetitions).
    pub selection_ms: f64,
    /// Monte-Carlo worlds drawn during selection.
    pub samples_drawn: u64,
    /// Sampling throughput, worlds per second of selection time.
    pub samples_per_sec: f64,
    /// Expected flow of the selection under the shared evaluator.
    pub flow: f64,
}

/// The full snapshot.
#[derive(Debug, Clone)]
pub struct RaceBench {
    /// Graph shape used (vertices, mean degree, seed).
    pub graph: String,
    /// Edge budget `k`.
    pub budget: usize,
    /// Per-candidate sample budget.
    pub samples: u32,
    /// All measured configurations.
    pub rows: Vec<RaceMeasurement>,
    /// Wall-time speedup of the single-threaded batched race over the
    /// fixed-budget scalar probing loop — the headline number.
    pub speedup_fixed_vs_racing: f64,
    /// Wall-time speedup of the batched race over the scalar reference race.
    pub speedup_scalar_race_vs_racing: f64,
}

/// The benchmark's mid-size workload: dense enough that cycle-closing
/// (sampled) probes dominate the greedy loop and the selected subgraph
/// grows real bi-connected components.
pub fn midsize_graph(scale: &Scale) -> ProbabilisticGraph {
    let n = scale.pick(400, 200);
    ErdosConfig::paper(n, 10.0).generate(11)
}

#[allow(clippy::too_many_arguments)]
fn measure(
    graph: &ProbabilisticGraph,
    name: &str,
    algorithm: Algorithm,
    ci_engine: CiEngine,
    scalar_estimation: bool,
    budget: usize,
    samples: u32,
    threads: usize,
    reps: u32,
) -> RaceMeasurement {
    let query = suggest_query(graph);
    let session = Session::new(graph).with_threads(threads).with_seed(5);
    let spec = session
        .query(query)
        .expect("suggest_query returns a graph vertex")
        .algorithm(algorithm)
        .budget(budget)
        .samples(samples)
        .ci_engine(ci_engine)
        .scalar_estimation(scalar_estimation)
        .spec();
    let mut best: Option<RaceMeasurement> = None;
    for _ in 0..reps.max(1) {
        let r = &session.run_many(&[spec]).expect("validated spec")[0];
        let ms = r.elapsed.as_secs_f64() * 1e3;
        let m = RaceMeasurement {
            name: name.to_string(),
            selection_ms: ms,
            samples_drawn: r.metrics.samples_drawn,
            samples_per_sec: r.metrics.samples_drawn as f64 / r.elapsed.as_secs_f64().max(1e-9),
            flow: r.flow,
        };
        if best
            .as_ref()
            .is_none_or(|b| m.selection_ms < b.selection_ms)
        {
            best = Some(m);
        }
    }
    best.expect("at least one repetition")
}

/// Runs the snapshot. Four configurations bracket the PR's two mechanisms:
///
/// * `fixed_budget_scalar` — every candidate probed at the full sample
///   budget with the scalar one-world-per-BFS kernel (the pre-engine
///   baseline the ISSUE calls the *fixed-budget scalar race*);
/// * `fixed_budget_batched` — same probing loop on the bit-parallel
///   engine (PR 2's state);
/// * `scalar_race` — the §6.3 reference race (re-probes per round);
/// * `batched_race_t1` / `batched_race_t4` — the racing engine, single-
///   and multi-threaded.
pub fn run(scale: &Scale, reps: u32) -> RaceBench {
    let graph = midsize_graph(scale);
    let budget = scale.pick(150, 100);
    let samples = 1000;
    let m = |name: &str, alg, eng, scalar, threads| {
        measure(
            &graph, name, alg, eng, scalar, budget, samples, threads, reps,
        )
    };
    let rows = vec![
        m(
            "fixed_budget_scalar",
            Algorithm::FtM,
            CiEngine::BatchedRace, // irrelevant: CI off
            true,
            1,
        ),
        m(
            "fixed_budget_batched",
            Algorithm::FtM,
            CiEngine::BatchedRace,
            false,
            1,
        ),
        m(
            "scalar_race",
            Algorithm::FtMCi,
            CiEngine::ScalarReference,
            false,
            1,
        ),
        m(
            "batched_race_t1",
            Algorithm::FtMCi,
            CiEngine::BatchedRace,
            false,
            1,
        ),
        m(
            "batched_race_t4",
            Algorithm::FtMCi,
            CiEngine::BatchedRace,
            false,
            4,
        ),
    ];
    let ms_of = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .map(|r| r.selection_ms)
            .unwrap_or(f64::NAN)
    };
    let racing = ms_of("batched_race_t1");
    RaceBench {
        graph: format!("erdos(n={}, degree=10, seed=11)", graph.vertex_count()),
        budget,
        samples,
        speedup_fixed_vs_racing: ms_of("fixed_budget_scalar") / racing,
        speedup_scalar_race_vs_racing: ms_of("scalar_race") / racing,
        rows,
    }
}

impl RaceBench {
    /// Renders the snapshot as pretty-printed JSON (no external crates in
    /// the build environment, so the document is assembled by hand; every
    /// emitted value is a plain number or an escaped-free ASCII string).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"candidate_race\",");
        let _ = writeln!(s, "  \"graph\": \"{}\",", self.graph);
        let _ = writeln!(s, "  \"budget\": {},", self.budget);
        let _ = writeln!(s, "  \"samples\": {},", self.samples);
        let _ = writeln!(
            s,
            "  \"speedup_fixed_vs_racing\": {:.3},",
            self.speedup_fixed_vs_racing
        );
        let _ = writeln!(
            s,
            "  \"speedup_scalar_race_vs_racing\": {:.3},",
            self.speedup_scalar_race_vs_racing
        );
        let _ = writeln!(s, "  \"configs\": [");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
            let _ = writeln!(s, "      \"selection_ms\": {:.3},", r.selection_ms);
            let _ = writeln!(s, "      \"samples_drawn\": {},", r.samples_drawn);
            let _ = writeln!(s, "      \"samples_per_sec\": {:.1},", r.samples_per_sec);
            let _ = writeln!(s, "      \"flow\": {:.6}", r.flow);
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Writes the JSON snapshot to `path`.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_runs_and_serializes() {
        // A tiny throwaway scale: correctness of the plumbing, not timing.
        let graph = ErdosConfig::paper(80, 6.0).generate(11);
        let m = measure(
            &graph,
            "fixed_budget",
            Algorithm::FtM,
            CiEngine::BatchedRace,
            false,
            4,
            200,
            1,
            1,
        );
        assert!(m.selection_ms >= 0.0);
        assert!(m.samples_drawn > 0);
        let bench = RaceBench {
            graph: "erdos(n=80)".into(),
            budget: 4,
            samples: 200,
            speedup_fixed_vs_racing: 4.2,
            speedup_scalar_race_vs_racing: 6.0,
            rows: vec![m],
        };
        let json = bench.to_json();
        assert!(json.contains("\"bench\": \"candidate_race\""));
        assert!(json.contains("\"speedup_fixed_vs_racing\": 4.200"));
        assert!(json.contains("\"samples_drawn\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced JSON braces"
        );
    }
}
