//! Fig. 8 — synthetic wireless sensor networks at two densities
//! (ε = 0.05 and ε = 0.07, |V| = 1000), swept over the budget `k`.

use flowmax_datasets::WsnConfig;

use crate::report::{Report, Row};
use crate::runner::{names, roster, run_workload, RunConfig, Scale};

fn wsn_sweep(id: &str, epsilon: f64, scale: &Scale, seed: u64) -> Report {
    let budgets: Vec<usize> = scale.pick(vec![25, 50, 100, 150, 200], vec![10, 25, 50, 75]);
    let algorithms = roster();
    let g = WsnConfig::paper(1000, epsilon).generate(seed).graph;
    let rows = budgets
        .iter()
        .map(|&k| {
            let cfg = RunConfig {
                budget: k,
                samples: scale.pick(1000, 500),
                naive_samples: scale.pick(1000, 200),
                seed,
            };
            Row {
                x: k.to_string(),
                cells: run_workload(&g, &algorithms, &cfg),
            }
        })
        .collect();
    Report {
        id: id.into(),
        title: format!("Wireless sensor network (ε = {epsilon})"),
        x_label: "k".into(),
        algorithms: names(&algorithms),
        rows,
        notes: vec![
            "|V| = 1000 sensors uniform in [0,1]², p ~ U(0,1]".into(),
            "paper expectation: denser ε narrows the Dijkstra↔FT flow gap".into(),
        ],
    }
}

/// Fig. 8(a): WSN at ε = 0.05.
pub fn fig8a(scale: &Scale, seed: u64) -> Report {
    wsn_sweep("fig8a", 0.05, scale, seed)
}

/// Fig. 8(b): WSN at ε = 0.07.
pub fn fig8b(scale: &Scale, seed: u64) -> Report {
    wsn_sweep("fig8b", 0.07, scale, seed)
}
