//! §7.3's variance claim: at equal sample counts, estimating each
//! bi-connected component independently (the F-tree) yields a lower-variance
//! total-flow estimate than sampling the whole subgraph at once (Naive),
//! because `Var(ΣX) = ΣVar(X) + 2ΣCov` and component independence removes
//! the covariance terms — while mono parts are computed exactly.

use flowmax_core::{greedy_select, EstimatorConfig, FTree, GreedyConfig, SamplingProvider};
use flowmax_datasets::{suggest_query, PartitionedConfig};
use flowmax_graph::{EdgeId, EdgeSubset, ProbabilisticGraph, VertexId};
use flowmax_sampling::{sample_flow, SeedSequence};

use crate::report::{Cell, Report, Row};
use crate::runner::Scale;

/// Builds an F-tree over a fixed selection with the given sampling budget.
fn ftree_estimate(
    graph: &ProbabilisticGraph,
    query: VertexId,
    selection: &[EdgeId],
    samples: u32,
    seed: u64,
) -> f64 {
    let mut provider = SamplingProvider::new(EstimatorConfig::monte_carlo(samples), seed);
    let mut tree = FTree::new(graph, query);
    let mut remaining: Vec<EdgeId> = selection.to_vec();
    while !remaining.is_empty() {
        let pos = remaining.iter().position(|&e| {
            let (a, b) = graph.endpoints(e);
            tree.contains_vertex(a) || tree.contains_vertex(b)
        });
        let Some(pos) = pos else { break };
        let e = remaining.remove(pos);
        tree.insert_edge(graph, e, &mut provider).unwrap();
    }
    tree.expected_flow(graph, false)
}

fn std_dev(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
}

/// The variance comparison: columns report (std dev, |bias|) per estimator.
pub fn variance(scale: &Scale, seed: u64) -> Report {
    let n = scale.pick(2_000, 500);
    let g = PartitionedConfig::paper(n, 6).generate(seed);
    let q = suggest_query(&g);

    // A fixed selection with cycles: the FT+M greedy's own choice.
    let mut cfg = GreedyConfig::ft(scale.pick(120, 70), seed).with_memo();
    cfg.samples = 300;
    let selection = greedy_select(&g, q, &cfg).selected;

    // Low-noise reference flow.
    let reference = {
        let mut provider = SamplingProvider::new(EstimatorConfig::hybrid(20, 50_000), seed ^ 1);
        let mut tree = FTree::new(&g, q);
        let mut remaining = selection.clone();
        while !remaining.is_empty() {
            let pos = remaining.iter().position(|&e| {
                let (a, b) = g.endpoints(e);
                tree.contains_vertex(a) || tree.contains_vertex(b)
            });
            let Some(pos) = pos else { break };
            let e = remaining.remove(pos);
            tree.insert_edge(&g, e, &mut provider).unwrap();
        }
        tree.expected_flow(&g, false)
    };

    let trials = 30;
    let subset = EdgeSubset::from_edges(g.edge_count(), selection.iter().copied());
    let seq = SeedSequence::new(seed ^ 0xFACE);
    let mut rows = Vec::new();
    for &s in &[50u32, 100, 200, 400, 800] {
        let naive: Vec<f64> = (0..trials)
            .map(|t| {
                let mut rng = seq.rng(1_000 + t);
                sample_flow(&g, &subset, q, false, s, &mut rng).mean()
            })
            .collect();
        let ftree: Vec<f64> = (0..trials)
            .map(|t| ftree_estimate(&g, q, &selection, s, seq.child_seed(2_000 + t)))
            .collect();
        let bias = |vals: &[f64]| (vals.iter().sum::<f64>() / vals.len() as f64 - reference).abs();
        rows.push(Row {
            x: s.to_string(),
            cells: vec![
                Cell {
                    flow: std_dev(&naive),
                    millis: bias(&naive),
                },
                Cell {
                    flow: std_dev(&ftree),
                    millis: bias(&ftree),
                },
            ],
        });
    }

    Report {
        id: "variance".into(),
        title: "Estimator variance: whole-graph vs component-wise sampling (§7.3)".into(),
        x_label: "samples".into(),
        algorithms: vec!["whole-graph".into(), "f-tree".into()],
        rows,
        notes: vec![
            format!(
                "fixed {}-edge selection on partitioned |V|={n}; {trials} trials; \
                 reference flow {reference:.3}",
                selection.len()
            ),
            "columns: .flow = std dev across trials, .ms = |mean − reference| (bias)".into(),
            "paper expectation: the f-tree column is consistently smaller".into(),
        ],
    }
}
