//! Fig. 9 — the four "real world" workloads, rebuilt with the documented
//! substitute generators (DESIGN.md §3.4): San Joaquin road network,
//! Facebook social circle, DBLP collaboration, YouTube friendships.

use flowmax_core::Algorithm;
use flowmax_datasets::{CollaborationConfig, PreferentialConfig, RoadConfig, SocialCircleConfig};
use flowmax_graph::ProbabilisticGraph;

use crate::report::{Report, Row};
use crate::runner::{names, roster, run_workload, RunConfig, Scale};

#[allow(clippy::too_many_arguments)]
fn budget_sweep(
    id: &str,
    title: &str,
    graph: &ProbabilisticGraph,
    budgets: &[usize],
    algorithms: &[Algorithm],
    scale: &Scale,
    seed: u64,
    notes: Vec<String>,
) -> Report {
    let rows = budgets
        .iter()
        .map(|&k| {
            let cfg = RunConfig {
                budget: k,
                samples: scale.pick(1000, 500),
                naive_samples: scale.pick(1000, 100),
                seed,
            };
            Row {
                x: k.to_string(),
                cells: run_workload(graph, algorithms, &cfg),
            }
        })
        .collect();
    Report {
        id: id.into(),
        title: title.into(),
        x_label: "k".into(),
        algorithms: names(algorithms),
        rows,
        notes,
    }
}

/// Fig. 9(a): road network (San Joaquin substitute; locality).
pub fn fig9a(scale: &Scale, seed: u64) -> Report {
    let (w, h) = scale.pick((135, 135), (40, 40));
    let road = RoadConfig::paper(w, h).generate(seed);
    let budgets: Vec<usize> = scale.pick(vec![50, 100, 150, 200, 250], vec![20, 40, 80, 120]);
    budget_sweep(
        "fig9a",
        "San Joaquin road network (synthetic substitute)",
        &road.graph,
        &budgets,
        &roster(),
        scale,
        seed,
        vec![
            format!("{}×{} jittered grid, p = exp(−0.001·dist_m)", w, h),
            "paper expectation: FT variants dominate; heuristics all help under locality".into(),
        ],
    )
}

/// Fig. 9(b): Facebook social circle substitute (dense, no locality).
pub fn fig9b(scale: &Scale, seed: u64) -> Report {
    // The real dataset is small; both scales use the paper's 535/10k shape.
    let g = SocialCircleConfig::paper().generate(seed);
    let budgets: Vec<usize> = scale.pick(vec![25, 50, 100, 150, 200], vec![15, 30, 60, 90]);
    budget_sweep(
        "fig9b",
        "Facebook social circle (synthetic substitute)",
        &g,
        &budgets,
        &roster(),
        scale,
        seed,
        vec![
            "535 users, 10k edges; 10 close friends/user at p ∈ [0.5,1]".into(),
            "paper expectation: Dijkstra's flow loss is most significant here".into(),
        ],
    )
}

/// Fig. 9(c): DBLP collaboration substitute (sparse cliques, no locality).
pub fn fig9c(scale: &Scale, seed: u64) -> Report {
    let authors = scale.pick(317_080, 20_000);
    let g = CollaborationConfig::paper_scaled(authors).generate(seed);
    let budgets: Vec<usize> = scale.pick(vec![50, 100, 150, 200, 250], vec![20, 40, 80]);
    // Naive is excluded at this size even in the paper-shaped run: its cost
    // is the experiment's point, measured separately at small scale.
    let algorithms: Vec<Algorithm> = roster()
        .into_iter()
        .filter(|a| *a != Algorithm::Naive)
        .collect();
    budget_sweep(
        "fig9c",
        "DBLP collaboration network (synthetic substitute)",
        &g,
        &budgets,
        &algorithms,
        scale,
        seed,
        vec![
            format!("{authors} authors, clique-per-paper generator"),
            "Naive omitted at this scale (see fig5b for its cost curve)".into(),
            "paper expectation: Dijkstra loses potential flow as k grows".into(),
        ],
    )
}

/// Fig. 9(d): YouTube friendship substitute (sparse, heavy-tailed).
pub fn fig9d(scale: &Scale, seed: u64) -> Report {
    let n = scale.pick(1_134_890, 50_000);
    let g = PreferentialConfig::paper_scaled(n).generate(seed);
    let budgets: Vec<usize> = scale.pick(vec![50, 100, 150, 200, 250], vec![20, 40, 80]);
    let algorithms: Vec<Algorithm> = roster()
        .into_iter()
        .filter(|a| *a != Algorithm::Naive)
        .collect();
    budget_sweep(
        "fig9d",
        "YouTube friendship network (synthetic substitute)",
        &g,
        &budgets,
        &algorithms,
        scale,
        seed,
        vec![
            format!("{n} vertices, preferential attachment m = 3"),
            "Naive omitted at this scale (paper reports it ~10^3 s here)".into(),
            "paper expectation: heuristics give little extra speedup; no flow loss".into(),
        ],
    )
}
