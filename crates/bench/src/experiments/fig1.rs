//! Fig. 1 — the motivating running example: full activation vs Dijkstra
//! spanning tree vs the optimal five-edge selection.
//!
//! The figure's exact wiring is not printed in the paper; we use a 7-vertex,
//! 10-edge graph carrying the probability multiset visible in the paper's
//! `Pr(g1)` computation (Eq. 1 example) and reproduce the *dominance shape*:
//! `flow(all 10) > flow(best 5) > flow(Dijkstra tree with 6 edges)`.

use flowmax_core::{dijkstra_select, exact_max_flow};
use flowmax_graph::{
    exact_expected_flow, EdgeSubset, GraphBuilder, ProbabilisticGraph, Probability, VertexId,
    Weight, DEFAULT_ENUMERATION_CAP,
};

use crate::report::{Cell, Report, Row};
use crate::runner::Scale;

/// Builds the Fig.-1-shaped graph (unit weights).
pub fn figure1_graph() -> ProbabilisticGraph {
    let p = |v| Probability::new(v).unwrap();
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..7).map(|_| b.add_vertex(Weight::ONE)).collect();
    let (q, a, bb, c, d, e, f) = (vs[0], vs[1], vs[2], vs[3], vs[4], vs[5], vs[6]);
    b.add_edge(q, a, p(0.6)).unwrap();
    b.add_edge(q, bb, p(0.5)).unwrap();
    b.add_edge(a, c, p(0.8)).unwrap();
    b.add_edge(bb, c, p(0.5)).unwrap();
    b.add_edge(a, bb, p(0.4)).unwrap();
    b.add_edge(c, d, p(0.4)).unwrap();
    b.add_edge(bb, d, p(0.4)).unwrap();
    b.add_edge(d, e, p(0.3)).unwrap();
    b.add_edge(q, e, p(0.1)).unwrap();
    b.add_edge(e, f, p(0.1)).unwrap();
    b.build()
}

/// Reproduces the three Fig. 1 rows by exact computation.
pub fn fig1(_scale: &Scale, _seed: u64) -> Report {
    let g = figure1_graph();
    let q = VertexId(0);

    let all = EdgeSubset::full(&g);
    let flow_all = exact_expected_flow(&g, &all, q, false, DEFAULT_ENUMERATION_CAP).unwrap();
    let dj = dijkstra_select(&g, q, usize::MAX, false);
    let opt5 = exact_max_flow(&g, q, 5, false).unwrap();

    let rows = vec![
        Row {
            x: format!("all ({} edges)", g.edge_count()),
            cells: vec![Cell {
                flow: flow_all,
                millis: 0.0,
            }],
        },
        Row {
            x: format!("Dijkstra ({} edges)", dj.selected.len()),
            cells: vec![Cell {
                flow: dj.final_flow,
                millis: 0.0,
            }],
        },
        Row {
            x: "optimal 5 edges".into(),
            cells: vec![Cell {
                flow: opt5.flow,
                millis: 0.0,
            }],
        },
    ];
    Report {
        id: "fig1".into(),
        title: "Running example: budgeted selection dominates the spanning tree".into(),
        x_label: "selection".into(),
        algorithms: vec!["exact".into()],
        rows,
        notes: vec![
            "paper values: ≈2.51 (all), 1.59 (6-edge Dijkstra), ≈2.02 (best 5)".into(),
            "the figure's wiring is not in the text; shape reproduced on the same \
             probability multiset"
                .into(),
        ],
    }
}
