//! Fig. 5 — expected flow and runtime while scaling the graph size, with
//! (a, partitioned) and without (b, Erdős–Rényi) the locality assumption.

use flowmax_datasets::{ErdosConfig, PartitionedConfig};

use crate::report::{Report, Row};
use crate::runner::{names, roster, run_workload, RunConfig, Scale};

/// Fig. 5(a): graph size sweep under locality.
pub fn fig5a(scale: &Scale, seed: u64) -> Report {
    let sizes: Vec<usize> = scale.pick(
        vec![2_500, 5_000, 10_000, 20_000],
        vec![500, 1_000, 2_000, 4_000],
    );
    let cfg = RunConfig {
        budget: scale.pick(200, 50),
        samples: scale.pick(1000, 500),
        naive_samples: scale.pick(1000, 200),
        seed,
    };
    let algorithms = roster();
    let rows = sizes
        .iter()
        .map(|&n| {
            let g = PartitionedConfig::paper(n, 6).generate(seed ^ n as u64);
            Row {
                x: n.to_string(),
                cells: run_workload(&g, &algorithms, &cfg),
            }
        })
        .collect();
    Report {
        id: "fig5a".into(),
        title: "Changing graph size (locality assumption)".into(),
        x_label: "|V|".into(),
        algorithms: names(&algorithms),
        rows,
        notes: vec![
            format!(
                "partitioned generator, degree 6, k={}, {} samples",
                cfg.budget, cfg.samples
            ),
            "paper expectation: all algorithms oblivious to |V|; Dijkstra lowest flow".into(),
        ],
    }
}

/// Fig. 5(b): graph size sweep without locality.
pub fn fig5b(scale: &Scale, seed: u64) -> Report {
    let sizes: Vec<usize> = scale.pick(
        vec![2_500, 5_000, 10_000, 20_000],
        vec![500, 1_000, 2_000, 4_000],
    );
    let cfg = RunConfig {
        budget: scale.pick(200, 50),
        samples: scale.pick(1000, 500),
        naive_samples: scale.pick(1000, 200),
        seed,
    };
    let algorithms = roster();
    let rows = sizes
        .iter()
        .map(|&n| {
            let g = ErdosConfig::paper(n, 10.0).generate(seed ^ n as u64);
            Row {
                x: n.to_string(),
                cells: run_workload(&g, &algorithms, &cfg),
            }
        })
        .collect();
    Report {
        id: "fig5b".into(),
        title: "Changing graph size (no locality assumption)".into(),
        x_label: "|V|".into(),
        algorithms: names(&algorithms),
        rows,
        notes: vec![
            format!(
                "Erdős–Rényi, degree ≈10, k={}, {} samples",
                cfg.budget, cfg.samples
            ),
            "paper expectation: Naive and Dijkstra clearly below the FT variants in flow".into(),
        ],
    }
}
