//! §7.3 "Parameter c" — the delayed-sampling penalty study.
//!
//! The paper reports: runtime decreases monotonically as `c` shrinks; at
//! `c = 1.2` a 2–10× speed-up with small flow loss; at `c = 1.01` edges are
//! suspended absurdly long and flow drops below Dijkstra level; `c = 2`
//! loses almost nothing.

use flowmax_core::{Algorithm, Session};
use flowmax_datasets::{suggest_query, PartitionedConfig};

use crate::report::{Cell, Report, Row};
use crate::runner::Scale;

/// Sweep of the DS penalty parameter `c` for `FT+M+DS`, with `FT+M` and
/// `Dijkstra` as the two reference rows.
pub fn param_c(scale: &Scale, seed: u64) -> Report {
    let n = scale.pick(10_000, 2_000);
    let budget = scale.pick(200, 50);
    let samples = scale.pick(1000, 300);
    let g = PartitionedConfig::paper(n, 6).generate(seed);
    let q = suggest_query(&g);

    let session = Session::new(&g).with_seed(seed);
    let query = |alg| {
        session
            .query(q)
            .expect("suggest_query returns a graph vertex")
            .algorithm(alg)
            .budget(budget)
            .samples(samples)
    };
    let mut rows = Vec::new();
    for &c in &[1.01f64, 1.2, 2.0, 4.0, 16.0] {
        let r = query(Algorithm::FtMDs)
            .ds_penalty_c(c)
            .run()
            .expect("valid query");
        rows.push(Row {
            x: format!("c={c}"),
            cells: vec![Cell {
                flow: r.flow,
                millis: r.elapsed.as_secs_f64() * 1e3,
            }],
        });
    }
    for (label, alg) in [
        ("FT+M (ref)", Algorithm::FtM),
        ("Dijkstra (ref)", Algorithm::Dijkstra),
    ] {
        let r = query(alg).run().expect("valid query");
        rows.push(Row {
            x: label.into(),
            cells: vec![Cell {
                flow: r.flow,
                millis: r.elapsed.as_secs_f64() * 1e3,
            }],
        });
    }

    Report {
        id: "param-c".into(),
        title: "Delayed-sampling penalty parameter c (§7.3)".into(),
        x_label: "setting".into(),
        algorithms: vec!["FT+M+DS".into()],
        rows,
        notes: vec![
            format!("partitioned generator, |V|={n}, degree 6, k={budget}"),
            "paper expectation: runtime shrinks as c→1; flow collapses at c=1.01".into(),
        ],
    }
}
