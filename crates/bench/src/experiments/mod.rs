//! The experiment registry: every table/figure of the paper's §7 mapped to a
//! runnable function (see DESIGN.md §4 for the index).

pub mod fig1;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod param_c;
pub mod variance;

use crate::report::Report;
use crate::runner::Scale;

/// A named experiment: id, description, and runner.
pub struct Experiment {
    /// Stable id used on the command line and in CSV filenames.
    pub id: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Runner producing the figure's series.
    pub run: fn(&Scale, u64) -> Report,
}

/// All experiments, in the paper's order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1",
            description: "running example: all edges vs Dijkstra tree vs optimal 5 edges",
            run: fig1::fig1,
        },
        Experiment {
            id: "fig5a",
            description: "graph size sweep, locality (partitioned)",
            run: fig5::fig5a,
        },
        Experiment {
            id: "fig5b",
            description: "graph size sweep, no locality (Erdős–Rényi)",
            run: fig5::fig5b,
        },
        Experiment {
            id: "fig6a",
            description: "density sweep, locality (partitioned)",
            run: fig6::fig6a,
        },
        Experiment {
            id: "fig6b",
            description: "density sweep, no locality (Erdős–Rényi)",
            run: fig6::fig6b,
        },
        Experiment {
            id: "fig7a",
            description: "budget sweep, locality",
            run: fig7::fig7a,
        },
        Experiment {
            id: "fig7b",
            description: "budget sweep, no locality",
            run: fig7::fig7b,
        },
        Experiment {
            id: "fig8a",
            description: "WSN ε = 0.05",
            run: fig8::fig8a,
        },
        Experiment {
            id: "fig8b",
            description: "WSN ε = 0.07",
            run: fig8::fig8b,
        },
        Experiment {
            id: "fig9a",
            description: "road network (San Joaquin substitute)",
            run: fig9::fig9a,
        },
        Experiment {
            id: "fig9b",
            description: "social circle (Facebook substitute)",
            run: fig9::fig9b,
        },
        Experiment {
            id: "fig9c",
            description: "collaboration network (DBLP substitute)",
            run: fig9::fig9c,
        },
        Experiment {
            id: "fig9d",
            description: "friendship network (YouTube substitute)",
            run: fig9::fig9d,
        },
        Experiment {
            id: "param-c",
            description: "delayed-sampling penalty parameter study (§7.3)",
            run: param_c::param_c,
        },
        Experiment {
            id: "variance",
            description: "whole-graph vs component-wise estimator variance (§7.3)",
            run: variance::variance,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut ids: Vec<&str> = registry().iter().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert!(n >= 15, "all paper figures covered");
    }

    #[test]
    fn fig1_runs_and_shows_dominance() {
        let report = fig1::fig1(&Scale::reduced(), 0);
        assert_eq!(report.rows.len(), 3);
        let all = report.rows[0].cells[0].flow;
        let dijkstra = report.rows[1].cells[0].flow;
        let opt5 = report.rows[2].cells[0].flow;
        assert!(all > opt5 && opt5 > dijkstra);
    }
}
