//! Fig. 7 — expected flow and runtime while scaling the edge budget `k`,
//! with (a) and without (b) the locality assumption.

use flowmax_datasets::{ErdosConfig, PartitionedConfig};

use crate::report::{Report, Row};
use crate::runner::{names, roster, run_workload, RunConfig, Scale};

/// Fig. 7(a): budget sweep under locality.
pub fn fig7a(scale: &Scale, seed: u64) -> Report {
    let budgets: Vec<usize> = scale.pick(vec![50, 100, 200, 300, 400], vec![10, 25, 50, 75, 100]);
    let n = scale.pick(10_000, 2_000);
    let algorithms = roster();
    let g = PartitionedConfig::paper(n, 6).generate(seed);
    let rows = budgets
        .iter()
        .map(|&k| {
            let cfg = RunConfig {
                budget: k,
                samples: scale.pick(1000, 500),
                naive_samples: scale.pick(1000, 200),
                seed,
            };
            Row {
                x: k.to_string(),
                cells: run_workload(&g, &algorithms, &cfg),
            }
        })
        .collect();
    Report {
        id: "fig7a".into(),
        title: "Changing budget k (locality assumption)".into(),
        x_label: "k".into(),
        algorithms: names(&algorithms),
        rows,
        notes: vec![
            format!("partitioned generator, |V|={n}, degree 6"),
            "paper expectation: per-edge gain decreases; Dijkstra deteriorates with k".into(),
        ],
    }
}

/// Fig. 7(b): budget sweep without locality.
pub fn fig7b(scale: &Scale, seed: u64) -> Report {
    let budgets: Vec<usize> = scale.pick(vec![50, 100, 200, 300, 400], vec![10, 25, 50, 75, 100]);
    let n = scale.pick(10_000, 2_000);
    let algorithms = roster();
    let g = ErdosConfig::paper(n, 10.0).generate(seed);
    let rows = budgets
        .iter()
        .map(|&k| {
            let cfg = RunConfig {
                budget: k,
                samples: scale.pick(1000, 500),
                naive_samples: scale.pick(1000, 200),
                seed,
            };
            Row {
                x: k.to_string(),
                cells: run_workload(&g, &algorithms, &cfg),
            }
        })
        .collect();
    Report {
        id: "fig7b".into(),
        title: "Changing budget k (no locality assumption)".into(),
        x_label: "k".into(),
        algorithms: names(&algorithms),
        rows,
        notes: vec![
            format!("Erdős–Rényi, |V|={n}, degree ≈10"),
            "paper expectation: Naive and Dijkstra flow fall behind at large k".into(),
        ],
    }
}
