//! Fig. 6 — expected flow and runtime while scaling the vertex degree, with
//! (a) and without (b) the locality assumption.

use flowmax_datasets::{ErdosConfig, PartitionedConfig};

use crate::report::{Report, Row};
use crate::runner::{names, roster, run_workload, RunConfig, Scale};

/// Fig. 6(a): density sweep under locality.
pub fn fig6a(scale: &Scale, seed: u64) -> Report {
    let degrees = [4usize, 6, 8, 12, 16];
    let n = scale.pick(10_000, 2_000);
    let cfg = RunConfig {
        budget: scale.pick(200, 50),
        samples: scale.pick(1000, 500),
        naive_samples: scale.pick(1000, 200),
        seed,
    };
    let algorithms = roster();
    let rows = degrees
        .iter()
        .map(|&d| {
            let g = PartitionedConfig::paper(n, d).generate(seed ^ d as u64);
            Row {
                x: d.to_string(),
                cells: run_workload(&g, &algorithms, &cfg),
            }
        })
        .collect();
    Report {
        id: "fig6a".into(),
        title: "Changing graph density (locality assumption)".into(),
        x_label: "degree".into(),
        algorithms: names(&algorithms),
        rows,
        notes: vec![
            format!("partitioned generator, |V|={n}, k={}", cfg.budget),
            "paper expectation: FT flow gain over Dijkstra largest at low degree".into(),
        ],
    }
}

/// Fig. 6(b): density sweep without locality.
pub fn fig6b(scale: &Scale, seed: u64) -> Report {
    let degrees = [4usize, 6, 8, 12, 16];
    let n = scale.pick(10_000, 2_000);
    let cfg = RunConfig {
        budget: scale.pick(200, 50),
        samples: scale.pick(1000, 500),
        naive_samples: scale.pick(1000, 200),
        seed,
    };
    let algorithms = roster();
    let rows = degrees
        .iter()
        .map(|&d| {
            let g = ErdosConfig::paper(n, d as f64).generate(seed ^ d as u64);
            Row {
                x: d.to_string(),
                cells: run_workload(&g, &algorithms, &cfg),
            }
        })
        .collect();
    Report {
        id: "fig6b".into(),
        title: "Changing graph density (no locality assumption)".into(),
        x_label: "degree".into(),
        algorithms: names(&algorithms),
        rows,
        notes: vec![
            format!("Erdős–Rényi, |V|={n}, k={}", cfg.budget),
            "paper expectation: Dijkstra competitive only at very low degree".into(),
        ],
    }
}
