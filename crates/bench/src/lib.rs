//! # flowmax-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§7), plus Criterion micro-benchmarks. See DESIGN.md §4 for
//! the experiment index and EXPERIMENTS.md for paper-vs-measured results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod candidate_race;
pub mod experiments;
pub mod probe_churn;
pub mod report;
pub mod runner;
pub mod serve_bench;
pub mod wide_lanes;

pub use candidate_race::{RaceBench, RaceMeasurement};
pub use experiments::{registry, Experiment};
pub use probe_churn::{ChurnBench, ChurnMeasurement};
pub use report::{Cell, Report, Row};
pub use runner::{names, roster, run_workload, RunConfig, Scale};
pub use serve_bench::{ServeBench, ServeMeasurement};
pub use wide_lanes::{LaneMeasurement, WideLanesBench};
