//! Experiment reports: aligned console tables plus CSV artifacts, one per
//! paper figure.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Result of one algorithm at one x-value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Expected flow of the algorithm's selection (uniform evaluation).
    pub flow: f64,
    /// Selection wall-clock time in milliseconds.
    pub millis: f64,
}

/// One x-value of the sweep.
#[derive(Debug, Clone)]
pub struct Row {
    /// The swept value (graph size, degree, budget, ...).
    pub x: String,
    /// One cell per algorithm, aligned with [`Report::algorithms`].
    pub cells: Vec<Cell>,
}

/// A full experiment report: the series behind one figure of §7.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. `fig5a`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Name of the swept parameter.
    pub x_label: String,
    /// Algorithm display names, column order.
    pub algorithms: Vec<String>,
    /// One row per x-value.
    pub rows: Vec<Row>,
    /// Free-form notes (scale reductions, paper expectations).
    pub notes: Vec<String>,
}

impl Report {
    /// Renders the aligned console table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(out, "#   {n}");
        }
        let _ = write!(out, "{:<12}", self.x_label);
        for a in &self.algorithms {
            let _ = write!(
                out,
                " {:>14} {:>12}",
                format!("{a}.flow"),
                format!("{a}.ms")
            );
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "{:<12}", row.x);
            for c in &row.cells {
                let _ = write!(out, " {:>14.3} {:>12.2}", c.flow, c.millis);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes `<dir>/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut f = fs::File::create(dir.join(format!("{}.csv", self.id)))?;
        write!(f, "{}", self.x_label)?;
        for a in &self.algorithms {
            write!(f, ",{a}_flow,{a}_ms")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{}", row.x)?;
            for c in &row.cells {
                write!(f, ",{},{}", c.flow, c.millis)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        Report {
            id: "figX".into(),
            title: "demo".into(),
            x_label: "|V|".into(),
            algorithms: vec!["FT".into(), "Dijkstra".into()],
            rows: vec![
                Row {
                    x: "100".into(),
                    cells: vec![
                        Cell {
                            flow: 1.5,
                            millis: 2.0,
                        },
                        Cell {
                            flow: 1.0,
                            millis: 0.1,
                        },
                    ],
                },
                Row {
                    x: "200".into(),
                    cells: vec![
                        Cell {
                            flow: 3.0,
                            millis: 4.0,
                        },
                        Cell {
                            flow: 2.0,
                            millis: 0.2,
                        },
                    ],
                },
            ],
            notes: vec!["reduced scale".into()],
        }
    }

    #[test]
    fn render_contains_all_series() {
        let r = sample_report().render();
        assert!(r.contains("figX"));
        assert!(r.contains("FT.flow"));
        assert!(r.contains("Dijkstra.ms"));
        assert!(r.contains("reduced scale"));
        assert!(r.lines().count() >= 5);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("flowmax-report-test");
        sample_report().write_csv(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join("figX.csv")).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "|V|,FT_flow,FT_ms,Dijkstra_flow,Dijkstra_ms"
        );
        assert_eq!(lines.clone().count(), 2);
        assert!(lines.next().unwrap().starts_with("100,1.5,2"));
    }
}
