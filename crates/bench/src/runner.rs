//! Shared machinery for the figure experiments: scales, algorithm roster,
//! and the per-workload timing loop.

use flowmax_core::{Algorithm, Session};
use flowmax_datasets::suggest_query;
use flowmax_graph::ProbabilisticGraph;

use crate::report::Cell;

/// Experiment scale: the paper's parameters, or a laptop-friendly reduction
/// (documented per experiment in EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// `true` = the paper's full sizes (slow); `false` = reduced defaults.
    pub paper: bool,
}

impl Scale {
    /// Reduced (default) scale.
    pub fn reduced() -> Self {
        Scale { paper: false }
    }

    /// Paper-sized scale.
    pub fn paper_scale() -> Self {
        Scale { paper: true }
    }

    /// Picks the paper value or the reduced value.
    pub fn pick<T>(&self, paper: T, reduced: T) -> T {
        if self.paper {
            paper
        } else {
            reduced
        }
    }
}

/// Run configuration shared by the sweep experiments.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Edge budget `k`.
    pub budget: usize,
    /// Component samples for FT variants (paper: 1000).
    pub samples: u32,
    /// Samples for the Naive baseline (reduced so sweeps finish; the full
    /// paper setting is 1000).
    pub naive_samples: u32,
    /// Master seed.
    pub seed: u64,
}

/// The paper's seven algorithms (§7.2), in presentation order.
pub fn roster() -> Vec<Algorithm> {
    Algorithm::all().to_vec()
}

/// Runs every algorithm on one workload and returns a table row's cells.
///
/// All runs share one [`Session`], so per-graph state (e.g. the Dijkstra
/// baseline's spanning tree) is computed once per workload.
pub fn run_workload(
    graph: &ProbabilisticGraph,
    algorithms: &[Algorithm],
    cfg: &RunConfig,
) -> Vec<Cell> {
    let query = suggest_query(graph);
    let session = Session::new(graph).with_seed(cfg.seed);
    algorithms
        .iter()
        .map(|&alg| {
            let samples = if alg == Algorithm::Naive {
                cfg.naive_samples
            } else {
                cfg.samples
            };
            let r = session
                .query(query)
                .expect("suggest_query returns a graph vertex")
                .algorithm(alg)
                .budget(cfg.budget)
                .samples(samples)
                .run()
                .expect("experiment budgets and samples are positive");
            Cell {
                flow: r.flow,
                millis: r.elapsed.as_secs_f64() * 1e3,
            }
        })
        .collect()
}

/// Display names for a roster.
pub fn names(algorithms: &[Algorithm]) -> Vec<String> {
    algorithms.iter().map(|a| a.name().to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_datasets::ErdosConfig;

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::paper_scale().pick(10, 2), 10);
        assert_eq!(Scale::reduced().pick(10, 2), 2);
    }

    #[test]
    fn run_workload_produces_one_cell_per_algorithm() {
        let g = ErdosConfig::paper(60, 4.0).generate(1);
        let algs = [Algorithm::Dijkstra, Algorithm::FtM];
        let cells = run_workload(
            &g,
            &algs,
            &RunConfig {
                budget: 5,
                samples: 100,
                naive_samples: 50,
                seed: 3,
            },
        );
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|c| c.flow >= 0.0 && c.millis >= 0.0));
    }

    #[test]
    fn roster_matches_paper() {
        let names = names(&roster());
        assert_eq!(
            names,
            vec![
                "Naive",
                "Dijkstra",
                "FT",
                "FT+M",
                "FT+M+CI",
                "FT+M+DS",
                "FT+M+CI+DS"
            ]
        );
    }
}
