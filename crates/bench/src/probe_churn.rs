//! The structural-probe-churn snapshot behind `BENCH_5.json`: selection
//! wall-time of the journal-based probe engine versus the pinned
//! clone-based reference on a workload built so that **structural**
//! candidate probes (cases IIIb/IV) dominate every greedy iteration.
//!
//! The workload is a *diamond chain*: `B` links, each a 4-edge diamond
//! `h_i → {a_i, b_i} → h_{i+1}` of near-certain edges, so the selected
//! subgraph grows into a chain of `B` small bi-connected components. One
//! low-probability rung chord `a_i – a_{i+1}` per link is never worth
//! selecting but stays in the candidate list forever — every iteration
//! re-probes every open chord, and each such probe is a Case IV structural
//! insertion across two adjacent components. The clone-based engine pays a
//! whole-tree copy (`O(B)` components) per chord probe; the journal pays
//! only the two components the cycle touches. Selections are bit-identical
//! between the engines, so the wall-time ratio isolates the probe-path
//! change.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use flowmax_core::{Algorithm, Session};
use flowmax_graph::{GraphBuilder, ProbabilisticGraph, Probability, VertexId, Weight};

use crate::Scale;

/// Builds the diamond-chain churn graph with `links` diamonds.
///
/// Vertices: `h_0 = Q`, then per link `a_i`, `b_i`, `h_{i+1}` — `3·links + 1`
/// in total. Edges per link, in id order: `h_i–a_i`, `h_i–b_i`,
/// `a_i–h_{i+1}`, `b_i–h_{i+1}` (probability 0.99, the selection targets)
/// and the churn chord `a_i–a_{i+1}` (probability 0.05, structurally probed
/// forever, never selected) for every link but the last.
pub fn diamond_chain(links: usize) -> ProbabilisticGraph {
    assert!(links >= 2, "need at least two links for cross-link chords");
    let mut b = GraphBuilder::new();
    let diamond = Probability::new(0.99).unwrap();
    let chord = Probability::new(0.05).unwrap();
    let h0 = b.add_vertex(Weight::ONE);
    let mut hub = h0;
    let mut prev_a: Option<VertexId> = None;
    for _ in 0..links {
        let a = b.add_vertex(Weight::ONE);
        let bb = b.add_vertex(Weight::ONE);
        let next = b.add_vertex(Weight::ONE);
        b.add_edge(hub, a, diamond).unwrap();
        b.add_edge(hub, bb, diamond).unwrap();
        b.add_edge(a, next, diamond).unwrap();
        b.add_edge(bb, next, diamond).unwrap();
        if let Some(pa) = prev_a {
            b.add_edge(pa, a, chord).unwrap();
        }
        prev_a = Some(a);
        hub = next;
    }
    b.build()
}

/// One measured probe engine.
#[derive(Debug, Clone)]
pub struct ChurnMeasurement {
    /// Engine name (`journal_probes` / `cloning_probes`).
    pub name: String,
    /// Selection wall-time in milliseconds (best of the repetitions).
    pub selection_ms: f64,
    /// Selection throughput: edges committed per second of selection time.
    pub edges_per_sec: f64,
    /// Candidate probes answered during the selection.
    pub probes: u64,
    /// Monte-Carlo worlds drawn during selection.
    pub samples_drawn: u64,
    /// Expected flow of the selection under the shared evaluator.
    pub flow: f64,
    /// Edges selected.
    pub selected: usize,
}

/// The full snapshot.
#[derive(Debug, Clone)]
pub struct ChurnBench {
    /// Workload shape.
    pub graph: String,
    /// Edge budget `k`.
    pub budget: usize,
    /// Monte-Carlo samples per component estimation.
    pub samples: u32,
    /// Both engines' measurements.
    pub rows: Vec<ChurnMeasurement>,
    /// Wall-time speedup of the journal engine over the clone-based
    /// reference — the headline number (the ISSUE demands ≥ 2×).
    pub speedup_cloning_vs_journal: f64,
}

fn measure(
    graph: &ProbabilisticGraph,
    name: &str,
    cloning: bool,
    budget: usize,
    samples: u32,
    reps: u32,
) -> ChurnMeasurement {
    let session = Session::new(graph).with_threads(1).with_seed(13);
    let spec = session
        .query(VertexId(0))
        .expect("Q is a graph vertex")
        .algorithm(Algorithm::FtM)
        .budget(budget)
        .samples(samples)
        .cloning_probes(cloning)
        .spec();
    let mut best: Option<ChurnMeasurement> = None;
    for _ in 0..reps.max(1) {
        let r = &session.run_many(&[spec]).expect("validated spec")[0];
        let secs = r.elapsed.as_secs_f64().max(1e-9);
        let m = ChurnMeasurement {
            name: name.to_string(),
            selection_ms: secs * 1e3,
            edges_per_sec: r.selected.len() as f64 / secs,
            probes: r.metrics.probes,
            samples_drawn: r.metrics.samples_drawn,
            flow: r.flow,
            selected: r.selected.len(),
        };
        if best
            .as_ref()
            .is_none_or(|b| m.selection_ms < b.selection_ms)
        {
            best = Some(m);
        }
    }
    best.expect("at least one repetition")
}

/// Runs the snapshot: the same `FT+M` selection once per probe engine.
/// Selections are bit-identical (asserted), so the ratio is pure probe-path
/// wall time.
pub fn run(scale: &Scale, reps: u32) -> ChurnBench {
    let links = scale.pick(200, 100);
    let graph = diamond_chain(links);
    let budget = 4 * links; // exactly the diamond edges
    let samples = 1000;
    let journal = measure(&graph, "journal_probes", false, budget, samples, reps);
    let cloning = measure(&graph, "cloning_probes", true, budget, samples, reps);
    assert_eq!(
        journal.flow, cloning.flow,
        "probe engines must select bit-identically"
    );
    assert_eq!(journal.selected, cloning.selected);
    let speedup = cloning.selection_ms / journal.selection_ms.max(1e-9);
    ChurnBench {
        graph: format!(
            "diamond_chain(links={links}, n={}, m={})",
            graph.vertex_count(),
            graph.edge_count()
        ),
        budget,
        samples,
        speedup_cloning_vs_journal: speedup,
        rows: vec![journal, cloning],
    }
}

impl ChurnBench {
    /// Renders the snapshot as pretty-printed JSON (assembled by hand — no
    /// external crates in the build environment; every emitted value is a
    /// plain number or an escape-free ASCII string).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"probe_churn\",");
        let _ = writeln!(s, "  \"graph\": \"{}\",", self.graph);
        let _ = writeln!(s, "  \"budget\": {},", self.budget);
        let _ = writeln!(s, "  \"samples\": {},", self.samples);
        let _ = writeln!(
            s,
            "  \"speedup_cloning_vs_journal\": {:.3},",
            self.speedup_cloning_vs_journal
        );
        let _ = writeln!(s, "  \"configs\": [");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
            let _ = writeln!(s, "      \"selection_ms\": {:.3},", r.selection_ms);
            let _ = writeln!(s, "      \"edges_per_sec\": {:.1},", r.edges_per_sec);
            let _ = writeln!(s, "      \"probes\": {},", r.probes);
            let _ = writeln!(s, "      \"samples_drawn\": {},", r.samples_drawn);
            let _ = writeln!(s, "      \"selected\": {},", r.selected);
            let _ = writeln!(s, "      \"flow\": {:.6}", r.flow);
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Writes the JSON snapshot to `path`.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_chain_shape() {
        let g = diamond_chain(5);
        assert_eq!(g.vertex_count(), 16);
        assert_eq!(g.edge_count(), 4 * 5 + 4);
    }

    #[test]
    fn snapshot_emits_valid_shape() {
        // A tiny run: both engines agree and the JSON mentions both rows.
        let bench = ChurnBench {
            graph: "diamond_chain(links=2)".into(),
            budget: 8,
            samples: 100,
            speedup_cloning_vs_journal: 2.5,
            rows: vec![],
        };
        let json = bench.to_json();
        assert!(json.contains("\"bench\": \"probe_churn\""));
        assert!(json.contains("\"speedup_cloning_vs_journal\": 2.500"));
    }
}
