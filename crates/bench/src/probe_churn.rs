//! The structural-probe-churn snapshots behind `BENCH_5.json` and
//! `BENCH_6.json`: selection wall-time across the three probe/commit
//! engines on workloads built so that **structural** candidate probes
//! (cases IIIb/IV) dominate every greedy iteration.
//!
//! `BENCH_5` (PR 5) pins journal-based probing against the clone-based
//! reference. `BENCH_6` adds the `O(touched)` incremental engine —
//! `base + Δ(touched)` probe flow, replay-based commits, the versioned
//! candidate bitmap — against both references, on the diamond chain plus a
//! preferential-attachment churn workload.
//!
//! `BENCH_5`'s workload is a *diamond chain*: `B` links, each a 4-edge
//! diamond `h_i → {a_i, b_i} → h_{i+1}` of near-certain edges, so the
//! selected subgraph grows into a chain of `B` small bi-connected
//! components. One low-probability rung chord `a_i – a_{i+1}` per link is
//! never worth selecting but stays in the candidate list forever — every
//! iteration re-probes every open chord, and each such probe is a Case IV
//! structural insertion across two adjacent components. The clone-based
//! engine pays a whole-tree copy (`O(B)` components) per chord probe; the
//! journal pays only the two components the cycle touches. Selections are
//! bit-identical between the engines, so the wall-time ratio isolates the
//! probe-path change.
//!
//! `BENCH_6` runs two shapes of that churn. The chain returns with heavy
//! tail weights ([`diamond_chain_weighted`]) so the greedy closes each
//! link on arrival and every chord probe bridges completed components —
//! its `O(B)`-deep block tree is the incremental overlay's *worst case*.
//! The second shape, [`preferential_attachment_churn`], grows diamond
//! blocks from degree-weighted hubs into a shallow, organically skewed
//! block tree and churns on in-component diagonals (Case IIIa): probes
//! that mutate nothing, where journal probing still re-aggregates all
//! `O(n)` components per probe but the overlay touches only an
//! `O(depth)` path.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use flowmax_core::{Algorithm, Session};
use flowmax_graph::{GraphBuilder, ProbabilisticGraph, Probability, VertexId, Weight};

use crate::Scale;

/// Builds the diamond-chain churn graph with `links` diamonds.
///
/// Vertices: `h_0 = Q`, then per link `a_i`, `b_i`, `h_{i+1}` — `3·links + 1`
/// in total. Edges per link, in id order: `h_i–a_i`, `h_i–b_i`,
/// `a_i–h_{i+1}`, `b_i–h_{i+1}` (probability 0.99, the selection targets)
/// and the churn chord `a_i–a_{i+1}` (probability 0.05, structurally probed
/// forever, never selected) for every link but the last.
pub fn diamond_chain(links: usize) -> ProbabilisticGraph {
    diamond_chain_weighted(links, Weight::ONE)
}

/// [`diamond_chain`] with the chain hubs `h_{i+1}` carrying weight `tail`
/// instead of one.
///
/// A heavy tail (`BENCH_6` uses 200) makes closing a link's second rail
/// (≈ `0.0098 · tail` flow gain) outrank opening the next link's leaves
/// (≈ 0.97), so the greedy selection completes each diamond as soon as it
/// reaches it. The mono frontier of incomplete links then stays `O(1)`:
/// chord probes always bridge two *completed* bi-connected components —
/// a cheap `O(1)` journalled merge — instead of carving paths out of a
/// large mono component, which costs both engines an `O(frontier)` regroup
/// per probe and would drown the flow-evaluation difference the benchmark
/// isolates.
pub fn diamond_chain_weighted(links: usize, tail: Weight) -> ProbabilisticGraph {
    assert!(links >= 2, "need at least two links for cross-link chords");
    let mut b = GraphBuilder::new();
    let diamond = Probability::new(0.99).unwrap();
    let chord = Probability::new(0.05).unwrap();
    let h0 = b.add_vertex(Weight::ONE);
    let mut hub = h0;
    let mut prev_a: Option<VertexId> = None;
    for _ in 0..links {
        let a = b.add_vertex(Weight::ONE);
        let bb = b.add_vertex(Weight::ONE);
        let next = b.add_vertex(tail);
        b.add_edge(hub, a, diamond).unwrap();
        b.add_edge(hub, bb, diamond).unwrap();
        b.add_edge(a, next, diamond).unwrap();
        b.add_edge(bb, next, diamond).unwrap();
        if let Some(pa) = prev_a {
            b.add_edge(pa, a, chord).unwrap();
        }
        prev_a = Some(a);
        hub = next;
    }
    b.build()
}

/// Builds the preferential-attachment churn graph: `diamonds` four-edge
/// diamond blocks `h → {a, b} → t` of near-certain edges, each anchored at
/// a **degree-weighted** existing vertex (an endpoint of a uniformly chosen
/// existing backbone edge — the classic preferential-attachment trick), so
/// hubs accrete many blocks and the selected block tree is PA-shaped:
/// `O(log n)` deep instead of the diamond *chain*'s `O(n)`.
///
/// The first `chords` diamonds additionally carry the churn chord — their
/// low-probability `a–b` diagonal. Under a budget equal to the backbone
/// edge count the greedy selection commits exactly the diamonds; once a
/// diamond completes, its diagonal joins two members of one bi-connected
/// component and stays an open **in-component (Case IIIa)** candidate that
/// is re-probed every iteration and never selected. A IIIa probe mutates
/// nothing — snapshot extension plus a memoized estimate — so the probe's
/// wall time is almost entirely flow evaluation: whole-forest
/// re-aggregation (`O(n)` components) for the journal reference versus the
/// `O(touched)` overlay for the incremental engine, on a shallow block
/// tree. This isolates exactly the asymptotic gap the incremental engine
/// closes, on an organically skewed topology rather than the worst-case
/// chain.
///
/// Deterministic for a given `(diamonds, chords, seed)` via an inline
/// xorshift — no RNG dependency.
pub fn preferential_attachment_churn(
    diamonds: usize,
    chords: usize,
    seed: u64,
) -> ProbabilisticGraph {
    assert!(diamonds >= 2, "need at least two diamond blocks");
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let rail = Probability::new(0.99).unwrap();
    let chord = Probability::new(0.05).unwrap();
    // Heavy tails make closing a diamond's second rail (≈ 0.0098 · 200 ≈ 2
    // flow gain) outrank opening new leaves (≈ 0.97), so the greedy
    // selection completes each diamond as soon as it opens it. The mono
    // frontier of incomplete diamonds then stays O(1) — structural rail
    // probes never carve a large mono component — and the chord churn
    // starts in the first iterations instead of after the whole backbone.
    let tail = Weight::new(200.0).unwrap();
    let mut b = GraphBuilder::new();
    let q = b.add_vertex(Weight::ONE);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for d in 0..diamonds {
        let hub = if edges.is_empty() {
            q
        } else {
            let (x, y) = edges[next() as usize % edges.len()];
            if next() & 1 == 0 {
                x
            } else {
                y
            }
        };
        let a = b.add_vertex(Weight::ONE);
        let bb = b.add_vertex(Weight::ONE);
        let t = b.add_vertex(tail);
        b.add_edge(hub, a, rail).unwrap();
        b.add_edge(hub, bb, rail).unwrap();
        b.add_edge(a, t, rail).unwrap();
        b.add_edge(bb, t, rail).unwrap();
        if d < chords {
            b.add_edge(a, bb, chord).unwrap();
        }
        edges.push((hub, a));
        edges.push((hub, bb));
        edges.push((a, t));
        edges.push((bb, t));
    }
    b.build()
}

/// Which probe/commit engine a measurement pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEngine {
    /// The `O(touched)` incremental engine (the library default):
    /// cached `base + Δ(touched)` probe flow and replay-based commits.
    Incremental,
    /// The PR-5 journal reference: journalled probes but whole-forest flow
    /// re-aggregation and `insert_edge` commits.
    Journal,
    /// The pinned clone-per-probe reference engine.
    Cloning,
}

impl ProbeEngine {
    /// The row name emitted into the JSON snapshots.
    pub fn name(self) -> &'static str {
        match self {
            ProbeEngine::Incremental => "incremental_probes",
            ProbeEngine::Journal => "journal_probes",
            ProbeEngine::Cloning => "cloning_probes",
        }
    }
}

/// One measured probe engine.
#[derive(Debug, Clone)]
pub struct ChurnMeasurement {
    /// Engine name (`incremental_probes` / `journal_probes` /
    /// `cloning_probes`).
    pub name: String,
    /// Selection wall-time in milliseconds (best of the repetitions).
    pub selection_ms: f64,
    /// Selection throughput: edges committed per second of selection time.
    pub edges_per_sec: f64,
    /// Candidate probes answered during the selection.
    pub probes: u64,
    /// Monte-Carlo worlds drawn during selection.
    pub samples_drawn: u64,
    /// Expected flow of the selection under the shared evaluator.
    pub flow: f64,
    /// Edges selected.
    pub selected: usize,
}

/// The full snapshot.
#[derive(Debug, Clone)]
pub struct ChurnBench {
    /// Workload shape.
    pub graph: String,
    /// Edge budget `k`.
    pub budget: usize,
    /// Monte-Carlo samples per component estimation.
    pub samples: u32,
    /// Both engines' measurements.
    pub rows: Vec<ChurnMeasurement>,
    /// Wall-time speedup of the journal engine over the clone-based
    /// reference — the headline number (the ISSUE demands ≥ 2×).
    pub speedup_cloning_vs_journal: f64,
}

fn measure(
    graph: &ProbabilisticGraph,
    engine: ProbeEngine,
    budget: usize,
    samples: u32,
    reps: u32,
) -> ChurnMeasurement {
    let name = engine.name();
    let session = Session::new(graph).with_threads(1).with_seed(13);
    let builder = session
        .query(VertexId(0))
        .expect("Q is a graph vertex")
        .algorithm(Algorithm::FtM)
        .budget(budget)
        .samples(samples);
    let spec = match engine {
        ProbeEngine::Incremental => builder.spec(),
        ProbeEngine::Journal => builder.incremental(false).spec(),
        ProbeEngine::Cloning => builder.incremental(false).cloning_probes(true).spec(),
    };
    let mut best: Option<ChurnMeasurement> = None;
    for _ in 0..reps.max(1) {
        let r = &session.run_many(&[spec]).expect("validated spec")[0];
        let secs = r.elapsed.as_secs_f64().max(1e-9);
        let m = ChurnMeasurement {
            name: name.to_string(),
            selection_ms: secs * 1e3,
            edges_per_sec: r.selected.len() as f64 / secs,
            probes: r.metrics.probes,
            samples_drawn: r.metrics.samples_drawn,
            flow: r.flow,
            selected: r.selected.len(),
        };
        if best
            .as_ref()
            .is_none_or(|b| m.selection_ms < b.selection_ms)
        {
            best = Some(m);
        }
    }
    best.expect("at least one repetition")
}

/// Runs the snapshot: the same `FT+M` selection once per probe engine.
/// Selections are bit-identical (asserted), so the ratio is pure probe-path
/// wall time.
pub fn run(scale: &Scale, reps: u32) -> ChurnBench {
    let links = scale.pick(200, 100);
    let graph = diamond_chain(links);
    let budget = 4 * links; // exactly the diamond edges
    let samples = 1000;
    let journal = measure(&graph, ProbeEngine::Journal, budget, samples, reps);
    let cloning = measure(&graph, ProbeEngine::Cloning, budget, samples, reps);
    assert_eq!(
        journal.flow, cloning.flow,
        "probe engines must select bit-identically"
    );
    assert_eq!(journal.selected, cloning.selected);
    let speedup = cloning.selection_ms / journal.selection_ms.max(1e-9);
    ChurnBench {
        graph: format!(
            "diamond_chain(links={links}, n={}, m={})",
            graph.vertex_count(),
            graph.edge_count()
        ),
        budget,
        samples,
        speedup_cloning_vs_journal: speedup,
        rows: vec![journal, cloning],
    }
}

impl ChurnBench {
    /// Renders the snapshot as pretty-printed JSON (assembled by hand — no
    /// external crates in the build environment; every emitted value is a
    /// plain number or an escape-free ASCII string).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"probe_churn\",");
        let _ = writeln!(s, "  \"graph\": \"{}\",", self.graph);
        let _ = writeln!(s, "  \"budget\": {},", self.budget);
        let _ = writeln!(s, "  \"samples\": {},", self.samples);
        let _ = writeln!(
            s,
            "  \"speedup_cloning_vs_journal\": {:.3},",
            self.speedup_cloning_vs_journal
        );
        let _ = writeln!(s, "  \"configs\": [");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
            let _ = writeln!(s, "      \"selection_ms\": {:.3},", r.selection_ms);
            let _ = writeln!(s, "      \"edges_per_sec\": {:.1},", r.edges_per_sec);
            let _ = writeln!(s, "      \"probes\": {},", r.probes);
            let _ = writeln!(s, "      \"samples_drawn\": {},", r.samples_drawn);
            let _ = writeln!(s, "      \"selected\": {},", r.selected);
            let _ = writeln!(s, "      \"flow\": {:.6}", r.flow);
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Writes the JSON snapshot to `path`.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_json())
    }
}

/// One `BENCH_6` workload: the same selection run once per engine.
#[derive(Debug, Clone)]
pub struct IncrementalWorkload {
    /// Workload name (`diamond_chain` / `preferential_attachment`).
    pub workload: String,
    /// Graph shape, human-readable.
    pub graph: String,
    /// Edge budget `k`.
    pub budget: usize,
    /// Monte-Carlo samples per component estimation.
    pub samples: u32,
    /// All three engines' measurements, incremental first.
    pub rows: Vec<ChurnMeasurement>,
    /// Wall-time speedup of the incremental engine over the PR-5 journal
    /// reference — the headline number (the ISSUE demands ≥ 2×).
    pub speedup_incremental_vs_journal: f64,
    /// Wall-time speedup of the incremental engine over the clone-based
    /// reference.
    pub speedup_incremental_vs_cloning: f64,
}

/// The full `BENCH_6` snapshot: the incremental engine raced against both
/// pinned references on every churn workload.
#[derive(Debug, Clone)]
pub struct IncrementalBench {
    /// Per-workload measurements.
    pub workloads: Vec<IncrementalWorkload>,
    /// Minimum incremental-vs-journal speedup across workloads.
    pub min_speedup_incremental_vs_journal: f64,
}

fn run_workload(
    workload: &str,
    graph_label: String,
    graph: &ProbabilisticGraph,
    budget: usize,
    samples: u32,
    reps: u32,
) -> IncrementalWorkload {
    let incremental = measure(graph, ProbeEngine::Incremental, budget, samples, reps);
    let journal = measure(graph, ProbeEngine::Journal, budget, samples, reps);
    let cloning = measure(graph, ProbeEngine::Cloning, budget, samples, reps);
    for reference in [&journal, &cloning] {
        assert_eq!(
            incremental.flow.to_bits(),
            reference.flow.to_bits(),
            "{workload}: engines must select bit-identically ({} vs {})",
            incremental.name,
            reference.name,
        );
        assert_eq!(incremental.selected, reference.selected);
    }
    let speedup_journal = journal.selection_ms / incremental.selection_ms.max(1e-9);
    let speedup_cloning = cloning.selection_ms / incremental.selection_ms.max(1e-9);
    IncrementalWorkload {
        workload: workload.to_string(),
        graph: graph_label,
        budget,
        samples,
        rows: vec![incremental, journal, cloning],
        speedup_incremental_vs_journal: speedup_journal,
        speedup_incremental_vs_cloning: speedup_cloning,
    }
}

/// Runs the `BENCH_6` snapshot: `FT+M` selection under all three probe
/// engines on the heavy-tail diamond chain and on the
/// preferential-attachment diamond churn workload. Selections are asserted
/// bit-identical per workload, so every ratio is pure
/// probe-and-commit-path wall time.
pub fn run_bench6(scale: &Scale, reps: u32) -> IncrementalBench {
    let mut workloads = Vec::new();
    let tail = Weight::new(200.0).unwrap();

    let links = scale.pick(500, 60);
    let diamond = diamond_chain_weighted(links, tail);
    workloads.push(run_workload(
        "diamond_chain",
        format!(
            "diamond_chain_weighted(links={links}, tail=200, n={}, m={})",
            diamond.vertex_count(),
            diamond.edge_count()
        ),
        &diamond,
        4 * links,
        1000,
        reps,
    ));

    let diamonds = scale.pick(500, 60);
    let pa = preferential_attachment_churn(diamonds, diamonds, 1706);
    workloads.push(run_workload(
        "preferential_attachment",
        format!(
            "preferential_attachment_churn(diamonds={diamonds}, chords={diamonds}, n={}, m={})",
            pa.vertex_count(),
            pa.edge_count()
        ),
        &pa,
        4 * diamonds,
        1000,
        reps,
    ));

    let min_speedup = workloads
        .iter()
        .map(|w| w.speedup_incremental_vs_journal)
        .fold(f64::INFINITY, f64::min);
    IncrementalBench {
        workloads,
        min_speedup_incremental_vs_journal: min_speedup,
    }
}

impl IncrementalBench {
    /// Renders the snapshot as pretty-printed JSON (assembled by hand — no
    /// external crates in the build environment; every emitted value is a
    /// plain number or an escape-free ASCII string).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"incremental_churn\",");
        let _ = writeln!(
            s,
            "  \"min_speedup_incremental_vs_journal\": {:.3},",
            self.min_speedup_incremental_vs_journal
        );
        let _ = writeln!(s, "  \"workloads\": [");
        for (wi, w) in self.workloads.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"workload\": \"{}\",", w.workload);
            let _ = writeln!(s, "      \"graph\": \"{}\",", w.graph);
            let _ = writeln!(s, "      \"budget\": {},", w.budget);
            let _ = writeln!(s, "      \"samples\": {},", w.samples);
            let _ = writeln!(
                s,
                "      \"speedup_incremental_vs_journal\": {:.3},",
                w.speedup_incremental_vs_journal
            );
            let _ = writeln!(
                s,
                "      \"speedup_incremental_vs_cloning\": {:.3},",
                w.speedup_incremental_vs_cloning
            );
            let _ = writeln!(s, "      \"configs\": [");
            for (i, r) in w.rows.iter().enumerate() {
                let _ = writeln!(s, "        {{");
                let _ = writeln!(s, "          \"name\": \"{}\",", r.name);
                let _ = writeln!(s, "          \"selection_ms\": {:.3},", r.selection_ms);
                let _ = writeln!(s, "          \"edges_per_sec\": {:.1},", r.edges_per_sec);
                let _ = writeln!(s, "          \"probes\": {},", r.probes);
                let _ = writeln!(s, "          \"samples_drawn\": {},", r.samples_drawn);
                let _ = writeln!(s, "          \"selected\": {},", r.selected);
                let _ = writeln!(s, "          \"flow\": {:.6}", r.flow);
                let comma = if i + 1 == w.rows.len() { "" } else { "," };
                let _ = writeln!(s, "        }}{comma}");
            }
            let _ = writeln!(s, "      ]");
            let comma = if wi + 1 == self.workloads.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Writes the JSON snapshot to `path`.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_chain_shape() {
        let g = diamond_chain(5);
        assert_eq!(g.vertex_count(), 16);
        assert_eq!(g.edge_count(), 4 * 5 + 4);
    }

    #[test]
    fn pa_churn_shape() {
        let g = preferential_attachment_churn(10, 4, 1706);
        assert_eq!(g.vertex_count(), 31);
        assert_eq!(g.edge_count(), 4 * 10 + 4);
    }

    #[test]
    fn pa_churn_is_deterministic() {
        let a = preferential_attachment_churn(12, 6, 99);
        let b = preferential_attachment_churn(12, 6, 99);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.vertex_count(), b.vertex_count());
    }

    #[test]
    fn engines_agree_on_a_tiny_pa_churn() {
        let g = preferential_attachment_churn(4, 4, 1706);
        let incremental = measure(&g, ProbeEngine::Incremental, 16, 60, 1);
        let journal = measure(&g, ProbeEngine::Journal, 16, 60, 1);
        let cloning = measure(&g, ProbeEngine::Cloning, 16, 60, 1);
        assert_eq!(incremental.flow.to_bits(), journal.flow.to_bits());
        assert_eq!(incremental.flow.to_bits(), cloning.flow.to_bits());
        assert_eq!(incremental.selected, journal.selected);
        assert_eq!(incremental.selected, cloning.selected);
    }

    #[test]
    fn engines_agree_on_a_tiny_chain() {
        // A fast three-way differential run through the real measurement
        // path: all engines must land on bit-identical selections.
        let g = diamond_chain(3);
        let incremental = measure(&g, ProbeEngine::Incremental, 12, 60, 1);
        let journal = measure(&g, ProbeEngine::Journal, 12, 60, 1);
        let cloning = measure(&g, ProbeEngine::Cloning, 12, 60, 1);
        assert_eq!(incremental.flow.to_bits(), journal.flow.to_bits());
        assert_eq!(incremental.flow.to_bits(), cloning.flow.to_bits());
        assert_eq!(incremental.selected, journal.selected);
        assert_eq!(incremental.selected, cloning.selected);
        assert_eq!(incremental.name, "incremental_probes");
    }

    #[test]
    fn bench6_snapshot_emits_valid_shape() {
        let bench = IncrementalBench {
            workloads: vec![IncrementalWorkload {
                workload: "diamond_chain".into(),
                graph: "diamond_chain(links=2)".into(),
                budget: 8,
                samples: 100,
                rows: vec![],
                speedup_incremental_vs_journal: 3.0,
                speedup_incremental_vs_cloning: 9.0,
            }],
            min_speedup_incremental_vs_journal: 3.0,
        };
        let json = bench.to_json();
        assert!(json.contains("\"bench\": \"incremental_churn\""));
        assert!(json.contains("\"min_speedup_incremental_vs_journal\": 3.000"));
        assert!(json.contains("\"speedup_incremental_vs_cloning\": 9.000"));
    }

    #[test]
    fn snapshot_emits_valid_shape() {
        // A tiny run: both engines agree and the JSON mentions both rows.
        let bench = ChurnBench {
            graph: "diamond_chain(links=2)".into(),
            budget: 8,
            samples: 100,
            speedup_cloning_vs_journal: 2.5,
            rows: vec![],
        };
        let json = bench.to_json();
        assert!(json.contains("\"bench\": \"probe_churn\""));
        assert!(json.contains("\"speedup_cloning_vs_journal\": 2.500"));
    }
}
