//! Experiment runner CLI.
//!
//! ```text
//! experiments list                 # show available experiment ids
//! experiments all [--paper-scale]  # run everything
//! experiments fig5a fig9b ...      # run specific figures
//! experiments bench3               # candidate-race snapshot → BENCH_3.json
//! experiments bench5               # probe-churn snapshot → BENCH_5.json
//! experiments bench6               # incremental-engine snapshot → BENCH_6.json
//! experiments bench7               # serve-throughput snapshot → BENCH_7.json
//! experiments bench8               # wide-lane sampling snapshot → BENCH_8.json
//!   --paper-scale   use the paper's full sizes (slow)
//!   --seed <n>      master seed (default 42)
//!   --out <dir>     CSV output directory (default results/)
//!   --reps <n>      repetitions per bench configuration (default 2)
//! ```

use std::path::PathBuf;
use std::time::Instant;

use flowmax_bench::{candidate_race, probe_churn, registry, serve_bench, wide_lanes, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::reduced();
    let mut seed = 42u64;
    let mut out = PathBuf::from("results");
    let mut reps = 2u32;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--paper-scale" => scale = Scale::paper_scale(),
            "--reps" => {
                i += 1;
                reps = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--reps needs an integer");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }));
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }

    // The candidate-race snapshot lives outside the figure registry: it
    // emits the machine-readable BENCH_3.json perf-trajectory artifact.
    if ids.iter().any(|s| s == "bench3") {
        let started = Instant::now();
        let bench = candidate_race::run(&scale, reps);
        print!("{}", bench.to_json());
        let path = PathBuf::from("BENCH_3.json");
        match bench.write_json(&path) {
            Ok(()) => println!(
                "# candidate_race completed in {:.1?}; wrote {}",
                started.elapsed(),
                path.display()
            ),
            Err(err) => {
                eprintln!("error: could not write {}: {err}", path.display());
                std::process::exit(1);
            }
        }
        ids.retain(|s| s != "bench3");
        if ids.is_empty() {
            return;
        }
    }

    // The probe-churn snapshot: journal vs clone-based structural probing
    // (BENCH_5.json, the PR-5 perf-trajectory artifact).
    if ids.iter().any(|s| s == "bench5") {
        let started = Instant::now();
        let bench = probe_churn::run(&scale, reps);
        print!("{}", bench.to_json());
        let path = PathBuf::from("BENCH_5.json");
        match bench.write_json(&path) {
            Ok(()) => println!(
                "# probe_churn completed in {:.1?}; wrote {}",
                started.elapsed(),
                path.display()
            ),
            Err(err) => {
                eprintln!("error: could not write {}: {err}", path.display());
                std::process::exit(1);
            }
        }
        ids.retain(|s| s != "bench5");
        if ids.is_empty() {
            return;
        }
    }

    // The incremental-engine snapshot: O(touched) probing and replay-based
    // commits vs the journal and clone references (BENCH_6.json, the PR-6
    // perf-trajectory artifact).
    if ids.iter().any(|s| s == "bench6") {
        let started = Instant::now();
        let bench = probe_churn::run_bench6(&scale, reps);
        print!("{}", bench.to_json());
        let path = PathBuf::from("BENCH_6.json");
        match bench.write_json(&path) {
            Ok(()) => println!(
                "# incremental_churn completed in {:.1?}; wrote {}",
                started.elapsed(),
                path.display()
            ),
            Err(err) => {
                eprintln!("error: could not write {}: {err}", path.display());
                std::process::exit(1);
            }
        }
        ids.retain(|s| s != "bench6");
        if ids.is_empty() {
            return;
        }
    }

    // The serve-throughput snapshot: warm FlowServer (resident graph,
    // coalescing, persistent pool) vs cold per-query sessions
    // (BENCH_7.json, the PR-7 perf-trajectory artifact).
    if ids.iter().any(|s| s == "bench7") {
        let started = Instant::now();
        let bench = serve_bench::run(&scale, reps);
        print!("{}", bench.to_json());
        let path = PathBuf::from("BENCH_7.json");
        match bench.write_json(&path) {
            Ok(()) => println!(
                "# serve_throughput completed in {:.1?}; wrote {}",
                started.elapsed(),
                path.display()
            ),
            Err(err) => {
                eprintln!("error: could not write {}: {err}", path.display());
                std::process::exit(1);
            }
        }
        ids.retain(|s| s != "bench7");
        if ids.is_empty() {
            return;
        }
    }

    // The wide-lane snapshot: SIMD lane blocks at 64/256/512 worlds per
    // BFS pass vs the pinned scalar reference kernel (BENCH_8.json, the
    // PR-8 perf-trajectory artifact).
    if ids.iter().any(|s| s == "bench8") {
        let started = Instant::now();
        let bench = wide_lanes::run(&scale, reps);
        print!("{}", bench.to_json());
        let path = PathBuf::from("BENCH_8.json");
        match bench.write_json(&path) {
            Ok(()) => println!(
                "# wide_lanes completed in {:.1?}; wrote {}",
                started.elapsed(),
                path.display()
            ),
            Err(err) => {
                eprintln!("error: could not write {}: {err}", path.display());
                std::process::exit(1);
            }
        }
        ids.retain(|s| s != "bench8");
        if ids.is_empty() {
            return;
        }
    }

    let all = registry();
    if ids.is_empty() || ids.iter().any(|s| s == "list") {
        println!("available experiments (run with `experiments all` or by id):");
        for e in &all {
            println!("  {:<10} {}", e.id, e.description);
        }
        return;
    }

    let selected: Vec<_> = if ids.iter().any(|s| s == "all") {
        all.iter().collect()
    } else {
        let chosen: Vec<_> = all
            .iter()
            .filter(|e| ids.contains(&e.id.to_string()))
            .collect();
        let known: Vec<&str> = all.iter().map(|e| e.id).collect();
        for id in &ids {
            if !known.contains(&id.as_str()) {
                eprintln!("unknown experiment {id:?}; try `experiments list`");
                std::process::exit(2);
            }
        }
        chosen
    };

    for e in selected {
        let started = Instant::now();
        let report = (e.run)(&scale, seed);
        report.print();
        if let Err(err) = report.write_csv(&out) {
            eprintln!("warning: could not write CSV for {}: {err}", e.id);
        }
        println!(
            "# completed in {:.1?}; csv: {}/{}.csv\n",
            started.elapsed(),
            out.display(),
            e.id
        );
    }
}
