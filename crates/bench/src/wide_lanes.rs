//! The wide-lane snapshot behind `BENCH_8.json`: batched-sampling
//! throughput of the SIMD lane-block kernel at widths 1, 4 and 8 (64, 256
//! and 512 possible worlds per BFS pass) on one large Erdős–Rényi graph.
//!
//! Width 1 is the pinned scalar reference kernel — byte-for-byte the
//! pre-widening code path. The wider rows run the structure-of-arrays coin
//! loop and the blocked lane-BFS over the same world labels, so every row
//! estimates from the **same possible worlds**: reachability and flow
//! estimates are asserted bit-identical across all widths before any
//! number is reported. The ratio is therefore pure kernel wall time.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;
use std::time::Instant;

use flowmax_datasets::{suggest_query, ErdosConfig};
use flowmax_graph::EdgeSubset;
use flowmax_sampling::{ParallelEstimator, SeedSequence};

use crate::Scale;

/// One measured lane width.
#[derive(Debug, Clone)]
pub struct LaneMeasurement {
    /// Lane words per block (1, 4 or 8).
    pub lane_words: usize,
    /// Possible worlds sampled per BFS pass (`64 * lane_words`).
    pub worlds_per_block: u32,
    /// Best wall time for the whole sample budget, milliseconds.
    pub total_ms: f64,
    /// Sampled possible worlds per second of wall time.
    pub worlds_per_sec: f64,
    /// Throughput ratio against the width-1 reference row.
    pub speedup_vs_narrow: f64,
}

/// The full `BENCH_8` snapshot.
#[derive(Debug, Clone)]
pub struct WideLanesBench {
    /// Workload shape.
    pub graph: String,
    /// Possible worlds sampled per width.
    pub samples: u32,
    /// Worker threads driving the estimator.
    pub threads: usize,
    /// One row per lane width, narrow first.
    pub rows: Vec<LaneMeasurement>,
    /// Throughput ratio `width-8 / width-1` — the headline number.
    pub speedup_wide_vs_narrow: f64,
}

/// Runs the snapshot: the same sample budget through the estimator at lane
/// widths 1, 4 and 8, best-of-`reps` wall time each, with reachability and
/// flow estimates asserted bit-identical across widths first.
pub fn run(scale: &Scale, reps: u32) -> WideLanesBench {
    let vertices = scale.pick(5_000, 300);
    let samples: u32 = scale.pick(4_096, 256);
    let threads = 1;
    let graph = ErdosConfig::paper(vertices, 8.0).generate(11);
    let query = suggest_query(&graph);
    let full = EdgeSubset::full(&graph);
    let seq = SeedSequence::new(7);

    // The lane/seed contract first: every width must estimate from the
    // same worlds. One reachability and one flow pass per width, all
    // compared bit-for-bit against the width-1 reference.
    let reference = ParallelEstimator::new(threads);
    let reach_ref = reference.sample_reachability(&graph, &full, query, samples, &seq);
    let flow_ref = reference.sample_flow(&graph, &full, query, false, samples, &seq);
    for lane_words in [4usize, 8] {
        let wide = ParallelEstimator::new(threads).with_lane_words(lane_words);
        assert_eq!(
            reach_ref,
            wide.sample_reachability(&graph, &full, query, samples, &seq),
            "width-{lane_words} reachability diverged from the narrow reference"
        );
        assert_eq!(
            flow_ref,
            wide.sample_flow(&graph, &full, query, false, samples, &seq),
            "width-{lane_words} flow diverged from the narrow reference"
        );
    }

    let mut rows = Vec::new();
    let mut narrow_ms = f64::INFINITY;
    for lane_words in [1usize, 4, 8] {
        let engine = ParallelEstimator::new(threads).with_lane_words(lane_words);
        // One discarded warmup pass, then best-of-`reps` wall time.
        engine.sample_reachability(&graph, &full, query, samples, &seq);
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            engine.sample_reachability(&graph, &full, query, samples, &seq);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        if lane_words == 1 {
            narrow_ms = best * 1e3;
        }
        rows.push(LaneMeasurement {
            lane_words,
            worlds_per_block: 64 * lane_words as u32,
            total_ms: best * 1e3,
            worlds_per_sec: samples as f64 / best.max(1e-9),
            speedup_vs_narrow: narrow_ms / (best * 1e3).max(1e-9),
        });
    }

    let speedup = rows.last().expect("three rows").speedup_vs_narrow;
    WideLanesBench {
        graph: format!(
            "erdos(n={}, m={})",
            graph.vertex_count(),
            graph.edge_count()
        ),
        samples,
        threads,
        rows,
        speedup_wide_vs_narrow: speedup,
    }
}

impl WideLanesBench {
    /// Renders the snapshot as pretty-printed JSON (assembled by hand — no
    /// external crates in the build environment; every emitted value is a
    /// plain number or an escape-free ASCII string).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"wide_lanes\",");
        let _ = writeln!(s, "  \"graph\": \"{}\",", self.graph);
        let _ = writeln!(s, "  \"samples\": {},", self.samples);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(
            s,
            "  \"speedup_wide_vs_narrow\": {:.3},",
            self.speedup_wide_vs_narrow
        );
        let _ = writeln!(s, "  \"configs\": [");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"lane_words\": {},", r.lane_words);
            let _ = writeln!(s, "      \"worlds_per_block\": {},", r.worlds_per_block);
            let _ = writeln!(s, "      \"total_ms\": {:.3},", r.total_ms);
            let _ = writeln!(s, "      \"worlds_per_sec\": {:.1},", r.worlds_per_sec);
            let _ = writeln!(s, "      \"speedup_vs_narrow\": {:.3}", r.speedup_vs_narrow);
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Writes the JSON snapshot to `path`.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_emits_valid_shape() {
        let bench = WideLanesBench {
            graph: "erdos(n=10, m=20)".into(),
            samples: 128,
            threads: 1,
            speedup_wide_vs_narrow: 2.125,
            rows: vec![LaneMeasurement {
                lane_words: 8,
                worlds_per_block: 512,
                total_ms: 10.0,
                worlds_per_sec: 12_800.0,
                speedup_vs_narrow: 2.125,
            }],
        };
        let json = bench.to_json();
        assert!(json.contains("\"bench\": \"wide_lanes\""));
        assert!(json.contains("\"speedup_wide_vs_narrow\": 2.125"));
        assert!(json.contains("\"worlds_per_block\": 512"));
    }

    #[test]
    fn tiny_run_is_width_invariant_and_reports_all_rows() {
        // The full measurement path at toy scale: bit-identity across
        // widths is asserted inside `run`; here we check the report shape.
        let bench = run(&Scale::reduced(), 1);
        assert_eq!(bench.rows.len(), 3);
        assert_eq!(bench.rows[0].lane_words, 1);
        assert_eq!(bench.rows[2].lane_words, 8);
        assert_eq!(bench.rows[2].worlds_per_block, 512);
        assert!((bench.rows[0].speedup_vs_narrow - 1.0).abs() < 1e-9);
        assert!(bench.rows.iter().all(|r| r.worlds_per_sec > 0.0));
    }
}
