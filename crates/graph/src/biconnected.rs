//! Biconnected components and articulation vertices (Hopcroft–Tarjan).
//!
//! The F-tree (§5.3) is "inspired by the block-cut tree"; this module
//! provides the classical static decomposition \[14\], \[35\] used as
//! * the reference oracle that validates the incrementally maintained F-tree
//!   in tests, and
//! * a substrate for the [`crate::block_cut::BlockCutTree`].
//!
//! The DFS is iterative, so million-vertex graphs do not overflow the call
//! stack.

use crate::graph::ProbabilisticGraph;
use crate::ids::{EdgeId, VertexId};
use crate::subgraph::EdgeSubset;

/// The biconnected decomposition of an active subgraph.
#[derive(Debug, Clone)]
pub struct BiconnectedDecomposition {
    /// Maximal biconnected blocks, each given by its edge set. Bridges form
    /// single-edge blocks.
    pub blocks: Vec<Vec<EdgeId>>,
    /// `articulation[v]` is `true` iff removing `v` disconnects its component.
    pub articulation: Vec<bool>,
}

impl BiconnectedDecomposition {
    /// Ids of all articulation vertices.
    pub fn articulation_vertices(&self) -> Vec<VertexId> {
        self.articulation
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| VertexId::from_index(i))
            .collect()
    }

    /// Blocks that are cycles or larger (≥ 2 edges). Per the paper's
    /// refinement (§2 "Bi-connected components"), single-edge blocks
    /// (bridges) are treated as mono-connected, so only these blocks require
    /// Monte-Carlo sampling.
    pub fn cyclic_blocks(&self) -> impl Iterator<Item = &Vec<EdgeId>> {
        self.blocks.iter().filter(|b| b.len() >= 2)
    }

    /// Distinct vertices of a block.
    pub fn block_vertices(&self, graph: &ProbabilisticGraph, block: &[EdgeId]) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = block
            .iter()
            .flat_map(|&e| {
                let (a, b) = graph.endpoints(e);
                [a, b]
            })
            .collect();
        vs.sort();
        vs.dedup();
        vs
    }
}

struct Frame {
    vertex: VertexId,
    parent_edge: Option<EdgeId>,
    cursor: usize,
}

/// Computes biconnected components and articulation vertices of the subgraph
/// induced by `active` edges.
///
/// Isolated vertices produce no blocks. Runs in `O(|V| + |E|)`.
pub fn biconnected_components(
    graph: &ProbabilisticGraph,
    active: &EdgeSubset,
) -> BiconnectedDecomposition {
    let n = graph.vertex_count();
    let mut disc = vec![0u32; n];
    let mut low = vec![0u32; n];
    let mut articulation = vec![false; n];
    let mut blocks = Vec::new();
    let mut edge_stack: Vec<EdgeId> = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();
    let mut timer: u32 = 0;

    for root in graph.vertices() {
        if disc[root.index()] != 0 {
            continue;
        }
        timer += 1;
        disc[root.index()] = timer;
        low[root.index()] = timer;
        stack.push(Frame {
            vertex: root,
            parent_edge: None,
            cursor: 0,
        });
        let mut root_children = 0usize;

        while let Some(frame) = stack.last_mut() {
            let v = frame.vertex;
            let nbrs = graph.neighbor_slice(v);
            if frame.cursor < nbrs.len() {
                let (w, e) = nbrs[frame.cursor];
                frame.cursor += 1;
                if !active.contains(e) || frame.parent_edge == Some(e) {
                    continue;
                }
                if disc[w.index()] == 0 {
                    // Tree edge.
                    edge_stack.push(e);
                    timer += 1;
                    disc[w.index()] = timer;
                    low[w.index()] = timer;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push(Frame {
                        vertex: w,
                        parent_edge: Some(e),
                        cursor: 0,
                    });
                } else if disc[w.index()] < disc[v.index()] {
                    // Back edge to an ancestor.
                    edge_stack.push(e);
                    low[v.index()] = low[v.index()].min(disc[w.index()]);
                }
            } else {
                // v is fully explored.
                let parent_edge = frame.parent_edge;
                stack.pop();
                if let Some(parent) = stack.last() {
                    let u = parent.vertex;
                    low[u.index()] = low[u.index()].min(low[v.index()]);
                    if low[v.index()] >= disc[u.index()] {
                        // u separates the subtree of v: pop one block.
                        let pe = parent_edge.expect("non-root frame has a parent edge");
                        let mut block = Vec::new();
                        while let Some(top) = edge_stack.pop() {
                            block.push(top);
                            if top == pe {
                                break;
                            }
                        }
                        blocks.push(block);
                        if u != root || root_children >= 2 {
                            articulation[u.index()] = true;
                        }
                    }
                }
            }
        }
    }

    BiconnectedDecomposition {
        blocks,
        articulation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::probability::Probability;
    use crate::weight::Weight;

    fn p5() -> Probability {
        Probability::new(0.5).unwrap()
    }

    fn build(n: usize, edges: &[(u32, u32)]) -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(n, Weight::ONE);
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v), p5()).unwrap();
        }
        b.build()
    }

    #[test]
    fn single_edge_is_one_bridge_block() {
        let g = build(2, &[(0, 1)]);
        let d = biconnected_components(&g, &EdgeSubset::full(&g));
        assert_eq!(d.blocks.len(), 1);
        assert_eq!(d.blocks[0].len(), 1);
        assert!(d.articulation_vertices().is_empty());
    }

    #[test]
    fn path_graph_every_inner_vertex_is_articulation() {
        let g = build(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = biconnected_components(&g, &EdgeSubset::full(&g));
        assert_eq!(d.blocks.len(), 3, "each path edge is its own bridge block");
        assert_eq!(d.articulation_vertices(), vec![VertexId(1), VertexId(2)]);
        assert_eq!(d.cyclic_blocks().count(), 0);
    }

    #[test]
    fn triangle_is_single_block_without_articulation() {
        let g = build(3, &[(0, 1), (1, 2), (2, 0)]);
        let d = biconnected_components(&g, &EdgeSubset::full(&g));
        assert_eq!(d.blocks.len(), 1);
        assert_eq!(d.blocks[0].len(), 3);
        assert!(d.articulation_vertices().is_empty());
        assert_eq!(d.cyclic_blocks().count(), 1);
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        // Classic bowtie: 0-1-2-0 and 2-3-4-2; vertex 2 is the cut vertex.
        let g = build(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let d = biconnected_components(&g, &EdgeSubset::full(&g));
        assert_eq!(d.blocks.len(), 2);
        assert!(d.blocks.iter().all(|b| b.len() == 3));
        assert_eq!(d.articulation_vertices(), vec![VertexId(2)]);
    }

    #[test]
    fn square_with_tail() {
        // 0-1-2-3-0 square, 2-4 tail: block {square}, bridge {2-4}; cut at 2.
        let g = build(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (2, 4)]);
        let d = biconnected_components(&g, &EdgeSubset::full(&g));
        assert_eq!(d.blocks.len(), 2);
        let sizes: Vec<usize> = {
            let mut s: Vec<_> = d.blocks.iter().map(|b| b.len()).collect();
            s.sort();
            s
        };
        assert_eq!(sizes, vec![1, 4]);
        assert_eq!(d.articulation_vertices(), vec![VertexId(2)]);
    }

    #[test]
    fn respects_active_subset() {
        // Square 0-1-2-3-0 but with edge 3-0 deactivated: becomes a path.
        let g = build(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut active = EdgeSubset::full(&g);
        active.remove(EdgeId(3));
        let d = biconnected_components(&g, &active);
        assert_eq!(d.blocks.len(), 3);
        assert_eq!(d.cyclic_blocks().count(), 0);
        assert_eq!(d.articulation_vertices(), vec![VertexId(1), VertexId(2)]);
    }

    #[test]
    fn disconnected_components_processed_independently() {
        let g = build(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)]);
        let d = biconnected_components(&g, &EdgeSubset::full(&g));
        assert_eq!(d.blocks.len(), 3); // triangle + 2 bridges
        assert_eq!(d.articulation_vertices(), vec![VertexId(4)]);
    }

    #[test]
    fn blocks_partition_edges() {
        let g = build(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
            ],
        );
        let d = biconnected_components(&g, &EdgeSubset::full(&g));
        let mut all: Vec<u32> = d.blocks.iter().flatten().map(|e| e.0).collect();
        all.sort();
        let expected: Vec<u32> = (0..g.edge_count() as u32).collect();
        assert_eq!(all, expected, "every active edge in exactly one block");
    }

    #[test]
    fn block_vertices_helper() {
        let g = build(3, &[(0, 1), (1, 2), (2, 0)]);
        let d = biconnected_components(&g, &EdgeSubset::full(&g));
        let vs = d.block_vertices(&g, &d.blocks[0]);
        assert_eq!(vs, vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn root_articulation_detection() {
        // Star centred at 0: 0 is an articulation vertex (3 children).
        let g = build(4, &[(0, 1), (0, 2), (0, 3)]);
        let d = biconnected_components(&g, &EdgeSubset::full(&g));
        assert_eq!(d.articulation_vertices(), vec![VertexId(0)]);
        assert_eq!(d.blocks.len(), 3);
    }

    #[test]
    fn empty_graph_and_isolated_vertices() {
        let g = build(3, &[]);
        let d = biconnected_components(&g, &EdgeSubset::full(&g));
        assert!(d.blocks.is_empty());
        assert!(d.articulation_vertices().is_empty());
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        let n = 100_000;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = build(n as usize, &edges);
        let d = biconnected_components(&g, &EdgeSubset::full(&g));
        assert_eq!(d.blocks.len(), (n - 1) as usize);
    }
}
