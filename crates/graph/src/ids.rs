//! Strongly-typed identifiers for vertices and edges.
//!
//! Both ids are thin wrappers around `u32`: the evaluation graphs of the paper
//! go up to ~1.1M vertices / ~3M edges (YouTube), so 32 bits keep hot
//! structures (adjacency lists, component vertex sets) at half the size of
//! `usize` on 64-bit targets while leaving ample headroom.

use std::fmt;

/// Identifier of a vertex in a [`crate::ProbabilisticGraph`].
///
/// Vertex ids are dense: a graph with `n` vertices uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

/// Identifier of an edge in a [`crate::ProbabilisticGraph`].
///
/// Edge ids are dense: a graph with `m` edges uses ids `0..m`. An edge id
/// identifies the *undirected* edge; both adjacency entries of an edge share
/// one id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl VertexId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a vertex id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "vertex index out of range");
        VertexId(index as u32)
    }
}

impl EdgeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an edge id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "edge index out of range");
        EdgeId(index as u32)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(raw: u32) -> Self {
        VertexId(raw)
    }
}

impl From<u32> for EdgeId {
    fn from(raw: u32) -> Self {
        EdgeId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v, VertexId(42));
        assert_eq!(format!("{v:?}"), "v42");
        assert_eq!(format!("{v}"), "42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from_index(7);
        assert_eq!(e.index(), 7);
        assert_eq!(format!("{e:?}"), "e7");
        assert_eq!(format!("{e}"), "7");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(3) > EdgeId(0));
    }

    #[test]
    fn ids_are_compact() {
        assert_eq!(std::mem::size_of::<VertexId>(), 4);
        assert_eq!(std::mem::size_of::<EdgeId>(), 4);
        assert_eq!(std::mem::size_of::<Option<VertexId>>(), 8);
    }

    #[test]
    fn from_u32_conversions() {
        assert_eq!(VertexId::from(9u32), VertexId(9));
        assert_eq!(EdgeId::from(9u32), EdgeId(9));
    }
}
