//! Exact possible-world enumeration.
//!
//! Computing reachability probabilities is #P-hard in general (§3, \[5\]), but
//! for graphs (or F-tree components) with few uncertain edges the full
//! `2^|E_{<1}|` world space can be enumerated exactly. This module is the
//! ground truth used by tests, by the `Exact` component estimator, and by the
//! Fig. 1 running-example reproduction (whose flow values 2.51 / 1.59 / 2.02
//! the paper states without derivation).

use crate::error::GraphError;
use crate::graph::ProbabilisticGraph;
use crate::ids::{EdgeId, VertexId};
use crate::subgraph::EdgeSubset;
use crate::traversal::Bfs;

/// Default cap on the number of uncertain edges enumerated exactly
/// (`2^24 ≈ 16.7M` worlds is the most a test or small component should pay).
pub const DEFAULT_ENUMERATION_CAP: usize = 24;

/// Exact per-vertex reachability probabilities from `source` in the subgraph
/// restricted to `domain` edges.
///
/// Edges with `P(e) = 1` are not enumerated (they exist in every world), so
/// the cost is `O(2^u · BFS)` where `u` is the number of *uncertain* edges in
/// the domain.
///
/// Returns a vector indexed by vertex id with `Pr[source ↔ v]`
/// (`result[source] == 1`).
///
/// # Errors
///
/// [`GraphError::TooManyEdgesForEnumeration`] if the domain has more than
/// `cap` uncertain edges.
pub fn exact_reachability(
    graph: &ProbabilisticGraph,
    domain: &EdgeSubset,
    source: VertexId,
    cap: usize,
) -> Result<Vec<f64>, GraphError> {
    let certain: Vec<EdgeId> = domain
        .iter()
        .filter(|&e| graph.probability(e).is_certain())
        .collect();
    let uncertain: Vec<EdgeId> = domain
        .iter()
        .filter(|&e| !graph.probability(e).is_certain())
        .collect();
    if uncertain.len() > cap {
        return Err(GraphError::TooManyEdgesForEnumeration {
            edges: uncertain.len(),
            max: cap,
        });
    }

    let mut reach = vec![0.0f64; graph.vertex_count()];
    let mut bfs = Bfs::new(graph.vertex_count());
    let mut world = EdgeSubset::new(graph.edge_count());
    let n_worlds: u64 = 1u64 << uncertain.len();

    for mask in 0..n_worlds {
        world.clear();
        for e in &certain {
            world.insert(*e);
        }
        let mut prob = 1.0;
        for (bit, &e) in uncertain.iter().enumerate() {
            let p = graph.probability(e).value();
            if mask >> bit & 1 == 1 {
                world.insert(e);
                prob *= p;
            } else {
                prob *= 1.0 - p;
            }
        }
        bfs.run(
            graph,
            source,
            |e| world.contains(e),
            |v| {
                reach[v.index()] += prob;
            },
        );
    }
    Ok(reach)
}

/// Exact expected information flow `E(flow(Q, G'))` (Def. 3) of the subgraph
/// restricted to `domain`, by full world enumeration.
///
/// `include_query` selects whether `W(Q)` itself is counted (the paper's
/// examples exclude it; see DESIGN.md §3.3).
pub fn exact_expected_flow(
    graph: &ProbabilisticGraph,
    domain: &EdgeSubset,
    query: VertexId,
    include_query: bool,
    cap: usize,
) -> Result<f64, GraphError> {
    let reach = exact_reachability(graph, domain, query, cap)?;
    let mut flow = 0.0;
    for v in graph.vertices() {
        if v == query && !include_query {
            continue;
        }
        flow += reach[v.index()] * graph.weight(v).value();
    }
    Ok(flow)
}

/// Exact probability that `source` and `target` are connected in the
/// subgraph restricted to `domain` (two-terminal reliability, Def. 2).
pub fn exact_two_terminal(
    graph: &ProbabilisticGraph,
    domain: &EdgeSubset,
    source: VertexId,
    target: VertexId,
    cap: usize,
) -> Result<f64, GraphError> {
    Ok(exact_reachability(graph, domain, source, cap)?[target.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::probability::Probability;
    use crate::weight::Weight;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    /// Q --0.5-- A --0.5-- B, unit weights.
    fn chain() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        let q = b.add_vertex(Weight::ONE);
        let a = b.add_vertex(Weight::ONE);
        let bb = b.add_vertex(Weight::ONE);
        b.add_edge(q, a, p(0.5)).unwrap();
        b.add_edge(a, bb, p(0.5)).unwrap();
        b.build()
    }

    #[test]
    fn chain_reachability() {
        let g = chain();
        let r = exact_reachability(
            &g,
            &EdgeSubset::full(&g),
            VertexId(0),
            DEFAULT_ENUMERATION_CAP,
        )
        .unwrap();
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert!((r[1] - 0.5).abs() < 1e-12);
        assert!((r[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn chain_flow_excludes_query_by_default_semantics() {
        let g = chain();
        let f = exact_expected_flow(
            &g,
            &EdgeSubset::full(&g),
            VertexId(0),
            false,
            DEFAULT_ENUMERATION_CAP,
        )
        .unwrap();
        assert!((f - 0.75).abs() < 1e-12);
        let f_incl = exact_expected_flow(
            &g,
            &EdgeSubset::full(&g),
            VertexId(0),
            true,
            DEFAULT_ENUMERATION_CAP,
        )
        .unwrap();
        assert!((f_incl - 1.75).abs() < 1e-12);
    }

    #[test]
    fn triangle_two_terminal_matches_inclusion_exclusion() {
        // Q-A (0.5), A-B (0.5), Q-B (0.5): Pr[Q↔B] = p_QB + (1-p_QB)·p_QA·p_AB
        let mut b = GraphBuilder::new();
        let q = b.add_vertex(Weight::ONE);
        let a = b.add_vertex(Weight::ONE);
        let v = b.add_vertex(Weight::ONE);
        b.add_edge(q, a, p(0.5)).unwrap();
        b.add_edge(a, v, p(0.5)).unwrap();
        b.add_edge(q, v, p(0.5)).unwrap();
        let g = b.build();
        let r = exact_two_terminal(
            &g,
            &EdgeSubset::full(&g),
            VertexId(0),
            VertexId(2),
            DEFAULT_ENUMERATION_CAP,
        )
        .unwrap();
        let expected = 0.5 + 0.5 * 0.25;
        assert!((r - expected).abs() < 1e-12, "{r} vs {expected}");
    }

    #[test]
    fn certain_edges_are_not_enumerated() {
        // 30 certain edges would blow a 2^30 enumeration if counted.
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..31).map(|_| b.add_vertex(Weight::ONE)).collect();
        for i in 0..30 {
            b.add_edge(vs[i], vs[i + 1], Probability::ONE).unwrap();
        }
        let g = b.build();
        let r = exact_reachability(
            &g,
            &EdgeSubset::full(&g),
            VertexId(0),
            DEFAULT_ENUMERATION_CAP,
        )
        .unwrap();
        assert!(r.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn cap_is_enforced() {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..10).map(|_| b.add_vertex(Weight::ONE)).collect();
        for i in 0..9 {
            b.add_edge(vs[i], vs[i + 1], p(0.5)).unwrap();
        }
        let g = b.build();
        let err = exact_reachability(&g, &EdgeSubset::full(&g), VertexId(0), 4).unwrap_err();
        assert!(matches!(
            err,
            GraphError::TooManyEdgesForEnumeration { edges: 9, max: 4 }
        ));
    }

    #[test]
    fn restricted_domain_disconnects() {
        let g = chain();
        let domain = EdgeSubset::from_edges(g.edge_count(), [EdgeId(0)]);
        let r = exact_reachability(&g, &domain, VertexId(0), DEFAULT_ENUMERATION_CAP).unwrap();
        assert!((r[1] - 0.5).abs() < 1e-12);
        assert_eq!(r[2], 0.0, "edge outside domain never exists");
    }

    #[test]
    fn reachability_is_symmetric_in_undirected_graphs() {
        let g = chain();
        let full = EdgeSubset::full(&g);
        let from_q = exact_reachability(&g, &full, VertexId(0), DEFAULT_ENUMERATION_CAP).unwrap();
        let from_b = exact_reachability(&g, &full, VertexId(2), DEFAULT_ENUMERATION_CAP).unwrap();
        assert!((from_q[2] - from_b[0]).abs() < 1e-12);
    }
}
