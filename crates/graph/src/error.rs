//! Error types for graph construction and queries.

use std::fmt;

use crate::ids::{EdgeId, VertexId};

/// Errors raised by graph construction and graph queries.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A probability outside `(0, 1]` (or non-finite) was supplied.
    InvalidProbability(f64),
    /// A negative or non-finite vertex weight was supplied.
    InvalidWeight(f64),
    /// A vertex id referenced a vertex that does not exist.
    VertexOutOfBounds {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices in the graph.
        vertex_count: usize,
    },
    /// An edge id referenced an edge that does not exist.
    EdgeOutOfBounds {
        /// The offending edge id.
        edge: EdgeId,
        /// Number of edges in the graph.
        edge_count: usize,
    },
    /// A self-loop `(v, v)` was supplied; the model uses simple graphs.
    SelfLoop(VertexId),
    /// The same undirected vertex pair was supplied twice.
    DuplicateEdge {
        /// First endpoint.
        a: VertexId,
        /// Second endpoint.
        b: VertexId,
    },
    /// The graph is too large for exact possible-world enumeration.
    TooManyEdgesForEnumeration {
        /// Number of uncertain edges requested.
        edges: usize,
        /// Enumeration cap that was exceeded.
        max: usize,
    },
    /// An I/O or parse problem while reading a graph from text.
    Parse {
        /// 1-based line number (0 when unknown, e.g. unexpected EOF).
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidProbability(p) => {
                write!(
                    f,
                    "invalid edge probability {p}: must be finite and in (0, 1]"
                )
            }
            GraphError::InvalidWeight(w) => {
                write!(f, "invalid vertex weight {w}: must be finite and >= 0")
            }
            GraphError::VertexOutOfBounds {
                vertex,
                vertex_count,
            } => {
                write!(
                    f,
                    "vertex {vertex:?} out of bounds (graph has {vertex_count} vertices)"
                )
            }
            GraphError::EdgeOutOfBounds { edge, edge_count } => {
                write!(
                    f,
                    "edge {edge:?} out of bounds (graph has {edge_count} edges)"
                )
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at vertex {v:?} is not allowed"),
            GraphError::DuplicateEdge { a, b } => {
                write!(f, "duplicate undirected edge ({a:?}, {b:?})")
            }
            GraphError::TooManyEdgesForEnumeration { edges, max } => {
                write!(
                    f,
                    "{edges} uncertain edges exceed the exact-enumeration cap of {max} \
                     (2^{edges} possible worlds)"
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::InvalidProbability(1.5);
        assert!(e.to_string().contains("1.5"));
        let e = GraphError::SelfLoop(VertexId(3));
        assert!(e.to_string().contains("v3"));
        let e = GraphError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
