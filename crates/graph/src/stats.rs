//! Descriptive statistics of probabilistic graphs, used by dataset
//! generators' sanity tests and the experiment reports.

use crate::graph::ProbabilisticGraph;
use crate::subgraph::EdgeSubset;
use crate::traversal::connected_components;

/// Summary statistics of an uncertain graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub vertex_count: usize,
    /// `|E|`.
    pub edge_count: usize,
    /// Minimum vertex degree.
    pub min_degree: usize,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Mean vertex degree (`2|E| / |V|`).
    pub mean_degree: f64,
    /// Mean edge probability.
    pub mean_probability: f64,
    /// Sum of vertex weights.
    pub total_weight: f64,
    /// Number of connected components when all edges are active.
    pub component_count: usize,
    /// Size of the largest connected component.
    pub largest_component: usize,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn compute(graph: &ProbabilisticGraph) -> Self {
        let n = graph.vertex_count();
        let m = graph.edge_count();
        let (mut min_degree, mut max_degree) = (usize::MAX, 0usize);
        for v in graph.vertices() {
            let d = graph.degree(v);
            min_degree = min_degree.min(d);
            max_degree = max_degree.max(d);
        }
        if n == 0 {
            min_degree = 0;
        }
        let mean_probability = if m == 0 {
            0.0
        } else {
            graph
                .edges()
                .map(|(_, e)| e.probability.value())
                .sum::<f64>()
                / m as f64
        };
        let comps = connected_components(graph, &EdgeSubset::full(graph));
        GraphStats {
            vertex_count: n,
            edge_count: m,
            min_degree,
            max_degree,
            mean_degree: if n == 0 {
                0.0
            } else {
                2.0 * m as f64 / n as f64
            },
            mean_probability,
            total_weight: graph.total_weight(),
            component_count: comps.len(),
            largest_component: comps.iter().map(|c| c.len()).max().unwrap_or(0),
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} deg[{}..{}] mean_deg={:.2} mean_p={:.3} W={:.1} components={} (largest {})",
            self.vertex_count,
            self.edge_count,
            self.min_degree,
            self.max_degree,
            self.mean_degree,
            self.mean_probability,
            self.total_weight,
            self.component_count,
            self.largest_component,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::VertexId;
    use crate::probability::Probability;
    use crate::weight::Weight;

    #[test]
    fn stats_of_small_graph() {
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::new(2.0).unwrap());
        b.add_edge(VertexId(0), VertexId(1), Probability::new(0.4).unwrap())
            .unwrap();
        b.add_edge(VertexId(1), VertexId(2), Probability::new(0.6).unwrap())
            .unwrap();
        let g = b.build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertex_count, 4);
        assert_eq!(s.edge_count, 2);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.max_degree, 2);
        assert!((s.mean_degree - 1.0).abs() < 1e-12);
        assert!((s.mean_probability - 0.5).abs() < 1e-12);
        assert_eq!(s.total_weight, 8.0);
        assert_eq!(s.component_count, 2);
        assert_eq!(s.largest_component, 3);
        let shown = s.to_string();
        assert!(shown.contains("|V|=4"));
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = GraphBuilder::new().build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertex_count, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(s.mean_probability, 0.0);
        assert_eq!(s.component_count, 0);
        assert_eq!(s.largest_component, 0);
    }
}
