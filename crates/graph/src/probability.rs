//! Validated edge-existence probabilities.
//!
//! The paper's model maps every edge to a probability in the half-open
//! interval `(0, 1]` (an edge with probability 0 would never exist and is
//! simply absent from `E`). [`Probability`] enforces this invariant at
//! construction so the rest of the codebase can multiply and compare raw
//! `f64`s without re-validating.

use std::cmp::Ordering;
use std::fmt;

use crate::error::GraphError;

/// An edge-existence probability `p ∈ (0, 1]`.
///
/// The wrapper guarantees the value is finite, strictly positive and at most
/// one, which makes products of probabilities (path probabilities, world
/// probabilities) well behaved.
#[derive(Clone, Copy, PartialEq)]
pub struct Probability(f64);

impl Probability {
    /// Probability one: the edge exists in every possible world.
    pub const ONE: Probability = Probability(1.0);

    /// Creates a probability, validating `0 < p <= 1`.
    pub fn new(p: f64) -> Result<Self, GraphError> {
        if p.is_finite() && p > 0.0 && p <= 1.0 {
            Ok(Probability(p))
        } else {
            Err(GraphError::InvalidProbability(p))
        }
    }

    /// Creates a probability without validation.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the invariant is violated. Use [`Self::new`]
    /// for untrusted input.
    #[inline]
    pub fn new_unchecked(p: f64) -> Self {
        debug_assert!(
            p.is_finite() && p > 0.0 && p <= 1.0,
            "invalid probability {p}"
        );
        Probability(p)
    }

    /// Returns the raw probability value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns the complement `1 - p` (the probability the edge is absent).
    ///
    /// The complement may be zero (for `p = 1`), so it is returned as a raw
    /// `f64` rather than a `Probability`.
    #[inline]
    pub fn complement(self) -> f64 {
        1.0 - self.0
    }

    /// Returns `true` if the edge is certain (`p == 1`).
    #[inline]
    pub fn is_certain(self) -> bool {
        self.0 == 1.0
    }

    /// Negative log-probability, the additive weight used by the
    /// max-probability spanning tree baseline (`w(e) = -ln p(e)`, §7.2).
    #[inline]
    pub fn neg_ln(self) -> f64 {
        // p ∈ (0,1] ⇒ -ln p ∈ [0, ∞); p = 1 maps to exactly 0.
        -self.0.ln()
    }

    /// Multiplies two probabilities (probability that two independent edges
    /// both exist). The product stays in `(0, 1]`.
    #[inline]
    pub fn and(self, other: Probability) -> Probability {
        Probability(self.0 * other.0)
    }
}

impl Eq for Probability {}

impl Ord for Probability {
    fn cmp(&self, other: &Self) -> Ordering {
        // Valid probabilities are never NaN, so total order is safe.
        self.0
            .partial_cmp(&other.0)
            .expect("probability is never NaN")
    }
}

impl PartialOrd for Probability {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p={}", self.0)
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Probability {
    type Error = GraphError;

    fn try_from(p: f64) -> Result<Self, Self::Error> {
        Probability::new(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_range() {
        for p in [0.0001, 0.5, 0.999, 1.0] {
            assert_eq!(Probability::new(p).unwrap().value(), p);
        }
    }

    #[test]
    fn rejects_invalid_values() {
        for p in [
            0.0,
            -0.3,
            1.0001,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            assert!(Probability::new(p).is_err(), "{p} should be rejected");
        }
    }

    #[test]
    fn complement_and_certainty() {
        let p = Probability::new(0.25).unwrap();
        assert!((p.complement() - 0.75).abs() < 1e-12);
        assert!(!p.is_certain());
        assert!(Probability::ONE.is_certain());
        assert_eq!(Probability::ONE.complement(), 0.0);
    }

    #[test]
    fn neg_ln_is_zero_for_certain_edges() {
        assert_eq!(Probability::ONE.neg_ln(), 0.0);
        assert!(Probability::new(0.5).unwrap().neg_ln() > 0.0);
    }

    #[test]
    fn and_multiplies() {
        let a = Probability::new(0.5).unwrap();
        let b = Probability::new(0.4).unwrap();
        assert!((a.and(b).value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            Probability::new(0.9).unwrap(),
            Probability::new(0.1).unwrap(),
            Probability::new(0.5).unwrap(),
        ];
        v.sort();
        assert_eq!(v[0].value(), 0.1);
        assert_eq!(v[2].value(), 0.9);
    }

    #[test]
    fn try_from_f64() {
        assert!(Probability::try_from(0.7).is_ok());
        assert!(Probability::try_from(0.0).is_err());
    }
}
