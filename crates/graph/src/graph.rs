//! The immutable probabilistic-graph representation.
//!
//! A [`ProbabilisticGraph`] is the `G = (V, E, W, P)` of the paper's §3:
//! undirected, simple, with a positive information weight per vertex and an
//! existence probability per edge. Edge existence events are assumed
//! independent (the possible-world semantics of Eq. 1).
//!
//! The structure is immutable after construction (see
//! [`GraphBuilder`](crate::builder::GraphBuilder)); all algorithms in
//! `flowmax` operate on *subsets of edges* of a fixed graph, so adjacency is
//! stored once in compressed-sparse-row (CSR) form for cache-friendly
//! traversal of million-edge graphs.

use crate::error::GraphError;
use crate::ids::{EdgeId, VertexId};
use crate::probability::Probability;
use crate::weight::Weight;

/// An undirected probabilistic edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// First endpoint (the lower vertex id after normalization).
    pub source: VertexId,
    /// Second endpoint.
    pub target: VertexId,
    /// Existence probability `P(e) ∈ (0, 1]`.
    pub probability: Probability,
}

impl Edge {
    /// Returns the endpoint opposite to `v`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, v: VertexId) -> VertexId {
        debug_assert!(
            v == self.source || v == self.target,
            "{v:?} is not an endpoint"
        );
        if v == self.source {
            self.target
        } else {
            self.source
        }
    }

    /// Returns both endpoints as a `(source, target)` pair.
    #[inline]
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (self.source, self.target)
    }
}

/// An immutable uncertain graph `G = (V, E, W, P)`.
#[derive(Debug, Clone)]
pub struct ProbabilisticGraph {
    weights: Vec<Weight>,
    edges: Vec<Edge>,
    /// CSR offsets: `adj_offsets[v]..adj_offsets[v+1]` indexes `adj_entries`.
    adj_offsets: Vec<u32>,
    /// Flat adjacency entries `(neighbor, edge id)`, 2 per undirected edge.
    adj_entries: Vec<(VertexId, EdgeId)>,
}

impl ProbabilisticGraph {
    pub(crate) fn from_parts(weights: Vec<Weight>, edges: Vec<Edge>) -> Self {
        let n = weights.len();
        let mut degree = vec![0u32; n];
        for e in &edges {
            degree[e.source.index()] += 1;
            degree[e.target.index()] += 1;
        }
        let mut adj_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        adj_offsets.push(0);
        for d in &degree {
            acc += d;
            adj_offsets.push(acc);
        }
        let mut cursor: Vec<u32> = adj_offsets[..n].to_vec();
        let mut adj_entries = vec![(VertexId(0), EdgeId(0)); 2 * edges.len()];
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId::from_index(i);
            let cs = &mut cursor[e.source.index()];
            adj_entries[*cs as usize] = (e.target, id);
            *cs += 1;
            let ct = &mut cursor[e.target.index()];
            adj_entries[*ct as usize] = (e.source, id);
            *ct += 1;
        }
        ProbabilisticGraph {
            weights,
            edges,
            adj_offsets,
            adj_entries,
        }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.weights.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Information weight of a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn weight(&self, v: VertexId) -> Weight {
        self.weights[v.index()]
    }

    /// The edge record for an edge id.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Existence probability of an edge.
    #[inline]
    pub fn probability(&self, e: EdgeId) -> Probability {
        self.edges[e.index()].probability
    }

    /// Both endpoints of an edge.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e.index()].endpoints()
    }

    /// Checked vertex lookup.
    pub fn try_weight(&self, v: VertexId) -> Result<Weight, GraphError> {
        self.weights
            .get(v.index())
            .copied()
            .ok_or(GraphError::VertexOutOfBounds {
                vertex: v,
                vertex_count: self.vertex_count(),
            })
    }

    /// Checked edge lookup.
    pub fn try_edge(&self, e: EdgeId) -> Result<&Edge, GraphError> {
        self.edges
            .get(e.index())
            .ok_or(GraphError::EdgeOutOfBounds {
                edge: e,
                edge_count: self.edge_count(),
            })
    }

    /// Degree of a vertex (number of incident edges in the full graph).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let i = v.index();
        (self.adj_offsets[i + 1] - self.adj_offsets[i]) as usize
    }

    /// Iterates the neighbours of `v` as `(neighbor, connecting edge)` pairs.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl ExactSizeIterator<Item = (VertexId, EdgeId)> + '_ {
        let i = v.index();
        let range = self.adj_offsets[i] as usize..self.adj_offsets[i + 1] as usize;
        self.adj_entries[range].iter().copied()
    }

    /// Borrowed adjacency slice of `v`: `(neighbor, connecting edge)` pairs.
    ///
    /// Same contents as [`Self::neighbors`], but indexable — used by
    /// iterative DFS algorithms that need cursor-based resumption.
    #[inline]
    pub fn neighbor_slice(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        let i = v.index();
        &self.adj_entries[self.adj_offsets[i] as usize..self.adj_offsets[i + 1] as usize]
    }

    /// Iterates all vertex ids `0..n`.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> {
        (0..self.vertex_count() as u32).map(VertexId)
    }

    /// Iterates all edge ids `0..m`.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> {
        (0..self.edge_count() as u32).map(EdgeId)
    }

    /// Iterates all edge records together with their ids.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::from_index(i), e))
    }

    /// Finds the edge between `a` and `b`, if present.
    ///
    /// Scans the adjacency list of the lower-degree endpoint, so this is
    /// `O(min(deg(a), deg(b)))`.
    pub fn edge_between(&self, a: VertexId, b: VertexId) -> Option<EdgeId> {
        let (probe, other) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.neighbors(probe)
            .find(|&(n, _)| n == other)
            .map(|(_, e)| e)
    }

    /// Sum of all vertex weights: the maximum attainable expected flow
    /// (every vertex reached with probability one), useful for normalizing
    /// experiment output.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().map(|w| w.value()).sum()
    }

    /// Number of edges with `P(e) < 1`, i.e. the exponent of the possible-
    /// world count `2^|E_{<1}|` (§3).
    pub fn uncertain_edge_count(&self) -> usize {
        self.edges
            .iter()
            .filter(|e| !e.probability.is_certain())
            .count()
    }

    /// A deterministic 64-bit fingerprint of the full graph content —
    /// vertex weights, edge endpoints and probabilities, in definition
    /// order. Two graphs fingerprint equal iff they were built from the
    /// same sequence of vertices and edges (modulo a negligible collision
    /// probability), so the value is a stable identity for session caches
    /// keyed across processes and runs. It is **not** seeded per process
    /// (no `RandomState`): the same graph file fingerprints identically
    /// everywhere, which is what a serving client replays against.
    pub fn fingerprint(&self) -> u64 {
        // splitmix64-style mixing: absorb each word through an
        // add-then-mix round. Not cryptographic — a content id, not a MAC.
        fn mix(mut x: u64) -> u64 {
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }
        let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ mix(self.weights.len() as u64);
        h = mix(h ^ self.edges.len() as u64);
        for w in &self.weights {
            h = mix(h.wrapping_add(w.value().to_bits()));
        }
        for e in &self.edges {
            h = mix(h.wrapping_add((e.source.0 as u64) << 32 | e.target.0 as u64));
            h = mix(h.wrapping_add(e.probability.value().to_bits()));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Weight::ONE);
        let v1 = b.add_vertex(Weight::new(2.0).unwrap());
        let v2 = b.add_vertex(Weight::new(3.0).unwrap());
        b.add_edge(v0, v1, Probability::new(0.5).unwrap()).unwrap();
        b.add_edge(v1, v2, Probability::new(0.25).unwrap()).unwrap();
        b.add_edge(v2, v0, Probability::ONE).unwrap();
        b.build()
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = triangle();
        let b = triangle();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same content, same id");
        // Any content difference — weight, probability, or topology —
        // changes the fingerprint.
        let mut builder = GraphBuilder::new();
        let v0 = builder.add_vertex(Weight::ONE);
        let v1 = builder.add_vertex(Weight::new(2.0).unwrap());
        let v2 = builder.add_vertex(Weight::new(3.0).unwrap());
        builder
            .add_edge(v0, v1, Probability::new(0.5).unwrap())
            .unwrap();
        builder
            .add_edge(v1, v2, Probability::new(0.26).unwrap())
            .unwrap();
        builder.add_edge(v2, v0, Probability::ONE).unwrap();
        let c = builder.build();
        assert_ne!(a.fingerprint(), c.fingerprint(), "probability differs");
        let empty = GraphBuilder::new().build();
        assert_ne!(a.fingerprint(), empty.fingerprint());
    }

    #[test]
    fn counts_and_weights() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.weight(VertexId(2)).value(), 3.0);
        assert_eq!(g.total_weight(), 6.0);
        assert_eq!(g.uncertain_edge_count(), 2);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = triangle();
        for (id, e) in g.edges() {
            assert!(g
                .neighbors(e.source)
                .any(|(n, eid)| n == e.target && eid == id));
            assert!(g
                .neighbors(e.target)
                .any(|(n, eid)| n == e.source && eid == id));
        }
    }

    #[test]
    fn degrees() {
        let g = triangle();
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
            assert_eq!(g.neighbors(v).len(), 2);
        }
    }

    #[test]
    fn edge_between_finds_edges_both_ways() {
        let g = triangle();
        let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        assert_eq!(g.edge_between(VertexId(1), VertexId(0)), Some(e));
        let (a, b) = g.endpoints(e);
        assert_eq!((a.0.min(b.0), a.0.max(b.0)), (0, 1));
    }

    #[test]
    fn edge_between_absent() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Weight::ONE);
        let v1 = b.add_vertex(Weight::ONE);
        b.add_vertex(Weight::ONE);
        b.add_edge(v0, v1, Probability::new(0.5).unwrap()).unwrap();
        let g = b.build();
        assert_eq!(g.edge_between(VertexId(0), VertexId(2)), None);
    }

    #[test]
    fn edge_other_endpoint() {
        let g = triangle();
        let e = g.edge(EdgeId(0));
        assert_eq!(e.other(e.source), e.target);
        assert_eq!(e.other(e.target), e.source);
    }

    #[test]
    fn checked_lookups() {
        let g = triangle();
        assert!(g.try_weight(VertexId(99)).is_err());
        assert!(g.try_edge(EdgeId(99)).is_err());
        assert!(g.try_weight(VertexId(0)).is_ok());
        assert!(g.try_edge(EdgeId(0)).is_ok());
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert!(g.is_empty());
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.total_weight(), 0.0);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let mut b = GraphBuilder::new();
        b.add_vertex(Weight::ONE);
        b.add_vertex(Weight::ONE);
        let g = b.build();
        assert_eq!(g.degree(VertexId(0)), 0);
        assert_eq!(g.neighbors(VertexId(1)).len(), 0);
    }
}
