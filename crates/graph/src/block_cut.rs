//! The block-cut tree \[14\], \[35\], \[37\]: the static structure the F-tree
//! generalizes.
//!
//! Nodes are the biconnected blocks plus the articulation (cut) vertices;
//! a block is adjacent to every cut vertex it contains. The F-tree differs by
//! (a) rooting the structure at the query vertex `Q`, (b) merging bridge
//! blocks into tree-like *mono-connected* components, and (c) propagating
//! reachability probabilities through the structure (§2 "Bi-connected
//! components" / §5.3).

use crate::biconnected::{biconnected_components, BiconnectedDecomposition};
use crate::graph::ProbabilisticGraph;
use crate::ids::{EdgeId, VertexId};
use crate::subgraph::EdgeSubset;

/// Index of a block node within a [`BlockCutTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(pub u32);

/// A static block-cut tree of an active subgraph.
#[derive(Debug, Clone)]
pub struct BlockCutTree {
    /// Edge sets of each block.
    blocks: Vec<Vec<EdgeId>>,
    /// Vertex sets of each block (sorted).
    block_vertices: Vec<Vec<VertexId>>,
    /// Cut-vertex flags, indexed by vertex id.
    articulation: Vec<bool>,
    /// For each cut vertex: the blocks containing it.
    cut_blocks: Vec<Vec<BlockId>>,
}

impl BlockCutTree {
    /// Builds the block-cut tree of the subgraph induced by `active`.
    pub fn build(graph: &ProbabilisticGraph, active: &EdgeSubset) -> Self {
        let deco: BiconnectedDecomposition = biconnected_components(graph, active);
        let block_vertices: Vec<Vec<VertexId>> = deco
            .blocks
            .iter()
            .map(|b| deco.block_vertices(graph, b))
            .collect();
        let mut cut_blocks = vec![Vec::new(); graph.vertex_count()];
        for (i, vs) in block_vertices.iter().enumerate() {
            for &v in vs {
                if deco.articulation[v.index()] {
                    cut_blocks[v.index()].push(BlockId(i as u32));
                }
            }
        }
        BlockCutTree {
            blocks: deco.blocks,
            block_vertices,
            articulation: deco.articulation,
            cut_blocks,
        }
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Edge set of a block.
    pub fn block_edges(&self, b: BlockId) -> &[EdgeId] {
        &self.blocks[b.0 as usize]
    }

    /// Sorted vertex set of a block.
    pub fn block_vertex_set(&self, b: BlockId) -> &[VertexId] {
        &self.block_vertices[b.0 as usize]
    }

    /// Whether `v` is a cut (articulation) vertex.
    pub fn is_cut_vertex(&self, v: VertexId) -> bool {
        self.articulation[v.index()]
    }

    /// Blocks adjacent to a cut vertex (empty for non-cut vertices).
    pub fn blocks_of_cut_vertex(&self, v: VertexId) -> &[BlockId] {
        &self.cut_blocks[v.index()]
    }

    /// Iterates all block ids.
    pub fn block_ids(&self) -> impl ExactSizeIterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Number of tree adjacencies (block, cut-vertex) — in a valid block-cut
    /// tree this is `#blocks + #cut-vertices - #connected components` when the
    /// structure is viewed as a bipartite tree per component.
    pub fn adjacency_count(&self) -> usize {
        self.cut_blocks.iter().map(|b| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::probability::Probability;
    use crate::weight::Weight;

    fn build_graph(n: usize, edges: &[(u32, u32)]) -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(n, Weight::ONE);
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v), Probability::new(0.5).unwrap())
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn bowtie_tree_shape() {
        let g = build_graph(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let t = BlockCutTree::build(&g, &EdgeSubset::full(&g));
        assert_eq!(t.block_count(), 2);
        assert!(t.is_cut_vertex(VertexId(2)));
        assert!(!t.is_cut_vertex(VertexId(0)));
        assert_eq!(t.blocks_of_cut_vertex(VertexId(2)).len(), 2);
        assert_eq!(t.adjacency_count(), 2);
    }

    #[test]
    fn path_tree_is_a_caterpillar() {
        let g = build_graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let t = BlockCutTree::build(&g, &EdgeSubset::full(&g));
        assert_eq!(t.block_count(), 3);
        // Two cut vertices, each in two blocks: bipartite path B-c-B-c-B.
        assert_eq!(t.adjacency_count(), 4);
    }

    #[test]
    fn block_vertex_sets_are_sorted_and_complete() {
        let g = build_graph(3, &[(2, 1), (0, 2), (1, 0)]);
        let t = BlockCutTree::build(&g, &EdgeSubset::full(&g));
        assert_eq!(t.block_count(), 1);
        let b = t.block_ids().next().unwrap();
        assert_eq!(
            t.block_vertex_set(b),
            &[VertexId(0), VertexId(1), VertexId(2)]
        );
        assert_eq!(t.block_edges(b).len(), 3);
    }

    #[test]
    fn non_cut_vertex_has_no_blocks_listed() {
        let g = build_graph(2, &[(0, 1)]);
        let t = BlockCutTree::build(&g, &EdgeSubset::full(&g));
        assert!(t.blocks_of_cut_vertex(VertexId(0)).is_empty());
    }
}
