//! Possible-world semantics (§3, Eq. 1).
//!
//! A *possible world* of an uncertain graph is a deterministic graph that
//! keeps a subset of the edges. Worlds are represented as an [`EdgeSubset`] of
//! *existing* edges together with the *domain*: the set of edges whose
//! existence was decided (everything outside the domain is considered absent
//! and contributes no probability factor). For whole-graph semantics the
//! domain is all of `E`; for the F-tree's per-component sampling the domain is
//! the component's edge set.

use crate::graph::ProbabilisticGraph;
use crate::subgraph::EdgeSubset;

/// A sampled or enumerated deterministic realization of (part of) an
/// uncertain graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PossibleWorld {
    /// Edges that exist in this world. Always a subset of the domain it was
    /// produced from.
    pub existing: EdgeSubset,
}

impl PossibleWorld {
    /// Wraps an existing-edge subset as a world.
    pub fn new(existing: EdgeSubset) -> Self {
        PossibleWorld { existing }
    }
}

/// Computes the realization probability `Pr(g)` of a world relative to a
/// domain of decided edges (Eq. 1):
///
/// ```text
/// Pr(g) = Π_{e ∈ existing} P(e) · Π_{e ∈ domain \ existing} (1 − P(e))
/// ```
///
/// # Panics
///
/// Panics in debug builds if `existing` contains an edge outside `domain`.
pub fn world_probability(
    graph: &ProbabilisticGraph,
    domain: &EdgeSubset,
    existing: &EdgeSubset,
) -> f64 {
    let mut prob = 1.0;
    for e in domain.iter() {
        let p = graph.probability(e).value();
        if existing.contains(e) {
            prob *= p;
        } else {
            prob *= 1.0 - p;
        }
    }
    debug_assert!(
        existing.iter().all(|e| domain.contains(e)),
        "world outside its domain"
    );
    prob
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::EdgeId;
    use crate::probability::Probability;
    use crate::weight::Weight;

    /// Builds the two-edge graph used below: 0-1 (p=0.6), 1-2 (p=0.25).
    fn two_edges() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Weight::ONE);
        let v1 = b.add_vertex(Weight::ONE);
        let v2 = b.add_vertex(Weight::ONE);
        b.add_edge(v0, v1, Probability::new(0.6).unwrap()).unwrap();
        b.add_edge(v1, v2, Probability::new(0.25).unwrap()).unwrap();
        b.build()
    }

    #[test]
    fn full_world_probability() {
        let g = two_edges();
        let domain = EdgeSubset::full(&g);
        let world = EdgeSubset::full(&g);
        assert!((world_probability(&g, &domain, &world) - 0.6 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_world_probability() {
        let g = two_edges();
        let domain = EdgeSubset::full(&g);
        let world = EdgeSubset::for_graph(&g);
        assert!((world_probability(&g, &domain, &world) - 0.4 * 0.75).abs() < 1e-12);
    }

    #[test]
    fn mixed_world_probability() {
        let g = two_edges();
        let domain = EdgeSubset::full(&g);
        let world = EdgeSubset::from_edges(g.edge_count(), [EdgeId(0)]);
        assert!((world_probability(&g, &domain, &world) - 0.6 * 0.75).abs() < 1e-12);
    }

    #[test]
    fn restricted_domain_ignores_outside_edges() {
        let g = two_edges();
        let domain = EdgeSubset::from_edges(g.edge_count(), [EdgeId(1)]);
        let world = EdgeSubset::for_graph(&g);
        // Only edge 1 is decided: probability of it being absent.
        assert!((world_probability(&g, &domain, &world) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn world_probabilities_sum_to_one() {
        let g = two_edges();
        let domain = EdgeSubset::full(&g);
        let mut total = 0.0;
        for mask in 0u32..4 {
            let mut w = EdgeSubset::for_graph(&g);
            for bit in 0..2 {
                if mask >> bit & 1 == 1 {
                    w.insert(EdgeId(bit));
                }
            }
            total += world_probability(&g, &domain, &w);
        }
        assert!((total - 1.0).abs() < 1e-12);
    }
}
