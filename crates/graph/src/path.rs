//! Path utilities: unique paths and path probabilities.
//!
//! In a mono-connected (sub)graph the reachability probability between two
//! vertices is the product of the probabilities of the edges on their unique
//! path (Lemma 2). These helpers find such paths in an active subgraph and
//! evaluate the product.

use crate::graph::ProbabilisticGraph;
use crate::ids::{EdgeId, VertexId};
use crate::subgraph::EdgeSubset;

/// A simple path: the ordered list of traversed edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Ordered vertex sequence `v0, v1, ..., vn`.
    pub vertices: Vec<VertexId>,
    /// Ordered edge sequence; `edges[i]` connects `vertices[i]` and
    /// `vertices[i + 1]`.
    pub edges: Vec<EdgeId>,
}

impl Path {
    /// Number of edges (hops) on the path.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` for the trivial zero-hop path.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Product of edge probabilities along the path (Lemma 2: the exact
    /// two-terminal reliability when the path is unique).
    pub fn probability(&self, graph: &ProbabilisticGraph) -> f64 {
        self.edges
            .iter()
            .map(|&e| graph.probability(e).value())
            .product()
    }
}

/// Finds *a* shortest (fewest-hop) path from `source` to `target` through
/// active edges, or `None` if disconnected.
pub fn shortest_path(
    graph: &ProbabilisticGraph,
    active: &EdgeSubset,
    source: VertexId,
    target: VertexId,
) -> Option<Path> {
    if source == target {
        return Some(Path {
            vertices: vec![source],
            edges: Vec::new(),
        });
    }
    let n = graph.vertex_count();
    let mut parent: Vec<Option<(VertexId, EdgeId)>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[source.index()] = true;
    queue.push_back(source);
    'outer: while let Some(u) = queue.pop_front() {
        for (nb, e) in graph.neighbors(u) {
            if !visited[nb.index()] && active.contains(e) {
                visited[nb.index()] = true;
                parent[nb.index()] = Some((u, e));
                if nb == target {
                    break 'outer;
                }
                queue.push_back(nb);
            }
        }
    }
    if !visited[target.index()] {
        return None;
    }
    let mut vertices = vec![target];
    let mut edges = Vec::new();
    let mut cur = target;
    while let Some((prev, e)) = parent[cur.index()] {
        edges.push(e);
        vertices.push(prev);
        cur = prev;
    }
    vertices.reverse();
    edges.reverse();
    Some(Path { vertices, edges })
}

/// Counts simple paths between two vertices in the active subgraph, stopping
/// at `limit`. `count_paths(..., 2) == 1` certifies mono-connectivity of the
/// pair (Def. 5); `>= 2` certifies bi-connectivity (Def. 7).
pub fn count_simple_paths(
    graph: &ProbabilisticGraph,
    active: &EdgeSubset,
    source: VertexId,
    target: VertexId,
    limit: usize,
) -> usize {
    fn dfs(
        graph: &ProbabilisticGraph,
        active: &EdgeSubset,
        current: VertexId,
        target: VertexId,
        on_path: &mut Vec<bool>,
        found: &mut usize,
        limit: usize,
    ) {
        if *found >= limit {
            return;
        }
        if current == target {
            *found += 1;
            return;
        }
        on_path[current.index()] = true;
        for (nb, e) in graph.neighbors(current) {
            if active.contains(e) && !on_path[nb.index()] {
                dfs(graph, active, nb, target, on_path, found, limit);
                if *found >= limit {
                    break;
                }
            }
        }
        on_path[current.index()] = false;
    }

    let mut on_path = vec![false; graph.vertex_count()];
    let mut found = 0;
    dfs(
        graph,
        active,
        source,
        target,
        &mut on_path,
        &mut found,
        limit,
    );
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::probability::Probability;
    use crate::weight::Weight;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    /// Square 0-1-2-3-0 plus pendant 4 hanging off 2.
    fn square_with_tail() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..5).map(|_| b.add_vertex(Weight::ONE)).collect();
        b.add_edge(vs[0], vs[1], p(0.9)).unwrap(); // e0
        b.add_edge(vs[1], vs[2], p(0.8)).unwrap(); // e1
        b.add_edge(vs[2], vs[3], p(0.7)).unwrap(); // e2
        b.add_edge(vs[3], vs[0], p(0.6)).unwrap(); // e3
        b.add_edge(vs[2], vs[4], p(0.5)).unwrap(); // e4
        b.build()
    }

    #[test]
    fn shortest_path_found() {
        let g = square_with_tail();
        let active = EdgeSubset::full(&g);
        let path = shortest_path(&g, &active, VertexId(0), VertexId(4)).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path.vertices.first(), Some(&VertexId(0)));
        assert_eq!(path.vertices.last(), Some(&VertexId(4)));
    }

    #[test]
    fn trivial_path() {
        let g = square_with_tail();
        let active = EdgeSubset::full(&g);
        let path = shortest_path(&g, &active, VertexId(2), VertexId(2)).unwrap();
        assert!(path.is_empty());
        assert_eq!(path.probability(&g), 1.0);
    }

    #[test]
    fn disconnected_returns_none() {
        let g = square_with_tail();
        let active = EdgeSubset::for_graph(&g);
        assert!(shortest_path(&g, &active, VertexId(0), VertexId(4)).is_none());
    }

    #[test]
    fn path_probability_is_product() {
        let g = square_with_tail();
        let mut active = EdgeSubset::for_graph(&g);
        active.insert(EdgeId(1));
        active.insert(EdgeId(4));
        let path = shortest_path(&g, &active, VertexId(1), VertexId(4)).unwrap();
        assert!((path.probability(&g) - 0.8 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn count_paths_detects_bi_connectivity() {
        let g = square_with_tail();
        let active = EdgeSubset::full(&g);
        // 0 and 2 lie on the square: two simple paths.
        assert_eq!(
            count_simple_paths(&g, &active, VertexId(0), VertexId(2), 10),
            2
        );
        // 4 hangs off the square: still two (via both square sides).
        assert_eq!(
            count_simple_paths(&g, &active, VertexId(0), VertexId(4), 10),
            2
        );
    }

    #[test]
    fn count_paths_mono_connected_pair() {
        let g = square_with_tail();
        let mut active = EdgeSubset::full(&g);
        active.remove(EdgeId(3)); // break the square
        assert_eq!(
            count_simple_paths(&g, &active, VertexId(0), VertexId(2), 10),
            1
        );
    }

    #[test]
    fn count_paths_limit_short_circuits() {
        let g = square_with_tail();
        let active = EdgeSubset::full(&g);
        assert_eq!(
            count_simple_paths(&g, &active, VertexId(0), VertexId(2), 1),
            1
        );
    }
}
