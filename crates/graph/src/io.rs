//! Plain-text serialization of probabilistic graphs.
//!
//! Format (`flowmax-graph v1`):
//!
//! ```text
//! # optional comment lines anywhere
//! flowmax-graph v1
//! <vertex_count> <edge_count>
//! <weight of vertex 0>
//! ...
//! <u> <v> <probability>       (one line per edge)
//! ```
//!
//! The format is deliberately trivial so experiment outputs can be inspected
//! and graphs diffed; SNAP-style edge-list ingestion with synthesized
//! probabilities lives in `flowmax-datasets`.

use std::io::{BufRead, Write};

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::ProbabilisticGraph;
use crate::ids::VertexId;
use crate::probability::Probability;
use crate::weight::Weight;

const HEADER: &str = "flowmax-graph v1";

/// Writes `graph` in the `flowmax-graph v1` text format.
pub fn write_text<W: Write>(graph: &ProbabilisticGraph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "{HEADER}")?;
    writeln!(out, "{} {}", graph.vertex_count(), graph.edge_count())?;
    for v in graph.vertices() {
        writeln!(out, "{}", graph.weight(v).value())?;
    }
    for (_, e) in graph.edges() {
        writeln!(out, "{} {} {}", e.source, e.target, e.probability.value())?;
    }
    Ok(())
}

/// Reads a graph in the `flowmax-graph v1` text format.
pub fn read_text<R: BufRead>(input: R) -> Result<ProbabilisticGraph, GraphError> {
    let mut lines = input
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| match l {
            Ok(s) => {
                let t = s.trim();
                !t.is_empty() && !t.starts_with('#')
            }
            Err(_) => true,
        });

    let mut next_line = |what: &str| -> Result<(usize, String), GraphError> {
        match lines.next() {
            Some((n, Ok(s))) => Ok((n, s.trim().to_string())),
            Some((n, Err(e))) => Err(GraphError::Parse {
                line: n,
                message: e.to_string(),
            }),
            None => Err(GraphError::Parse {
                line: 0,
                message: format!("unexpected EOF, expected {what}"),
            }),
        }
    };

    let (n, header) = next_line("header")?;
    if header != HEADER {
        return Err(GraphError::Parse {
            line: n,
            message: format!("bad header {header:?}"),
        });
    }

    let (n, counts) = next_line("counts")?;
    let mut it = counts.split_whitespace();
    let parse_usize = |tok: Option<&str>, line: usize, what: &str| -> Result<usize, GraphError> {
        tok.ok_or_else(|| GraphError::Parse {
            line,
            message: format!("missing {what}"),
        })?
        .parse()
        .map_err(|e| GraphError::Parse {
            line,
            message: format!("bad {what}: {e}"),
        })
    };
    let vertex_count = parse_usize(it.next(), n, "vertex count")?;
    let edge_count = parse_usize(it.next(), n, "edge count")?;

    let mut builder = GraphBuilder::with_capacity(vertex_count, edge_count);
    for _ in 0..vertex_count {
        let (ln, s) = next_line("vertex weight")?;
        let w: f64 = s.parse().map_err(|e| GraphError::Parse {
            line: ln,
            message: format!("bad weight: {e}"),
        })?;
        builder.add_vertex(Weight::new(w)?);
    }
    for _ in 0..edge_count {
        let (ln, s) = next_line("edge")?;
        let mut it = s.split_whitespace();
        let u = parse_usize(it.next(), ln, "edge source")?;
        let v = parse_usize(it.next(), ln, "edge target")?;
        let p: f64 = it
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: ln,
                message: "missing probability".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: ln,
                message: format!("bad probability: {e}"),
            })?;
        builder.add_edge(
            VertexId::from_index(u),
            VertexId::from_index(v),
            Probability::new(p)?,
        )?;
    }
    Ok(builder.build())
}

/// Writes `graph` in Graphviz DOT format for visualization. Vertices are
/// labelled `id (weight)`, edges with their probability; edges in
/// `highlight` (e.g. a selected subgraph) are drawn bold red.
pub fn write_dot<W: Write>(
    graph: &ProbabilisticGraph,
    highlight: Option<&crate::subgraph::EdgeSubset>,
    mut out: W,
) -> std::io::Result<()> {
    writeln!(out, "graph flowmax {{")?;
    writeln!(out, "  node [shape=circle fontsize=10];")?;
    for v in graph.vertices() {
        writeln!(
            out,
            "  v{} [label=\"{} ({})\"];",
            v.0,
            v.0,
            graph.weight(v).value()
        )?;
    }
    for (id, e) in graph.edges() {
        let style = match highlight {
            Some(set) if set.contains(id) => " color=red penwidth=2.0",
            _ => "",
        };
        writeln!(
            out,
            "  v{} -- v{} [label=\"{:.2}\"{}];",
            e.source.0,
            e.target.0,
            e.probability.value(),
            style
        )?;
    }
    writeln!(out, "}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(Weight::new(1.5).unwrap());
        let v1 = b.add_vertex(Weight::new(2.0).unwrap());
        let v2 = b.add_vertex(Weight::ZERO);
        b.add_edge(v0, v1, Probability::new(0.25).unwrap()).unwrap();
        b.add_edge(v1, v2, Probability::ONE).unwrap();
        b.build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let g2 = read_text(Cursor::new(buf)).unwrap();
        assert_eq!(g2.vertex_count(), g.vertex_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for v in g.vertices() {
            assert_eq!(g2.weight(v), g.weight(v));
        }
        for (id, e) in g.edges() {
            let e2 = g2.edge(id);
            assert_eq!(e2.endpoints(), e.endpoints());
            assert_eq!(e2.probability, e.probability);
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\nflowmax-graph v1\n\n2 1\n# weights\n1\n1\n0 1 0.5\n";
        let g = read_text(Cursor::new(text)).unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_text(Cursor::new("not-a-graph\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn rejects_truncated_input() {
        let text = "flowmax-graph v1\n2 1\n1\n";
        let err = read_text(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn rejects_invalid_probability_in_file() {
        let text = "flowmax-graph v1\n2 1\n1\n1\n0 1 1.5\n";
        let err = read_text(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, GraphError::InvalidProbability(_)));
    }

    #[test]
    fn rejects_malformed_edge_line() {
        let text = "flowmax-graph v1\n2 1\n1\n1\n0 1\n";
        let err = read_text(Cursor::new(text)).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn dot_export_mentions_all_elements() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_dot(&g, None, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("graph flowmax {"));
        assert!(text.contains("v0 -- v1"));
        assert!(text.contains("0.25"));
        assert!(text.trim_end().ends_with('}'));
        assert!(!text.contains("color=red"));
    }

    #[test]
    fn dot_export_highlights_selection() {
        use crate::subgraph::EdgeSubset;
        let g = sample_graph();
        let mut sel = EdgeSubset::for_graph(&g);
        sel.insert(crate::ids::EdgeId(1));
        let mut buf = Vec::new();
        write_dot(&g, Some(&sel), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.matches("color=red").count(), 1);
    }
}
