//! Graph traversal over (sub)graphs and possible worlds.
//!
//! The hot path of every estimator in `flowmax` is a breadth-first search over
//! a sampled world, so [`Bfs`] keeps reusable scratch buffers and uses an
//! epoch-based visited set: resetting between runs is `O(1)` instead of
//! `O(|V|)`.

use crate::graph::ProbabilisticGraph;
use crate::ids::{EdgeId, VertexId};
use crate::subgraph::EdgeSubset;

/// Reusable breadth-first-search scratch space over a graph with a fixed
/// number of vertices.
#[derive(Debug, Clone)]
pub struct Bfs {
    /// `visited[v] == epoch` marks `v` visited in the current run.
    visited: Vec<u32>,
    epoch: u32,
    queue: Vec<VertexId>,
}

impl Bfs {
    /// Creates scratch space for graphs with `vertex_count` vertices.
    pub fn new(vertex_count: usize) -> Self {
        Bfs {
            visited: vec![0; vertex_count],
            epoch: 0,
            queue: Vec::new(),
        }
    }

    /// Starts a new traversal epoch, logically clearing the visited set.
    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap-around: hard-reset to keep correctness.
            self.visited.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    /// Returns `true` if `v` was visited during the latest traversal.
    #[inline]
    pub fn was_visited(&self, v: VertexId) -> bool {
        self.visited[v.index()] == self.epoch
    }

    /// Runs a BFS from `source` following only edges for which `edge_passes`
    /// returns `true`; invokes `on_visit` for every visited vertex (including
    /// `source`). Returns the number of visited vertices.
    pub fn run<F, V>(
        &mut self,
        graph: &ProbabilisticGraph,
        source: VertexId,
        mut edge_passes: F,
        mut on_visit: V,
    ) -> usize
    where
        F: FnMut(EdgeId) -> bool,
        V: FnMut(VertexId),
    {
        self.begin();
        let epoch = self.epoch;
        self.visited[source.index()] = epoch;
        self.queue.push(source);
        on_visit(source);
        let mut count = 1;
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for (n, e) in graph.neighbors(u) {
                if self.visited[n.index()] != epoch && edge_passes(e) {
                    self.visited[n.index()] = epoch;
                    self.queue.push(n);
                    on_visit(n);
                    count += 1;
                }
            }
        }
        count
    }

    /// Convenience: vertices reachable from `source` using only `active`
    /// edges.
    pub fn reachable(
        &mut self,
        graph: &ProbabilisticGraph,
        active: &EdgeSubset,
        source: VertexId,
    ) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.run(graph, source, |e| active.contains(e), |v| out.push(v));
        out
    }

    /// Convenience: whether `target` is reachable from `source` through
    /// `active` edges. Stops early when the target is found.
    pub fn is_reachable(
        &mut self,
        graph: &ProbabilisticGraph,
        active: &EdgeSubset,
        source: VertexId,
        target: VertexId,
    ) -> bool {
        if source == target {
            return true;
        }
        self.begin();
        let epoch = self.epoch;
        self.visited[source.index()] = epoch;
        self.queue.push(source);
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for (n, e) in graph.neighbors(u) {
                if self.visited[n.index()] != epoch && active.contains(e) {
                    if n == target {
                        return true;
                    }
                    self.visited[n.index()] = epoch;
                    self.queue.push(n);
                }
            }
        }
        false
    }
}

/// Computes the connected components of the subgraph induced by `active`
/// edges. Every vertex of the graph appears in exactly one component;
/// isolated vertices form singleton components.
pub fn connected_components(graph: &ProbabilisticGraph, active: &EdgeSubset) -> Vec<Vec<VertexId>> {
    let mut bfs = Bfs::new(graph.vertex_count());
    let mut assigned = vec![false; graph.vertex_count()];
    let mut components = Vec::new();
    for v in graph.vertices() {
        if assigned[v.index()] {
            continue;
        }
        let mut comp = Vec::new();
        bfs.run(
            graph,
            v,
            |e| active.contains(e),
            |u| {
                assigned[u.index()] = true;
                comp.push(u);
            },
        );
        components.push(comp);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::probability::Probability;
    use crate::weight::Weight;

    /// 0-1-2  3-4 (edges e0, e1, e2).
    fn two_paths() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..5).map(|_| b.add_vertex(Weight::ONE)).collect();
        b.add_edge(v[0], v[1], Probability::new(0.5).unwrap())
            .unwrap();
        b.add_edge(v[1], v[2], Probability::new(0.5).unwrap())
            .unwrap();
        b.add_edge(v[3], v[4], Probability::new(0.5).unwrap())
            .unwrap();
        b.build()
    }

    #[test]
    fn reachable_respects_active_set() {
        let g = two_paths();
        let mut bfs = Bfs::new(g.vertex_count());
        let mut active = EdgeSubset::for_graph(&g);
        active.insert(EdgeId(0));
        let mut r = bfs.reachable(&g, &active, VertexId(0));
        r.sort();
        assert_eq!(r, vec![VertexId(0), VertexId(1)]);
        assert!(bfs.was_visited(VertexId(1)));
        assert!(!bfs.was_visited(VertexId(2)));
    }

    #[test]
    fn reachable_full_component() {
        let g = two_paths();
        let mut bfs = Bfs::new(g.vertex_count());
        let active = EdgeSubset::full(&g);
        let mut r = bfs.reachable(&g, &active, VertexId(2));
        r.sort();
        assert_eq!(r, vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn is_reachable_early_exit_and_identity() {
        let g = two_paths();
        let mut bfs = Bfs::new(g.vertex_count());
        let active = EdgeSubset::full(&g);
        assert!(bfs.is_reachable(&g, &active, VertexId(0), VertexId(2)));
        assert!(!bfs.is_reachable(&g, &active, VertexId(0), VertexId(3)));
        assert!(bfs.is_reachable(&g, &active, VertexId(4), VertexId(4)));
    }

    #[test]
    fn epochs_isolate_runs() {
        let g = two_paths();
        let mut bfs = Bfs::new(g.vertex_count());
        let active = EdgeSubset::full(&g);
        bfs.reachable(&g, &active, VertexId(0));
        let r = bfs.reachable(&g, &active, VertexId(3));
        assert_eq!(r.len(), 2, "previous run must not leak visited marks");
        assert!(!bfs.was_visited(VertexId(0)));
    }

    #[test]
    fn components_cover_all_vertices() {
        let g = two_paths();
        let active = EdgeSubset::full(&g);
        let comps = connected_components(&g, &active);
        assert_eq!(comps.len(), 2);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        assert_eq!(total, g.vertex_count());
    }

    #[test]
    fn empty_active_set_gives_singletons() {
        let g = two_paths();
        let active = EdgeSubset::for_graph(&g);
        let comps = connected_components(&g, &active);
        assert_eq!(comps.len(), g.vertex_count());
        assert!(comps.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn visit_count_matches() {
        let g = two_paths();
        let mut bfs = Bfs::new(g.vertex_count());
        let active = EdgeSubset::full(&g);
        let count = bfs.run(&g, VertexId(0), |e| active.contains(e), |_| {});
        assert_eq!(count, 3);
    }
}
