//! Maximum-probability spanning trees (the *Dijkstra* baseline substrate).
//!
//! Transforming edge probabilities to additive costs `w(e) = −ln P(e)` turns
//! "most probable path" into "shortest path" \[32\], so running Dijkstra from
//! the query vertex yields, at every iteration, a spanning tree maximizing the
//! connection probability from `Q` to every settled vertex (§7.2 "Dijkstra").
//! The baseline activates the first `k` tree edges in settle order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::ProbabilisticGraph;
use crate::ids::{EdgeId, VertexId};
use crate::subgraph::EdgeSubset;

/// A most-probable-path spanning tree rooted at a source vertex.
#[derive(Debug, Clone)]
pub struct SpanningTree {
    /// The root (query) vertex.
    pub source: VertexId,
    /// Settled vertices in settle order (excluding the source), each with the
    /// tree edge that connected it.
    pub order: Vec<(VertexId, EdgeId)>,
    /// `path_probability[v]` = probability of the most probable path from the
    /// source to `v` (0 if unreachable, 1 for the source itself).
    pub path_probability: Vec<f64>,
}

impl SpanningTree {
    /// The first `k` tree edges in settle order — the Dijkstra baseline's
    /// edge selection for budget `k`.
    pub fn first_edges(&self, k: usize) -> Vec<EdgeId> {
        self.order.iter().take(k).map(|&(_, e)| e).collect()
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    vertex: VertexId,
    via_edge: Option<EdgeId>,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost: reverse the comparison. Costs are finite
        // non-negative (−ln p with p ∈ (0,1]), never NaN.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("costs are never NaN")
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes the maximum-probability spanning tree of the subgraph induced by
/// `active`, rooted at `source`, via Dijkstra on `−ln P(e)` costs.
pub fn max_probability_spanning_tree(
    graph: &ProbabilisticGraph,
    active: &EdgeSubset,
    source: VertexId,
) -> SpanningTree {
    let n = graph.vertex_count();
    let mut cost = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    let mut order = Vec::new();
    let mut heap = BinaryHeap::new();
    cost[source.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        vertex: source,
        via_edge: None,
    });

    while let Some(HeapEntry {
        cost: c,
        vertex: u,
        via_edge,
    }) = heap.pop()
    {
        if settled[u.index()] {
            continue;
        }
        settled[u.index()] = true;
        if let Some(e) = via_edge {
            order.push((u, e));
        }
        for (v, e) in graph.neighbors(u) {
            if settled[v.index()] || !active.contains(e) {
                continue;
            }
            let nc = c + graph.probability(e).neg_ln();
            if nc < cost[v.index()] {
                cost[v.index()] = nc;
                heap.push(HeapEntry {
                    cost: nc,
                    vertex: v,
                    via_edge: Some(e),
                });
            }
        }
    }

    let path_probability = cost
        .iter()
        .map(|&c| if c.is_finite() { (-c).exp() } else { 0.0 })
        .collect();
    SpanningTree {
        source,
        order,
        path_probability,
    }
}

/// Convenience: spanning tree over the *full* edge set.
pub fn max_probability_spanning_tree_full(
    graph: &ProbabilisticGraph,
    source: VertexId,
) -> SpanningTree {
    let active = EdgeSubset::full(graph);
    max_probability_spanning_tree(graph, &active, source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::probability::Probability;
    use crate::weight::Weight;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    /// Q connects to 2 directly (p=0.3) and via 1 (0.9 * 0.9 = 0.81).
    fn detour_graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        let q = b.add_vertex(Weight::ONE);
        let v1 = b.add_vertex(Weight::ONE);
        let v2 = b.add_vertex(Weight::ONE);
        b.add_edge(q, v2, p(0.3)).unwrap(); // e0: direct but weak
        b.add_edge(q, v1, p(0.9)).unwrap(); // e1
        b.add_edge(v1, v2, p(0.9)).unwrap(); // e2
        b.build()
    }

    #[test]
    fn prefers_more_probable_detour() {
        let g = detour_graph();
        let t = max_probability_spanning_tree_full(&g, VertexId(0));
        assert!((t.path_probability[2] - 0.81).abs() < 1e-12);
        // v2 must have been settled through edge e2, not e0.
        let (_, via) = t.order.iter().find(|&&(v, _)| v == VertexId(2)).unwrap();
        assert_eq!(*via, EdgeId(2));
    }

    #[test]
    fn settle_order_is_by_decreasing_probability() {
        let g = detour_graph();
        let t = max_probability_spanning_tree_full(&g, VertexId(0));
        assert_eq!(t.order.len(), 2);
        assert_eq!(
            t.order[0].0,
            VertexId(1),
            "0.9 path settles before 0.81 path"
        );
        assert_eq!(t.order[1].0, VertexId(2));
    }

    #[test]
    fn source_probability_is_one() {
        let g = detour_graph();
        let t = max_probability_spanning_tree_full(&g, VertexId(0));
        assert_eq!(t.path_probability[0], 1.0);
    }

    #[test]
    fn unreachable_vertices_get_zero() {
        let mut b = GraphBuilder::new();
        let q = b.add_vertex(Weight::ONE);
        let v1 = b.add_vertex(Weight::ONE);
        b.add_vertex(Weight::ONE); // isolated
        b.add_edge(q, v1, p(0.5)).unwrap();
        let g = b.build();
        let t = max_probability_spanning_tree_full(&g, VertexId(0));
        assert_eq!(t.path_probability[2], 0.0);
        assert_eq!(t.order.len(), 1);
    }

    #[test]
    fn respects_active_subset() {
        let g = detour_graph();
        let mut active = EdgeSubset::full(&g);
        active.remove(EdgeId(2));
        let t = max_probability_spanning_tree(&g, &active, VertexId(0));
        assert!(
            (t.path_probability[2] - 0.3).abs() < 1e-12,
            "must use the direct edge now"
        );
    }

    #[test]
    fn first_edges_truncates() {
        let g = detour_graph();
        let t = max_probability_spanning_tree_full(&g, VertexId(0));
        assert_eq!(t.first_edges(1).len(), 1);
        assert_eq!(t.first_edges(10).len(), 2);
    }

    #[test]
    fn certain_edges_have_zero_cost() {
        let mut b = GraphBuilder::new();
        let q = b.add_vertex(Weight::ONE);
        let v1 = b.add_vertex(Weight::ONE);
        b.add_edge(q, v1, Probability::ONE).unwrap();
        let g = b.build();
        let t = max_probability_spanning_tree_full(&g, VertexId(0));
        assert_eq!(t.path_probability[1], 1.0);
    }
}
