//! # flowmax-graph
//!
//! Probabilistic (uncertain) graph substrate for the `flowmax` workspace —
//! a from-scratch reproduction of *"Efficient Information Flow Maximization
//! in Probabilistic Graphs"* (Frey, Züfle, Emrich, Renz — TKDE 2018).
//!
//! This crate provides the `G = (V, E, W, P)` model of the paper's §3 and
//! every classical graph algorithm the F-tree builds upon:
//!
//! * [`ProbabilisticGraph`] / [`GraphBuilder`] — immutable CSR graphs with
//!   validated edge probabilities ([`Probability`]) and vertex information
//!   weights ([`Weight`]);
//! * [`EdgeSubset`] / [`SubgraphView`] — the `E' ⊆ E` subgraphs over which
//!   flow is maximized (Def. 4);
//! * possible-world semantics ([`world_probability`], Eq. 1) and **exact
//!   enumeration** ([`exact_reachability`], [`exact_expected_flow`]) — the
//!   ground truth for all tests;
//! * traversal ([`Bfs`], [`connected_components`]) and [`UnionFind`];
//! * Hopcroft–Tarjan [`biconnected_components`] and the
//!   [`BlockCutTree`] the F-tree is inspired by;
//! * [`max_probability_spanning_tree`] — the Dijkstra baseline of §7.2;
//! * plain-text graph [`io`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod error;
mod graph;
mod ids;
mod probability;
mod weight;

pub mod biconnected;
pub mod block_cut;
pub mod enumerate;
pub mod io;
pub mod path;
pub mod reliability;
pub mod spanning;
pub mod stats;
pub mod subgraph;
pub mod traversal;
pub mod union_find;
pub mod world;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{Edge, ProbabilisticGraph};
pub use ids::{EdgeId, VertexId};
pub use probability::Probability;
pub use weight::Weight;

pub use biconnected::{biconnected_components, BiconnectedDecomposition};
pub use block_cut::{BlockCutTree, BlockId};
pub use enumerate::{
    exact_expected_flow, exact_reachability, exact_two_terminal, DEFAULT_ENUMERATION_CAP,
};
pub use path::{count_simple_paths, shortest_path, Path};
pub use reliability::{flow_bounds, reliability_bounds, ReliabilityBounds};
pub use spanning::{
    max_probability_spanning_tree, max_probability_spanning_tree_full, SpanningTree,
};
pub use stats::GraphStats;
pub use subgraph::{EdgeSubset, SubgraphView};
pub use traversal::{connected_components, Bfs};
pub use union_find::UnionFind;
pub use world::{world_probability, PossibleWorld};
