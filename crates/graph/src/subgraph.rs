//! Edge subsets: the `G' = (V, E' ⊆ E)` subgraphs over which flow is
//! maximized.
//!
//! The optimization problem (Def. 4) searches over subgraphs of a fixed graph
//! that keep all vertices but activate at most `k` edges. [`EdgeSubset`] is a
//! compact bitset over edge ids, and [`SubgraphView`] pairs it with the parent
//! graph to offer filtered adjacency iteration.

use crate::graph::ProbabilisticGraph;
use crate::ids::{EdgeId, VertexId};

/// A set of *active* edges of a parent [`ProbabilisticGraph`], stored as a
/// bitset over dense edge ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSubset {
    bits: Vec<u64>,
    len: usize,
    capacity: usize,
}

impl EdgeSubset {
    /// Creates an empty subset able to hold edges of a graph with
    /// `edge_capacity` edges.
    pub fn new(edge_capacity: usize) -> Self {
        EdgeSubset {
            bits: vec![0; edge_capacity.div_ceil(64)],
            len: 0,
            capacity: edge_capacity,
        }
    }

    /// Creates an empty subset sized for `graph`.
    pub fn for_graph(graph: &ProbabilisticGraph) -> Self {
        Self::new(graph.edge_count())
    }

    /// Creates a subset containing every edge of `graph`.
    pub fn full(graph: &ProbabilisticGraph) -> Self {
        let mut s = Self::for_graph(graph);
        for e in graph.edge_ids() {
            s.insert(e);
        }
        s
    }

    /// Creates a subset from an iterator of edge ids.
    pub fn from_edges<I: IntoIterator<Item = EdgeId>>(edge_capacity: usize, edges: I) -> Self {
        let mut s = Self::new(edge_capacity);
        for e in edges {
            s.insert(e);
        }
        s
    }

    /// Number of active edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no edge is active.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum edge id capacity this subset was sized for.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tests whether `e` is active.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        let i = e.index();
        debug_assert!(i < self.capacity, "edge id beyond subset capacity");
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Activates `e`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, e: EdgeId) -> bool {
        let i = e.index();
        assert!(
            i < self.capacity,
            "edge id {i} beyond subset capacity {}",
            self.capacity
        );
        let word = &mut self.bits[i / 64];
        let mask = 1u64 << (i % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Deactivates `e`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, e: EdgeId) -> bool {
        let i = e.index();
        assert!(
            i < self.capacity,
            "edge id {i} beyond subset capacity {}",
            self.capacity
        );
        let word = &mut self.bits[i / 64];
        let mask = 1u64 << (i % 64);
        if *word & mask != 0 {
            *word &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes all edges.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.len = 0;
    }

    /// Iterates active edge ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.bits
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| BitIter {
                word,
                base: (wi * 64) as u32,
            })
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = EdgeId;

    #[inline]
    fn next(&mut self) -> Option<EdgeId> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(EdgeId(self.base + tz))
    }
}

/// A read-only view of a graph restricted to an active edge subset.
#[derive(Debug, Clone, Copy)]
pub struct SubgraphView<'g> {
    graph: &'g ProbabilisticGraph,
    active: &'g EdgeSubset,
}

impl<'g> SubgraphView<'g> {
    /// Creates a view of `graph` restricted to `active` edges.
    pub fn new(graph: &'g ProbabilisticGraph, active: &'g EdgeSubset) -> Self {
        debug_assert_eq!(active.capacity(), graph.edge_count());
        SubgraphView { graph, active }
    }

    /// The parent graph.
    #[inline]
    pub fn graph(&self) -> &'g ProbabilisticGraph {
        self.graph
    }

    /// The active edge subset.
    #[inline]
    pub fn active(&self) -> &'g EdgeSubset {
        self.active
    }

    /// Iterates the neighbours of `v` reachable through *active* edges.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + 'g {
        let active = self.active;
        self.graph
            .neighbors(v)
            .filter(move |&(_, e)| active.contains(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::probability::Probability;
    use crate::weight::Weight;

    fn path_graph(n: usize) -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        let first = b.add_vertices(n, Weight::ONE);
        for i in 0..n - 1 {
            b.add_edge(
                VertexId(first.0 + i as u32),
                VertexId(first.0 + i as u32 + 1),
                Probability::new(0.5).unwrap(),
            )
            .unwrap();
        }
        b.build()
    }

    #[test]
    fn insert_remove_contains() {
        let g = path_graph(5);
        let mut s = EdgeSubset::for_graph(&g);
        assert!(s.is_empty());
        assert!(s.insert(EdgeId(1)));
        assert!(!s.insert(EdgeId(1)), "double insert reports false");
        assert!(s.contains(EdgeId(1)));
        assert!(!s.contains(EdgeId(0)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(EdgeId(1)));
        assert!(!s.remove(EdgeId(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn iter_yields_sorted_ids() {
        let g = path_graph(200);
        let mut s = EdgeSubset::for_graph(&g);
        for id in [190, 3, 64, 65, 0, 127] {
            s.insert(EdgeId(id));
        }
        let got: Vec<u32> = s.iter().map(|e| e.0).collect();
        assert_eq!(got, vec![0, 3, 64, 65, 127, 190]);
    }

    #[test]
    fn full_contains_everything() {
        let g = path_graph(10);
        let s = EdgeSubset::full(&g);
        assert_eq!(s.len(), g.edge_count());
        for e in g.edge_ids() {
            assert!(s.contains(e));
        }
    }

    #[test]
    fn clear_resets() {
        let g = path_graph(10);
        let mut s = EdgeSubset::full(&g);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn from_edges_collects() {
        let s = EdgeSubset::from_edges(10, [EdgeId(2), EdgeId(7)]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(EdgeId(7)));
    }

    #[test]
    fn subgraph_view_filters_adjacency() {
        let g = path_graph(4); // edges: 0-1 (e0), 1-2 (e1), 2-3 (e2)
        let mut s = EdgeSubset::for_graph(&g);
        s.insert(EdgeId(0));
        let view = SubgraphView::new(&g, &s);
        let n1: Vec<_> = view.neighbors(VertexId(1)).collect();
        assert_eq!(n1, vec![(VertexId(0), EdgeId(0))]);
        assert_eq!(view.neighbors(VertexId(2)).count(), 0);
        assert_eq!(view.graph().vertex_count(), 4);
        assert_eq!(view.active().len(), 1);
    }

    #[test]
    fn capacity_zero_subset() {
        let s = EdgeSubset::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
