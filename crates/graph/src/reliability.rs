//! Analytic two-terminal reliability bounds.
//!
//! §2 of the paper surveys reliability bounds (\[3\], \[4\], \[9\], \[19\], \[29\]) as
//! an alternative to sampling and rejects them: the cheap ones are too loose,
//! the tight ones too expensive. This module implements the two cheap bounds
//! the paper explicitly discusses, so that the claim is *measurable* here
//! (see the `ablation` bench and the tests below):
//!
//! * **lower bound** — the probability of the most probable path \[19\],
//!   computed with the max-probability Dijkstra of [`crate::spanning`];
//! * **upper bound** — a min-cut argument: every `Q`–`v` connection crosses
//!   any cut separating them, so the probability that *some* edge of the cut
//!   exists (`1 − Π(1−p)` over the cut) bounds reachability from above. We
//!   use the cheap vertex-degree cuts at both endpoints.

use crate::graph::ProbabilisticGraph;
use crate::ids::VertexId;
use crate::spanning::max_probability_spanning_tree;
use crate::subgraph::EdgeSubset;

/// Two-sided analytic reachability bounds for every vertex.
#[derive(Debug, Clone)]
pub struct ReliabilityBounds {
    /// `lower[v]`: probability of the most probable `source`–`v` path.
    pub lower: Vec<f64>,
    /// `upper[v]`: degree-cut upper bound on `Pr[source ↔ v]`.
    pub upper: Vec<f64>,
}

impl ReliabilityBounds {
    /// Width of the bound interval for `v` (1 means vacuous).
    pub fn width(&self, v: VertexId) -> f64 {
        self.upper[v.index()] - self.lower[v.index()]
    }
}

/// Computes analytic reachability bounds from `source` over the `active`
/// subgraph in `O((|V| + |E|) log |V|)`.
pub fn reliability_bounds(
    graph: &ProbabilisticGraph,
    active: &EdgeSubset,
    source: VertexId,
) -> ReliabilityBounds {
    // Lower bound: best single path (exact if the path is unique, else a
    // valid under-approximation because any one path's existence implies
    // connectivity).
    let tree = max_probability_spanning_tree(graph, active, source);
    let lower = tree.path_probability;

    // Upper bound: the connection must cross the degree cut at v (all active
    // edges incident to v) and the one at the source.
    let cut_survival = |v: VertexId| -> f64 {
        let mut all_absent = 1.0;
        let mut has_edge = false;
        for (_, e) in graph.neighbors(v) {
            if active.contains(e) {
                has_edge = true;
                all_absent *= graph.probability(e).complement();
            }
        }
        if has_edge {
            1.0 - all_absent
        } else {
            0.0
        }
    };
    let source_cut = cut_survival(source);
    let upper = graph
        .vertices()
        .map(|v| {
            if v == source {
                1.0
            } else {
                cut_survival(v).min(source_cut)
            }
        })
        .collect();

    ReliabilityBounds { lower, upper }
}

/// Expected-flow bounds obtained by summing the per-vertex bounds (the same
/// aggregation as §6.3's `E_lb`/`E_ub`, but fully analytic).
pub fn flow_bounds(
    graph: &ProbabilisticGraph,
    active: &EdgeSubset,
    source: VertexId,
    include_query: bool,
) -> (f64, f64) {
    let bounds = reliability_bounds(graph, active, source);
    let mut lo = 0.0;
    let mut hi = 0.0;
    for v in graph.vertices() {
        if v == source && !include_query {
            continue;
        }
        let w = graph.weight(v).value();
        lo += bounds.lower[v.index()] * w;
        hi += bounds.upper[v.index()] * w;
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::enumerate::{exact_reachability, DEFAULT_ENUMERATION_CAP};
    use crate::probability::Probability;
    use crate::weight::Weight;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    /// Diamond: Q(0)-1, 1-3, Q-2, 2-3 — two disjoint paths to vertex 3.
    fn diamond() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::ONE);
        b.add_edge(VertexId(0), VertexId(1), p(0.8)).unwrap();
        b.add_edge(VertexId(1), VertexId(3), p(0.7)).unwrap();
        b.add_edge(VertexId(0), VertexId(2), p(0.6)).unwrap();
        b.add_edge(VertexId(2), VertexId(3), p(0.5)).unwrap();
        b.build()
    }

    #[test]
    fn bounds_bracket_exact_reachability() {
        let g = diamond();
        let active = EdgeSubset::full(&g);
        let bounds = reliability_bounds(&g, &active, VertexId(0));
        let exact = exact_reachability(&g, &active, VertexId(0), DEFAULT_ENUMERATION_CAP).unwrap();
        for v in g.vertices() {
            assert!(
                bounds.lower[v.index()] <= exact[v.index()] + 1e-12,
                "lower bound violated at {v:?}: {} > {}",
                bounds.lower[v.index()],
                exact[v.index()]
            );
            assert!(
                bounds.upper[v.index()] + 1e-12 >= exact[v.index()],
                "upper bound violated at {v:?}: {} < {}",
                bounds.upper[v.index()],
                exact[v.index()]
            );
        }
    }

    #[test]
    fn lower_bound_is_best_path() {
        let g = diamond();
        let active = EdgeSubset::full(&g);
        let bounds = reliability_bounds(&g, &active, VertexId(0));
        // Best path to 3: 0.8 · 0.7 = 0.56 (beats 0.6 · 0.5 = 0.30).
        assert!((bounds.lower[3] - 0.56).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_tight_on_unique_paths() {
        // A pure chain: the bound is exact (Lemma 2).
        let mut b = GraphBuilder::new();
        b.add_vertices(3, Weight::ONE);
        b.add_edge(VertexId(0), VertexId(1), p(0.5)).unwrap();
        b.add_edge(VertexId(1), VertexId(2), p(0.4)).unwrap();
        let g = b.build();
        let active = EdgeSubset::full(&g);
        let bounds = reliability_bounds(&g, &active, VertexId(0));
        let exact = exact_reachability(&g, &active, VertexId(0), DEFAULT_ENUMERATION_CAP).unwrap();
        for v in g.vertices() {
            assert!((bounds.lower[v.index()] - exact[v.index()]).abs() < 1e-12);
        }
    }

    #[test]
    fn upper_bound_uses_both_endpoint_cuts() {
        // Source with one weak edge: the source cut caps everything.
        let mut b = GraphBuilder::new();
        b.add_vertices(3, Weight::ONE);
        b.add_edge(VertexId(0), VertexId(1), p(0.1)).unwrap();
        b.add_edge(VertexId(1), VertexId(2), p(0.9)).unwrap();
        let g = b.build();
        let active = EdgeSubset::full(&g);
        let bounds = reliability_bounds(&g, &active, VertexId(0));
        assert!(
            bounds.upper[2] <= 0.1 + 1e-12,
            "source cut must cap vertex 2"
        );
    }

    #[test]
    fn disconnected_vertices_have_zero_bounds() {
        let g = diamond();
        let active = EdgeSubset::for_graph(&g); // nothing active
        let bounds = reliability_bounds(&g, &active, VertexId(0));
        assert_eq!(bounds.lower[3], 0.0);
        assert_eq!(bounds.upper[3], 0.0);
        assert_eq!(bounds.width(VertexId(3)), 0.0);
    }

    #[test]
    fn flow_bounds_bracket_exact_flow() {
        let g = diamond();
        let active = EdgeSubset::full(&g);
        let exact = crate::enumerate::exact_expected_flow(
            &g,
            &active,
            VertexId(0),
            false,
            DEFAULT_ENUMERATION_CAP,
        )
        .unwrap();
        let (lo, hi) = flow_bounds(&g, &active, VertexId(0), false);
        assert!(
            lo <= exact + 1e-12 && exact <= hi + 1e-12,
            "{lo} <= {exact} <= {hi}"
        );
    }

    #[test]
    fn paper_claim_bounds_are_loose_on_cyclic_graphs() {
        // The paper rejects these bounds as "not sufficiently effective":
        // verify the interval is substantially loose where cycles abound.
        let g = diamond();
        let active = EdgeSubset::full(&g);
        let bounds = reliability_bounds(&g, &active, VertexId(0));
        assert!(
            bounds.width(VertexId(3)) > 0.1,
            "expected a loose interval, got width {}",
            bounds.width(VertexId(3))
        );
    }
}
