//! Mutable construction of [`ProbabilisticGraph`]s.

use std::collections::HashSet;

use crate::error::GraphError;
use crate::graph::{Edge, ProbabilisticGraph};
use crate::ids::{EdgeId, VertexId};
use crate::probability::Probability;
use crate::weight::Weight;

/// Incremental builder for a [`ProbabilisticGraph`].
///
/// The builder validates the simple-graph invariants (no self-loops, no
/// duplicate undirected edges) and normalizes edge endpoints so that
/// `source < target`. `build` is `O(|V| + |E|)` and produces the immutable
/// CSR representation.
///
/// # Example
///
/// ```
/// use flowmax_graph::{GraphBuilder, Probability, Weight};
///
/// let mut b = GraphBuilder::new();
/// let q = b.add_vertex(Weight::ONE);
/// let v = b.add_vertex(Weight::new(5.0).unwrap());
/// b.add_edge(q, v, Probability::new(0.8).unwrap()).unwrap();
/// let g = b.build();
/// assert_eq!(g.vertex_count(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    weights: Vec<Weight>,
    edges: Vec<Edge>,
    seen: HashSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with pre-allocated capacity.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        GraphBuilder {
            weights: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
            seen: HashSet::with_capacity(edges),
        }
    }

    /// Adds a vertex with the given information weight and returns its id.
    pub fn add_vertex(&mut self, weight: Weight) -> VertexId {
        let id = VertexId::from_index(self.weights.len());
        self.weights.push(weight);
        id
    }

    /// Adds `n` vertices all carrying `weight`; returns the id of the first.
    ///
    /// Ids are assigned contiguously, so the added vertices are
    /// `first..first + n`.
    pub fn add_vertices(&mut self, n: usize, weight: Weight) -> VertexId {
        let first = VertexId::from_index(self.weights.len());
        self.weights.extend(std::iter::repeat_n(weight, n));
        first
    }

    /// Adds an undirected probabilistic edge.
    ///
    /// # Errors
    ///
    /// * [`GraphError::SelfLoop`] if `a == b`;
    /// * [`GraphError::VertexOutOfBounds`] if an endpoint was never added;
    /// * [`GraphError::DuplicateEdge`] if the pair was already connected.
    pub fn add_edge(
        &mut self,
        a: VertexId,
        b: VertexId,
        probability: Probability,
    ) -> Result<EdgeId, GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        let n = self.weights.len();
        for v in [a, b] {
            if v.index() >= n {
                return Err(GraphError::VertexOutOfBounds {
                    vertex: v,
                    vertex_count: n,
                });
            }
        }
        let key = (a.0.min(b.0), a.0.max(b.0));
        if !self.seen.insert(key) {
            return Err(GraphError::DuplicateEdge { a, b });
        }
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(Edge {
            source: VertexId(key.0),
            target: VertexId(key.1),
            probability,
        });
        Ok(id)
    }

    /// Returns `true` if the undirected pair `(a, b)` already has an edge.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.seen.contains(&(a.0.min(b.0), a.0.max(b.0)))
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.weights.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph, building the CSR adjacency.
    pub fn build(self) -> ProbabilisticGraph {
        ProbabilisticGraph::from_parts(self.weights, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex(Weight::ONE);
        assert_eq!(b.add_edge(v, v, p(0.5)), Err(GraphError::SelfLoop(v)));
    }

    #[test]
    fn rejects_unknown_vertex() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex(Weight::ONE);
        let err = b.add_edge(v, VertexId(5), p(0.5)).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfBounds { .. }));
    }

    #[test]
    fn rejects_duplicate_in_either_orientation() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(Weight::ONE);
        let c = b.add_vertex(Weight::ONE);
        b.add_edge(a, c, p(0.5)).unwrap();
        assert!(matches!(
            b.add_edge(c, a, p(0.9)),
            Err(GraphError::DuplicateEdge { .. })
        ));
        assert!(b.has_edge(a, c));
        assert!(b.has_edge(c, a));
    }

    #[test]
    fn normalizes_endpoint_order() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(Weight::ONE);
        let c = b.add_vertex(Weight::ONE);
        b.add_edge(c, a, p(0.5)).unwrap();
        let g = b.build();
        let (s, t) = g.endpoints(EdgeId(0));
        assert!(s < t);
    }

    #[test]
    fn add_vertices_bulk() {
        let mut b = GraphBuilder::new();
        let first = b.add_vertices(10, Weight::new(2.0).unwrap());
        assert_eq!(first, VertexId(0));
        assert_eq!(b.vertex_count(), 10);
        let second = b.add_vertices(5, Weight::ONE);
        assert_eq!(second, VertexId(10));
        let g = b.build();
        assert_eq!(g.weight(VertexId(3)).value(), 2.0);
        assert_eq!(g.weight(VertexId(12)).value(), 1.0);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = GraphBuilder::with_capacity(4, 4);
        let a = b.add_vertex(Weight::ONE);
        let c = b.add_vertex(Weight::ONE);
        b.add_edge(a, c, p(1.0)).unwrap();
        assert_eq!(b.edge_count(), 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }
}
