//! Disjoint-set union (union–find) with union by rank and path halving.
//!
//! Used for fast connectivity queries over sampled possible worlds: sampling
//! a world and union-ing its surviving edges is often cheaper than a BFS when
//! only a single reachability bit is needed.

use crate::ids::VertexId;

/// A disjoint-set forest over `n` dense vertex ids.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Finds the representative of `v`'s set (with path halving).
    #[inline]
    pub fn find(&mut self, v: VertexId) -> VertexId {
        let mut x = v.0;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return VertexId(x);
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were disjoint.
    pub fn union(&mut self, a: VertexId, b: VertexId) -> bool {
        let ra = self.find(a).0;
        let rb = self.find(b).0;
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// Tests whether `a` and `b` are in the same set.
    #[inline]
    pub fn connected(&mut self, a: VertexId, b: VertexId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Resets every element back to a singleton without reallocating.
    pub fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i as u32;
        }
        self.rank.fill(0);
        self.components = self.parent.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_disconnected() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        assert!(!uf.connected(VertexId(0), VertexId(1)));
        assert!(!uf.is_empty());
        assert_eq!(uf.len(), 4);
    }

    #[test]
    fn union_connects_transitively() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(VertexId(0), VertexId(1)));
        assert!(uf.union(VertexId(1), VertexId(2)));
        assert!(!uf.union(VertexId(0), VertexId(2)), "already merged");
        assert!(uf.connected(VertexId(0), VertexId(2)));
        assert!(!uf.connected(VertexId(0), VertexId(3)));
        assert_eq!(uf.component_count(), 3);
    }

    #[test]
    fn reset_restores_singletons() {
        let mut uf = UnionFind::new(3);
        uf.union(VertexId(0), VertexId(2));
        uf.reset();
        assert_eq!(uf.component_count(), 3);
        assert!(!uf.connected(VertexId(0), VertexId(2)));
    }

    #[test]
    fn large_chain_has_single_component() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(VertexId(i as u32), VertexId(i as u32 + 1));
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(VertexId(0), VertexId((n - 1) as u32)));
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }
}
