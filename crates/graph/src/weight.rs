//! Vertex information weights.
//!
//! The paper maps each vertex to a positive information weight
//! `W : V → R+` (Def. in §3). The weight is the amount of information a
//! vertex contributes to the query vertex if it is reachable. Weight zero is
//! allowed (used by the knapsack reduction in Theorem 1, where chain vertices
//! carry no information), hence the invariant is `w >= 0` and finite.

use std::fmt;

use crate::error::GraphError;

/// A non-negative, finite vertex information weight.
#[derive(Clone, Copy, PartialEq)]
pub struct Weight(f64);

impl Weight {
    /// Weight zero: the vertex carries no information (allowed; see the
    /// knapsack reduction of Theorem 1).
    pub const ZERO: Weight = Weight(0.0);

    /// Weight one: the "each node has one unit of information" setting used by
    /// the paper's running example (Fig. 1).
    pub const ONE: Weight = Weight(1.0);

    /// Creates a weight, validating `w >= 0` and finiteness.
    pub fn new(w: f64) -> Result<Self, GraphError> {
        if w.is_finite() && w >= 0.0 {
            Ok(Weight(w))
        } else {
            Err(GraphError::InvalidWeight(w))
        }
    }

    /// Creates a weight without validation.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the invariant is violated.
    #[inline]
    pub fn new_unchecked(w: f64) -> Self {
        debug_assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
        Weight(w)
    }

    /// Returns the raw weight value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Eq for Weight {}

impl Ord for Weight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("weight is never NaN")
    }
}

impl PartialOrd for Weight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w={}", self.0)
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Weight {
    type Error = GraphError;

    fn try_from(w: f64) -> Result<Self, Self::Error> {
        Weight::new(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_non_negative() {
        assert_eq!(Weight::new(0.0).unwrap().value(), 0.0);
        assert_eq!(Weight::new(10.5).unwrap().value(), 10.5);
    }

    #[test]
    fn rejects_negative_and_non_finite() {
        for w in [-1.0, f64::NAN, f64::INFINITY] {
            assert!(Weight::new(w).is_err());
        }
    }

    #[test]
    fn constants() {
        assert_eq!(Weight::ZERO.value(), 0.0);
        assert_eq!(Weight::ONE.value(), 1.0);
    }

    #[test]
    fn ordering() {
        assert!(Weight::new(2.0).unwrap() > Weight::ONE);
    }
}
