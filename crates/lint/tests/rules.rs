//! Fixture-driven self-tests: every rule L1–L7 must fire on a violating
//! snippet, honor the allowlist, honor reasoned inline suppressions, and
//! report suppression counts — plus a self-run proving the real workspace
//! is clean (the same check CI gates on).

use std::path::{Path, PathBuf};

use flowmax_lint::{lint_source, lint_workspace, Allowlist, RuleId};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn rules_fired(rel: &str, source: &str, allowlist: &Allowlist) -> Vec<RuleId> {
    lint_source(rel, source, allowlist)
        .findings
        .iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn l1_fires_on_hash_iteration_and_spares_keyed_access() {
    let src = fixture("l1_hash_iteration.rs");
    let report = lint_source("crates/core/src/fixture.rs", &src, &Allowlist::empty());
    let l1: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::L1)
        .collect();
    assert_eq!(l1.len(), 3, "retain, values, and the for-loop: {l1:?}");
    assert!(l1.iter().any(|f| f.message.contains("retain")));
    assert!(l1.iter().any(|f| f.message.contains("values")));
    assert!(l1.iter().any(|f| f.message.contains("for .. in")));
}

#[test]
fn l1_is_scoped_to_the_deterministic_crates() {
    let src = fixture("l1_hash_iteration.rs");
    // datasets is outside L1's scope; so is bench.
    assert!(rules_fired("crates/datasets/src/fixture.rs", &src, &Allowlist::empty()).is_empty());
    assert!(rules_fired("crates/bench/src/fixture.rs", &src, &Allowlist::empty()).is_empty());
    // graph and sampling are inside.
    assert!(!rules_fired("crates/graph/src/fixture.rs", &src, &Allowlist::empty()).is_empty());
    assert!(!rules_fired("crates/sampling/src/fixture.rs", &src, &Allowlist::empty()).is_empty());
}

#[test]
fn l2_fires_on_every_spawn_form_except_in_the_pool() {
    let src = fixture("l2_thread_spawn.rs");
    let fired = rules_fired("crates/graph/src/fixture.rs", &src, &Allowlist::empty());
    assert_eq!(fired.len(), 3, "spawn, scope, Builder: {fired:?}");
    assert!(fired.iter().all(|&r| r == RuleId::L2));
    // The audited pool is the one sanctuary.
    assert!(rules_fired("crates/sampling/src/pool.rs", &src, &Allowlist::empty()).is_empty());
    // Binaries are NOT exempt from L2 (they are from L3/L6).
    assert!(!rules_fired("src/bin/fixture.rs", &src, &Allowlist::empty()).is_empty());
    // Integration tests may thread.
    assert!(rules_fired("tests/fixture.rs", &src, &Allowlist::empty()).is_empty());
}

#[test]
fn l3_fires_on_clock_and_env_reads_in_library_code_only() {
    let src = fixture("l3_time_env.rs");
    let fired = rules_fired("crates/sampling/src/fixture.rs", &src, &Allowlist::empty());
    assert_eq!(fired.len(), 3, "Instant, SystemTime, env::var: {fired:?}");
    assert!(fired.iter().all(|&r| r == RuleId::L3));
    // Benches and binaries time and configure freely.
    assert!(rules_fired("crates/bench/src/fixture.rs", &src, &Allowlist::empty()).is_empty());
    assert!(rules_fired("src/main.rs", &src, &Allowlist::empty()).is_empty());
}

#[test]
fn l4_demands_allowlist_and_safety_comment() {
    let bare = fixture("l4_unsafe_bare.rs");
    let audited = fixture("l4_unsafe_audited.rs");
    let rel = "crates/core/src/fixture.rs";

    // Unlisted + uncommented: both legs fire.
    let report = lint_source(rel, &bare, &Allowlist::empty());
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    assert!(report.findings.iter().all(|f| f.rule == RuleId::L4));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("allow_unsafe.toml")));
    assert!(report.findings.iter().any(|f| f.message.contains("SAFETY")));

    // Allowlisted but still uncommented: the SAFETY leg keeps firing.
    let allowlist = Allowlist::parse(&format!(
        "[[allow]]\nfile = \"{rel}\"\nreason = \"fixture\"\n"
    ))
    .unwrap();
    let fired = rules_fired(rel, &bare, &allowlist);
    assert_eq!(fired, vec![RuleId::L4]);

    // Allowlisted and audited: clean. L4 sees test regions too, so the
    // same content under tests/ is equally policed.
    assert!(rules_fired(rel, &audited, &allowlist).is_empty());
    let in_tests = lint_source("tests/fixture.rs", &bare, &Allowlist::empty());
    assert!(
        in_tests.findings.iter().any(|f| f.rule == RuleId::L4),
        "unsafe in test code is still audited"
    );
}

#[test]
fn l5_fires_on_float_math_in_the_kernel_file_only() {
    let src = fixture("l5_float_kernel.rs");
    let report = lint_source("crates/sampling/src/batch.rs", &src, &Allowlist::empty());
    let l5: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::L5)
        .collect();
    assert_eq!(l5.len(), 2, "the f64 signature and the 0.5 literal: {l5:?}");
    // The same content anywhere else is not the kernel's business.
    assert!(rules_fired("crates/sampling/src/coin.rs", &src, &Allowlist::empty()).is_empty());
}

#[test]
fn l6_fires_on_printing_from_library_code() {
    let src = fixture("l6_println.rs");
    let fired = rules_fired("crates/datasets/src/fixture.rs", &src, &Allowlist::empty());
    assert_eq!(fired.len(), 3, "println, eprintln, dbg: {fired:?}");
    assert!(fired.iter().all(|&r| r == RuleId::L6));
    // Binaries own their stdout.
    assert!(rules_fired("src/bin/fixture.rs", &src, &Allowlist::empty()).is_empty());
}

#[test]
fn l7_fires_on_unwrap_in_serving_request_paths_only() {
    let src = fixture("l7_unwrap.rs");
    let report = lint_source("src/bin/fixture.rs", &src, &Allowlist::empty());
    let l7: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::L7)
        .collect();
    assert_eq!(l7.len(), 2, "the bare unwrap and the expect: {l7:?}");
    assert!(l7.iter().any(|f| f.message.contains(".unwrap()")));
    assert!(l7.iter().any(|f| f.message.contains(".expect()")));
    // The reasoned suppression on the startup-fatal expect is honored.
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, RuleId::L7);
    // The serving front-end in core is policed the same way.
    assert!(
        rules_fired("crates/core/src/serve.rs", &src, &Allowlist::empty()).contains(&RuleId::L7)
    );
    // Everything else may unwrap: library code, benches, tests.
    assert!(rules_fired("crates/core/src/session.rs", &src, &Allowlist::empty()).is_empty());
    assert!(rules_fired("crates/bench/src/fixture.rs", &src, &Allowlist::empty()).is_empty());
    assert!(rules_fired("tests/fixture.rs", &src, &Allowlist::empty()).is_empty());
}

#[test]
fn reasoned_suppressions_are_honored_and_counted() {
    let src = fixture("suppressed.rs");
    let report = lint_source("crates/sampling/src/fixture.rs", &src, &Allowlist::empty());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    let mut suppressed: Vec<RuleId> = report.suppressed.iter().map(|s| s.rule).collect();
    suppressed.sort();
    assert_eq!(suppressed, vec![RuleId::L2, RuleId::L3, RuleId::L6]);
    assert!(report.unused.is_empty());
    assert!(
        report.suppressed.iter().all(|s| !s.reason.is_empty()),
        "reasons are recorded for the report"
    );
}

#[test]
fn malformed_suppressions_are_violations_and_do_not_excuse() {
    let src = fixture("malformed_suppression.rs");
    let report = lint_source("crates/core/src/fixture.rs", &src, &Allowlist::empty());
    let malformed = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::Suppression)
        .count();
    let printed = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::L6)
        .count();
    assert_eq!(malformed, 3, "{:?}", report.findings);
    assert_eq!(printed, 3, "broken excuses excuse nothing");
}

#[test]
fn unused_suppressions_are_reported() {
    let src = fixture("unused_suppression.rs");
    let report = lint_source("crates/core/src/fixture.rs", &src, &Allowlist::empty());
    assert!(report.findings.is_empty());
    assert_eq!(report.unused.len(), 1);
    assert_eq!(report.unused[0].0, RuleId::L6);
}

#[test]
fn cfg_test_regions_are_exempt_from_runtime_rules() {
    let src = fixture("test_module_exempt.rs");
    let report = lint_source("crates/core/src/fixture.rs", &src, &Allowlist::empty());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

/// The gate itself: the real workspace must lint clean. This is the same
/// check CI runs via `cargo run -p flowmax-lint`, wired into `cargo test`
/// so a violating change cannot land even without the CI job.
#[test]
fn workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    let report = lint_workspace(&root).expect("workspace must be scannable");
    assert!(
        report.is_clean(),
        "flowmax-lint found violations:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The sanctioned helpers keep their audited excuses: the pool's L2
    // sanctuary plus inline suppressions for the env/warn/clock/boundary
    // helpers. If this count drifts, re-audit.
    assert!(
        !report.suppressed.is_empty(),
        "the sanctioned helpers are expected to carry suppressions"
    );
    assert!(
        report.unused.is_empty(),
        "stale suppressions must be deleted: {:?}",
        report.unused
    );
}
