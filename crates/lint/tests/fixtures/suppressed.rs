//! Fixture: every violation here carries a reasoned inline suppression,
//! so the file is clean and the tool reports the suppression counts.

pub fn warn_once() {
    // flowmax-lint: allow(L6, fixture for the warn-once pattern: one stderr line per process)
    eprintln!("clamped");
}

pub fn read_env() -> Option<String> {
    std::env::var("FLOWMAX_THREADS").ok() // flowmax-lint: allow(L3, fixture for the sanctioned env entry point)
}

pub fn control_thread() {
    // The suppression may sit anywhere in the comment run directly above
    // the violating line.
    // flowmax-lint: allow(L2, fixture for an audited long-lived control thread)
    // (still part of the same comment run)
    let _ = std::thread::spawn(|| ());
}
