//! Fixture: a suppression whose violation is gone — reported as unused so
//! stale excuses get deleted instead of rotting.

pub fn fixed_long_ago() -> String {
    // flowmax-lint: allow(L6, the println this excused was removed)
    format!("clean now")
}
