//! Fixture: `.unwrap()` / `.expect()` in serving request paths (L7).

pub fn handle(line: Option<&str>) -> usize {
    // Violation: a malformed request must not panic the handler.
    let parsed = line.unwrap();
    // Violation: expect is unwrap with a eulogy.
    parsed.parse::<usize>().expect("numeric")
}

pub fn graceful(line: Option<&str>) -> usize {
    // Allowed: unwrap_or and friends are graceful-handling idioms.
    let parsed = line.unwrap_or("0");
    parsed.parse::<usize>().unwrap_or_default()
}

pub fn audited(line: Option<&str>) -> &str {
    // flowmax-lint: allow(L7, fixture: startup-fatal by design)
    line.expect("set before serving starts")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        // Allowed: test code asserts freely.
        super::handle(Some("3".into())).to_string().parse::<usize>().unwrap();
    }
}
