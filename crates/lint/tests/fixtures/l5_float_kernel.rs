//! Fixture: float math inside the bit-parallel kernel (L5, checked when
//! this content sits at crates/sampling/src/batch.rs).

pub fn flip(p: f64, draw: u64) -> bool {
    // Violation (line above): `f64` in the kernel signature.
    // Violation: float comparison with a float literal.
    let biased = p * 0.5;
    (draw >> 11) < biased as u64
}

pub fn integer_threshold(t: u64, draw: u64) -> bool {
    // Allowed: the pure integer comparison the kernel is supposed to use.
    draw >> 11 < t
}
