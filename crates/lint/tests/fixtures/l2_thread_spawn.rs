//! Fixture: thread creation outside the audited pool (L2).

pub fn fan_out() {
    // Violation: direct spawn.
    let handle = std::thread::spawn(|| 1 + 1);
    let _ = handle.join();
    // Violation: scoped threads.
    std::thread::scope(|s| {
        s.spawn(|| ());
    });
}

pub fn named() {
    // Violation: Builder-based spawn.
    let _ = std::thread::Builder::new().name("w".into()).spawn(|| ());
}
