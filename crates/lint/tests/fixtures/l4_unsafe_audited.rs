//! Fixture: a properly audited `unsafe` block (L4 passes when the file is
//! allowlisted, because the site carries its SAFETY argument).

pub fn reinterpret(x: u64) -> i64 {
    // SAFETY: u64 and i64 have identical size and no invalid bit
    // patterns; this is a value-preserving reinterpretation.
    unsafe { std::mem::transmute::<u64, i64>(x) }
}
