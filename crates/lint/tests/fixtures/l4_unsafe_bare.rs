//! Fixture: an unaudited `unsafe` block (L4) — no SAFETY comment.

pub fn reinterpret(x: u64) -> i64 {
    unsafe { std::mem::transmute::<u64, i64>(x) }
}
