//! Fixture: clock and environment reads in library code (L3).
use std::time::{Instant, SystemTime};

pub fn timed() -> u64 {
    // Violation: monotonic clock read.
    let t = Instant::now();
    // Violation: wall clock read.
    let _ = SystemTime::now();
    t.elapsed().as_nanos() as u64
}

pub fn configured() -> usize {
    // Violation: environment read.
    std::env::var("FLOWMAX_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
