//! Fixture: hash-ordered iteration in deterministic library code (L1).
use std::collections::{HashMap, HashSet};

pub struct Tracker {
    delays: HashMap<u32, u32>,
}

impl Tracker {
    pub fn tick(&mut self) {
        // Violation: HashMap::retain visits entries in hash order.
        self.delays.retain(|_, d| *d > 0);
    }

    pub fn total(&self) -> u32 {
        // Violation: .values() iteration.
        self.delays.values().sum()
    }
}

pub fn collect(seen: HashSet<u32>) -> Vec<u32> {
    let mut out = Vec::new();
    // Violation: for-loop over a hash set.
    for v in &seen {
        out.push(*v);
    }
    out
}

pub fn lookups_are_fine(seen: &HashSet<u32>, delays: &HashMap<u32, u32>) -> bool {
    // Keyed access has no iteration order: allowed.
    seen.contains(&3) && delays.get(&7).is_some()
}
