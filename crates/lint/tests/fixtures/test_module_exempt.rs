//! Fixture: runtime-contract rules (L1/L2/L3/L6) are exempt inside
//! `#[cfg(test)]` regions — tests may thread, time, and print.

pub fn library_code() -> u32 {
    41 + 1
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn concurrency_smoke() {
        let t = std::time::Instant::now();
        let handle = std::thread::spawn(|| 2 + 2);
        assert_eq!(handle.join().unwrap(), 4);
        println!("took {:?}", t.elapsed());
        let mut m = HashMap::new();
        m.insert(1, 2);
        for (k, v) in &m {
            assert!(k < v);
        }
    }
}
