//! Fixture: suppression comments that do not parse are violations
//! themselves — a silent typo must not silently allow.

pub fn missing_reason() {
    // flowmax-lint: allow(L6)
    println!("not actually excused");
}

pub fn unknown_rule() {
    // flowmax-lint: allow(L9, there is no rule nine)
    println!("not excused either");
}

pub fn not_a_directive() {
    // flowmax-lint: deny(L6, wrong verb)
    println!("still a violation");
}
