//! Fixture: stdout/stderr printing in library code (L6).

pub fn report(flow: u64) {
    // Violation: stdout from a library.
    println!("flow = {flow}");
    // Violation: stderr from a library.
    eprintln!("done");
    // Violation: debug printing.
    let _ = dbg!(flow);
}

pub fn format_is_fine(flow: u64) -> String {
    // Allowed: formatting without printing.
    format!("flow = {flow}")
}
