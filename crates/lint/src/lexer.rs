//! A hand-rolled line lexer for Rust sources.
//!
//! The offline build environment has no `syn`, and the contract rules
//! (`crate::rules`) only need token-level facts, so this module does the
//! one lexical job that regex-free line scanning cannot: separating
//! **code** from **comments and literals** so that a `thread::spawn`
//! inside a doc comment or a `"HashMap"` inside a string never trips a
//! rule, while `// SAFETY:` audits and `// flowmax-lint: allow(..)`
//! suppressions stay readable on the comment channel.
//!
//! It understands line comments, (nested) block comments, string / raw
//! string / byte-string literals, char literals vs. lifetimes, and keeps
//! the physical line structure intact so findings carry real line numbers.

/// One physical source line, split into its code and comment channels.
///
/// String, raw-string and char literal *contents* are stripped from
/// `code` (the delimiting quotes remain, marking that a literal was
/// there); comment text — without losing the `//` / `/*` markers — is
/// collected in `comment`.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code with comments removed and literal contents blanked.
    pub code: String,
    /// Comment text that appeared on this line (line and block comments).
    pub comment: String,
}

impl Line {
    /// True when the line carries comment text but no code tokens —
    /// the shape of a standalone suppression or `// SAFETY:` line.
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty() && !self.comment.trim().is_empty()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    CharLit,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Splits `source` into [`Line`]s, classifying every character as code,
/// comment, or literal content.
pub fn split_lines(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut line = Line::default();
    let mut state = State::Code;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    line.comment.push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    line.code.push('"');
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && (i == 0 || !is_ident_char(chars[i - 1]))
                    && raw_string_open(&chars, i).is_some()
                {
                    let (hashes, after_quote) = raw_string_open(&chars, i).unwrap();
                    state = State::RawStr(hashes);
                    line.code.push('"');
                    i = after_quote;
                } else if c == '\'' {
                    // Char literal ('x', '\n', '\u{1F600}') or lifetime ('a).
                    match next {
                        Some('\\') => {
                            state = State::CharLit;
                            line.code.push('\'');
                            i += 2;
                        }
                        Some(n) if n != '\'' && chars.get(i + 2) == Some(&'\'') => {
                            line.code.push('\'');
                            line.code.push('\'');
                            i += 3;
                        }
                        _ => {
                            // A lifetime: keep the tick, the identifier
                            // follows as ordinary code.
                            line.code.push('\'');
                            i += 1;
                        }
                    }
                } else {
                    line.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped character — unless it is a newline
                    // (string continuation), which the top of the loop must
                    // see to keep line numbers honest.
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    line.code.push('"');
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else if c == '\'' {
                    line.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !line.code.is_empty() || !line.comment.is_empty() {
        lines.push(line);
    }
    lines
}

/// If position `i` opens a raw (byte) string (`r"`, `r#"`, `br##"`, ...),
/// returns `(hash_count, index_after_opening_quote)`.
fn raw_string_open(chars: &[char], i: usize) -> Option<(u8, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes: u8 = 0;
    while chars.get(j) == Some(&'#') {
        hashes = hashes.saturating_add(1);
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

/// True when the `"` at `i` is followed by enough `#`s to close a raw
/// string opened with `hashes` hashes.
fn closes_raw(chars: &[char], i: usize, hashes: u8) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks every line that sits inside a `#[cfg(test)]` item — an inline
/// `mod tests { .. }`, a cfg-gated fn, impl, or struct. The rules exempt
/// these regions from the runtime-contract checks (test code may spawn
/// threads, print, and time things) while the `unsafe` audit (L4) still
/// sees them.
pub fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    // For each open brace: whether it opened a `#[cfg(test)]` item.
    let mut stack: Vec<bool> = Vec::new();
    // A `#[cfg(test)]` attribute was seen and its item's opening brace (or
    // terminating semicolon) has not been reached yet.
    let mut pending_cfg_test = false;

    for (idx, line) in lines.iter().enumerate() {
        let mut in_test = stack.contains(&true);
        if line.code.contains("#[cfg(test)]") || line.code.contains("#[cfg(all(test") {
            pending_cfg_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    stack.push(pending_cfg_test);
                    if pending_cfg_test {
                        in_test = true;
                        pending_cfg_test = false;
                    }
                }
                '}' => {
                    stack.pop();
                }
                ';' if pending_cfg_test => {
                    // `#[cfg(test)] mod tests;` / `#[cfg(test)] use ..;`
                    // — a braceless item consumed the attribute.
                    pending_cfg_test = false;
                }
                _ => {}
            }
        }
        mask[idx] = in_test || stack.contains(&true);
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated() {
        let src = "let a = \"thread::spawn\"; // thread::spawn here\nlet b = 1;\n";
        let lines = split_lines(src);
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].code.contains("thread::spawn"));
        assert!(lines[0].comment.contains("thread::spawn"));
        assert!(lines[0].code.contains("let a ="));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a(); /* one /* two */ still */ b();\n/* open\nunsafe { }\n*/ c();\n";
        let lines = split_lines(src);
        assert!(lines[0].code.contains("a()"));
        assert!(lines[0].code.contains("b()"));
        assert!(!lines[1].code.contains("unsafe"));
        assert!(!lines[2].code.contains("unsafe"));
        assert!(lines[3].code.contains("c()"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let s = r#\"HashMap \"quoted\" inside\"#; let c = 'x'; let lt: &'static str = \"y\";\n";
        let lines = split_lines(src);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(!lines[0].code.contains('x'));
        assert!(lines[0].code.contains("'static"), "lifetime survives");
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let src = "let s = \"a\\\"b; unsafe {\"; done();\n";
        let lines = split_lines(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("done()"));
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { spawn(); }\n}\nfn lib2() {}\n";
        let lines = split_lines(src);
        let mask = test_mask(&lines);
        assert!(!mask[0]);
        assert!(mask[3], "inside the test mod");
        assert!(!mask[5], "after the test mod");
    }

    #[test]
    fn cfg_test_use_does_not_poison_following_braces() {
        let src = "#[cfg(test)]\nuse std::thread;\nfn lib() { body(); }\n";
        let lines = split_lines(src);
        let mask = test_mask(&lines);
        assert!(!mask[2], "fn after cfg(test) use is not test code");
    }
}
