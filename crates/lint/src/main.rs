//! CLI for `flowmax-lint`: `cargo run -p flowmax-lint [-- --root PATH]`.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage/IO error.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use flowmax_lint::{lint_workspace, RuleId};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("flowmax-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "flowmax-lint: determinism & unsafety contract checks (rules L1-L7)\n\
                     usage: flowmax-lint [--root PATH]\n\
                     see crates/lint/README.md for the rule catalogue"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("flowmax-lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(root) => root,
        Err(message) => {
            eprintln!("flowmax-lint: {message}");
            return ExitCode::from(2);
        }
    };

    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("flowmax-lint: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    for finding in &report.findings {
        println!(
            "{}:{}: [{}] {}",
            finding.file, finding.line, finding.rule, finding.message
        );
    }
    for (rule, file, line) in &report.unused {
        println!(
            "{file}:{line}: warning: unused suppression for {rule} — the violation it excused \
             is gone, delete the comment"
        );
    }

    let mut suppressed_by_rule: BTreeMap<RuleId, usize> = BTreeMap::new();
    for sup in &report.suppressed {
        *suppressed_by_rule.entry(sup.rule).or_insert(0) += 1;
    }
    let suppression_summary = if report.suppressed.is_empty() {
        "no suppressions".to_string()
    } else {
        let parts: Vec<String> = suppressed_by_rule
            .iter()
            .map(|(rule, count)| format!("{rule}\u{00d7}{count}"))
            .collect();
        format!(
            "{} suppression(s) honored: {}",
            report.suppressed.len(),
            parts.join(", ")
        )
    };

    if report.is_clean() {
        println!(
            "flowmax-lint: {} files scanned, clean ({suppression_summary})",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "flowmax-lint: {} files scanned, {} violation(s) ({suppression_summary})",
            report.files_scanned,
            report.findings.len()
        );
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(
                "no workspace Cargo.toml found above the current directory; \
                        pass --root"
                    .to_string(),
            );
        }
    }
}
