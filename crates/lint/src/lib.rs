//! `flowmax-lint` — the workspace's determinism & unsafety contract,
//! machine-checked.
//!
//! The whole value of this reproduction rests on one promise: results are
//! **bit-identical at every thread count × lane width**, and deterministic
//! replay is the serving contract. That promise is enforced dynamically by
//! the determinism/differential test suites — but nothing in `rustc` stops
//! the next change from introducing a `HashMap` iteration, a stray thread,
//! or an unaudited `unsafe` block that silently breaks it. This crate is
//! the static half of the enforcement: a dependency-free analysis pass
//! (`cargo run -p flowmax-lint`) that walks every first-party `.rs` file
//! and checks rules **L1–L7** (see [`rules`] and `crates/lint/README.md`).
//!
//! Design constraints: the offline build has no `syn`/`regex`, so the pass
//! is a hand-rolled lexer ([`lexer`]) plus token-level rules — fast,
//! deterministic (files are walked in sorted order), and self-tested
//! against fixtures under `tests/fixtures/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use config::{AllowEntry, Allowlist};
pub use rules::{classify, crate_of, lint_source, FileKind, Finding, RuleId, SuppressionUse};

/// Workspace-relative path of the allowlist consumed by rule L4.
pub const ALLOWLIST_PATH: &str = "crates/lint/allow_unsafe.toml";

/// Aggregated result of linting the whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Violations that survived suppression, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Honored inline suppressions, for the summary report.
    pub suppressed: Vec<SuppressionUse>,
    /// Declared suppressions that excused nothing: `(rule, file, line)`.
    pub unused: Vec<(RuleId, String, usize)>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl WorkspaceReport {
    /// True when the workspace passes the gate.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Directories never walked: third-party stand-ins, build output, VCS
/// metadata — and the lint's own deliberately-violating fixtures.
fn skip_dir(rel: &str) -> bool {
    matches!(rel, "vendor" | "target" | ".git") || rel == "crates/lint/tests/fixtures"
}

/// Collects every first-party `.rs` file under `root`, workspace-relative
/// with `/` separators, in sorted (deterministic) order.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for path in entries {
            let rel = path
                .strip_prefix(root)
                .expect("walked paths stay under root")
                .to_string_lossy()
                .replace('\\', "/");
            if path.is_dir() {
                if !skip_dir(&rel) {
                    stack.push(path);
                }
            } else if rel.ends_with(".rs") {
                files.push(rel);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints the workspace rooted at `root`: every first-party file through
/// [`lint_source`], plus the workspace-level L4 checks (crate-root
/// `#![forbid/deny(unsafe_code)]` attributes and allowlist staleness).
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();

    let allowlist = match fs::read_to_string(root.join(ALLOWLIST_PATH)) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(list) => list,
            Err(message) => {
                report.findings.push(Finding {
                    rule: RuleId::L4,
                    file: ALLOWLIST_PATH.to_string(),
                    line: 1,
                    message,
                });
                Allowlist::empty()
            }
        },
        Err(err) => {
            report.findings.push(Finding {
                rule: RuleId::L4,
                file: ALLOWLIST_PATH.to_string(),
                line: 1,
                message: format!("cannot read the unsafe allowlist: {err}"),
            });
            Allowlist::empty()
        }
    };

    let files = workspace_files(root)?;
    let mut unsafe_free: Vec<String> = allowlist.entries.iter().map(|e| e.file.clone()).collect();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        let file_report = lint_source(rel, &source, &allowlist);
        if file_report.unsafe_lines > 0 {
            unsafe_free.retain(|f| f != rel);
        }
        report.findings.extend(file_report.findings);
        report.suppressed.extend(file_report.suppressed);
        report.unused.extend(
            file_report
                .unused
                .into_iter()
                .map(|(rule, line)| (rule, rel.clone(), line)),
        );
    }
    report.files_scanned = files.len();

    // Stale allowlist entries: files that vanished or no longer need the
    // exemption must be de-listed, or the audit trail rots.
    for entry in &allowlist.entries {
        if !files.contains(&entry.file) {
            report.findings.push(Finding {
                rule: RuleId::L4,
                file: ALLOWLIST_PATH.to_string(),
                line: entry.line,
                message: format!(
                    "stale allowlist entry: {} is not a workspace source file",
                    entry.file
                ),
            });
        } else if unsafe_free.contains(&entry.file) {
            report.findings.push(Finding {
                rule: RuleId::L4,
                file: ALLOWLIST_PATH.to_string(),
                line: entry.line,
                message: format!(
                    "stale allowlist entry: {} no longer contains `unsafe` — delete the entry \
                     and add `#![forbid(unsafe_code)]` to its crate root",
                    entry.file
                ),
            });
        }
    }

    report
        .findings
        .extend(check_crate_roots(root, &files, &allowlist));
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// L4's crate-root leg: every first-party crate must pin its unsafety
/// stance at the root — `#![forbid(unsafe_code)]` when it has no
/// allowlisted files, at least `#![deny(unsafe_code)]` (with audited
/// per-site `#[allow]`s) when it does.
fn check_crate_roots(root: &Path, files: &[String], allowlist: &Allowlist) -> Vec<Finding> {
    let mut findings = Vec::new();
    let roots: Vec<String> = files
        .iter()
        .filter(|rel| {
            *rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
        })
        .cloned()
        .collect();
    for lib_rs in roots {
        let krate = crate_of(&lib_rs).to_string();
        let has_entries = allowlist.entries.iter().any(|e| crate_of(&e.file) == krate);
        let Ok(source) = fs::read_to_string(root.join(&lib_rs)) else {
            continue;
        };
        let mut forbids = false;
        let mut denies = false;
        for line in lexer::split_lines(&source) {
            let squashed: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
            forbids |= squashed.contains("#![forbid(unsafe_code)]");
            denies |= squashed.contains("#![deny(unsafe_code)]");
        }
        if has_entries {
            if !forbids && !denies {
                findings.push(Finding {
                    rule: RuleId::L4,
                    file: lib_rs,
                    line: 1,
                    message: format!(
                        "crate `{krate}` has allowlisted unsafe files but its root does not \
                         `#![deny(unsafe_code)]`; deny at the root and `#[allow]` only at the \
                         audited sites"
                    ),
                });
            }
        } else if !forbids {
            findings.push(Finding {
                rule: RuleId::L4,
                file: lib_rs,
                line: 1,
                message: format!(
                    "crate `{krate}` is unsafe-free but does not lock that in with \
                     `#![forbid(unsafe_code)]` at its root"
                ),
            });
        }
    }
    findings
}
