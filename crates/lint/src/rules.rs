//! The seven contract rules, plus the inline-suppression machinery.
//!
//! Every rule protects a piece of the project's determinism / unsafety
//! contract (see `crates/lint/README.md` for the full mapping):
//!
//! * **L1** — no iteration over `HashMap`/`HashSet` in `graph`, `sampling`
//!   or `core` library code: hash order is nondeterministic, so every
//!   iterated collection must be a `BTreeMap`/`BTreeSet` or sorted `Vec`.
//! * **L2** — no `std::thread::{spawn, scope, Builder}` outside the
//!   audited `crates/sampling/src/pool.rs` worker pool.
//! * **L3** — no `Instant::now` / `SystemTime::now` / environment reads in
//!   library crates; the sanctioned clamp/warn/clock helpers carry
//!   explicit suppressions, benches and binaries are exempt.
//! * **L4** — `unsafe` only in files listed in `crates/lint/allow_unsafe.toml`,
//!   always under a `// SAFETY:` comment; crates without an allowlist
//!   entry must `#![forbid(unsafe_code)]` at their root.
//! * **L5** — no float comparison/arithmetic inside the bit-parallel
//!   sampling kernel (`crates/sampling/src/batch.rs`): coins are integer
//!   thresholds, classified once at the `crate::coin` boundary.
//! * **L6** — no `println!`/`eprintln!`/`dbg!` in library code.
//! * **L7** — no `.unwrap()` / `.expect()` in the serving request paths
//!   (`crates/core/src/serve.rs` and `src/bin/**`): one bad request must
//!   degrade to an `ERR` line or a failed ticket, never take a connection
//!   handler or the dispatcher down with a panic.
//!
//! A violating line can be excused with
//! `// flowmax-lint: allow(LN, reason)` on the same line or on the
//! comment lines directly above it; suppressions without a reason are
//! themselves violations, and every honored suppression is counted and
//! reported.

use crate::config::Allowlist;
use crate::lexer::{split_lines, test_mask, Line};

/// Identifier of a contract rule (or of the suppression-syntax check).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Hash-ordered iteration in deterministic library code.
    L1,
    /// Thread creation outside the audited worker pool.
    L2,
    /// Clock / environment reads in library crates.
    L3,
    /// Unaudited `unsafe` (allowlist + `// SAFETY:` + crate-root attr).
    L4,
    /// Float math inside the bit-parallel sampling kernel.
    L5,
    /// Stdout/stderr printing in library code.
    L6,
    /// `.unwrap()` / `.expect()` in serving request-path code.
    L7,
    /// A malformed `flowmax-lint:` suppression comment.
    Suppression,
}

impl RuleId {
    /// The short code used in reports and suppression comments.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::L1 => "L1",
            RuleId::L2 => "L2",
            RuleId::L3 => "L3",
            RuleId::L4 => "L4",
            RuleId::L5 => "L5",
            RuleId::L6 => "L6",
            RuleId::L7 => "L7",
            RuleId::Suppression => "lint",
        }
    }

    fn from_code(code: &str) -> Option<RuleId> {
        match code {
            "L1" => Some(RuleId::L1),
            "L2" => Some(RuleId::L2),
            "L3" => Some(RuleId::L3),
            "L4" => Some(RuleId::L4),
            "L5" => Some(RuleId::L5),
            "L6" => Some(RuleId::L6),
            "L7" => Some(RuleId::L7),
            _ => None,
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// Workspace-relative file path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// One honored inline suppression.
#[derive(Debug, Clone)]
pub struct SuppressionUse {
    /// The suppressed rule.
    pub rule: RuleId,
    /// Workspace-relative file path of the suppressed finding.
    pub file: String,
    /// 1-based line of the suppressed finding.
    pub line: usize,
    /// The reason given in the suppression comment.
    pub reason: String,
}

/// The result of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations that survived suppression.
    pub findings: Vec<Finding>,
    /// Suppressions that excused a finding.
    pub suppressed: Vec<SuppressionUse>,
    /// Declared suppressions that excused nothing (reported as warnings —
    /// they indicate a fixed violation whose excuse should be deleted).
    pub unused: Vec<(RuleId, usize)>,
    /// Lines containing an `unsafe` token (for allowlist staleness checks).
    pub unsafe_lines: usize,
}

/// How a file participates in the rule set, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code — full rule set.
    Lib,
    /// A binary target (`src/main.rs`, `src/bin/**`) — exempt from L3/L6.
    Bin,
    /// Integration tests (`tests/**`) — runtime-contract rules off.
    Test,
    /// Bench code (`crates/bench/**`, `benches/**`) — runtime rules off.
    Bench,
    /// Examples — runtime rules off.
    Example,
}

/// Classifies a workspace-relative path.
pub fn classify(rel: &str) -> FileKind {
    if rel.starts_with("tests/") || rel.contains("/tests/") {
        FileKind::Test
    } else if rel.starts_with("crates/bench/") || rel.contains("/benches/") {
        FileKind::Bench
    } else if rel.starts_with("examples/") || rel.contains("/examples/") {
        FileKind::Example
    } else if rel.starts_with("src/bin/")
        || rel.contains("/src/bin/")
        || rel.ends_with("src/main.rs")
    {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// The crate a workspace-relative path belongs to (`root` for the facade).
pub fn crate_of(rel: &str) -> &str {
    if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("root")
    } else {
        "root"
    }
}

/// The one module allowed to create threads.
const THREAD_SANCTUARY: &str = "crates/sampling/src/pool.rs";
/// The bit-parallel kernel file protected by L5.
const KERNEL_FILE: &str = "crates/sampling/src/batch.rs";
/// Crates whose library code must not iterate hash-ordered collections.
const L1_CRATES: [&str; 3] = ["graph", "sampling", "core"];

const L2_PATTERNS: [&str; 3] = ["thread::spawn", "thread::scope", "thread::Builder"];
const L3_PATTERNS: [&str; 5] = [
    "Instant::now",
    "SystemTime::now",
    "env::var",
    "env::var_os",
    "env::vars",
];
const L6_PATTERNS: [&str; 5] = ["println!", "eprintln!", "print!", "eprint!", "dbg!"];
/// The serving request path protected by L7 alongside every `src/bin/` file.
const SERVE_FILE: &str = "crates/core/src/serve.rs";
/// The trailing `(` keeps `unwrap_or`, `unwrap_or_else`, and `expect_err`
/// out of scope — those are graceful-handling idioms, not panics.
const L7_PATTERNS: [&str; 2] = [".unwrap(", ".expect("];
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Lints one file's source text. `rel` decides which rules apply (see
/// [`classify`]); `allowlist` backs the L4 checks. Workspace-level L4
/// checks (crate-root attributes, allowlist staleness) live in
/// [`crate::lint_workspace`].
pub fn lint_source(rel: &str, source: &str, allowlist: &Allowlist) -> FileReport {
    let lines = split_lines(source);
    let tests = test_mask(&lines);
    let kind = classify(rel);
    let krate = crate_of(rel);

    let (suppressions, mut findings) = collect_suppressions(rel, &lines);
    let mut raw: Vec<Finding> = Vec::new();
    let mut report = FileReport::default();

    let l1_applies = kind == FileKind::Lib && L1_CRATES.contains(&krate);
    let l2_applies = matches!(kind, FileKind::Lib | FileKind::Bin) && rel != THREAD_SANCTUARY;
    let l3_applies = kind == FileKind::Lib;
    let l5_applies = rel == KERNEL_FILE;
    let l6_applies = kind == FileKind::Lib;
    let l7_applies = rel == SERVE_FILE || kind == FileKind::Bin;

    let hash_idents = if l1_applies {
        collect_hash_idents(&lines, &tests)
    } else {
        Vec::new()
    };

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();

        // L4 sees everything, including test regions.
        if find_token(code, "unsafe").is_some() {
            report.unsafe_lines += 1;
            if !allowlist.contains(rel) {
                raw.push(Finding {
                    rule: RuleId::L4,
                    file: rel.to_string(),
                    line: lineno,
                    message: format!(
                        "`unsafe` in a file not listed in crates/lint/allow_unsafe.toml \
                         ({rel}); audited unsafety must be allowlisted with a reason"
                    ),
                });
            }
            if !has_safety_comment(&lines, idx) {
                raw.push(Finding {
                    rule: RuleId::L4,
                    file: rel.to_string(),
                    line: lineno,
                    message: "`unsafe` without a `// SAFETY:` comment on or above it".to_string(),
                });
            }
        }

        if tests[idx] {
            continue;
        }

        if l1_applies {
            for name in &hash_idents {
                if let Some(message) = hash_iteration_on_line(code, name) {
                    raw.push(Finding {
                        rule: RuleId::L1,
                        file: rel.to_string(),
                        line: lineno,
                        message,
                    });
                }
            }
        }
        if l2_applies {
            for pat in L2_PATTERNS {
                if find_token(code, pat).is_some() {
                    raw.push(Finding {
                        rule: RuleId::L2,
                        file: rel.to_string(),
                        line: lineno,
                        message: format!(
                            "`{pat}` outside {THREAD_SANCTUARY}: all parallelism must go \
                             through the audited WorkerPool"
                        ),
                    });
                }
            }
        }
        if l3_applies {
            for pat in L3_PATTERNS {
                if find_token(code, pat).is_some() {
                    raw.push(Finding {
                        rule: RuleId::L3,
                        file: rel.to_string(),
                        line: lineno,
                        message: format!(
                            "`{pat}` in library code: clock/environment reads are reserved \
                             for the sanctioned clamp/warn/clock helpers"
                        ),
                    });
                }
            }
        }
        if l5_applies {
            let float_type = ["f64", "f32"]
                .into_iter()
                .find(|t| find_token(code, t).is_some());
            if let Some(t) = float_type {
                raw.push(Finding {
                    rule: RuleId::L5,
                    file: rel.to_string(),
                    line: lineno,
                    message: format!(
                        "`{t}` inside the bit-parallel kernel: coins are integer thresholds \
                         (classify floats at the crate::coin boundary)"
                    ),
                });
            } else if has_float_literal(code) {
                raw.push(Finding {
                    rule: RuleId::L5,
                    file: rel.to_string(),
                    line: lineno,
                    message: "float literal inside the bit-parallel kernel: coins are integer \
                              thresholds (classify floats at the crate::coin boundary)"
                        .to_string(),
                });
            }
        }
        if l6_applies {
            for pat in L6_PATTERNS {
                if find_token(code, pat).is_some() {
                    raw.push(Finding {
                        rule: RuleId::L6,
                        file: rel.to_string(),
                        line: lineno,
                        message: format!(
                            "`{pat}` in library code: report through return values or metrics, \
                             not process-global streams"
                        ),
                    });
                }
            }
        }
        if l7_applies {
            for pat in L7_PATTERNS {
                if code.contains(pat) {
                    let method = &pat[1..pat.len() - 1];
                    raw.push(Finding {
                        rule: RuleId::L7,
                        file: rel.to_string(),
                        line: lineno,
                        message: format!(
                            "`.{method}()` in a serving request path: one bad request must \
                             degrade to an ERR line or a failed ticket, not panic the \
                             handler (match on the Result, or suppress with a reason if \
                             the failure is startup-fatal by design)"
                        ),
                    });
                }
            }
        }
    }

    // Apply suppressions.
    let mut used: Vec<usize> = Vec::new();
    for finding in raw {
        let idx = finding.line - 1;
        match suppression_for(&lines, &suppressions, idx, finding.rule) {
            Some(sup_idx) => {
                used.push(sup_idx);
                let sup = &suppressions[sup_idx];
                report.suppressed.push(SuppressionUse {
                    rule: finding.rule,
                    file: finding.file,
                    line: finding.line,
                    reason: sup.reason.clone(),
                });
            }
            None => findings.push(finding),
        }
    }
    for (idx, sup) in suppressions.iter().enumerate() {
        if !used.contains(&idx) {
            report.unused.push((sup.rule, sup.line + 1));
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    report.findings = findings;
    report
}

/// A parsed `// flowmax-lint: allow(LN, reason)` directive.
#[derive(Debug)]
struct Suppression {
    rule: RuleId,
    reason: String,
    /// 0-based line the comment sits on.
    line: usize,
}

/// Extracts suppression directives; malformed ones become findings.
fn collect_suppressions(rel: &str, lines: &[Line]) -> (Vec<Suppression>, Vec<Finding>) {
    const MARKER: &str = "flowmax-lint:";
    let mut sups = Vec::new();
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        // Only a comment that *is* a directive counts — prose that merely
        // mentions the syntax (docs, this file) must not parse. Strip the
        // comment markers (`//`, `///`, `//!`) and leading space, then
        // demand the marker up front.
        let body = line.comment.trim_start_matches(['/', '!']).trim_start();
        let Some(directive) = body.strip_prefix(MARKER).map(str::trim) else {
            continue;
        };
        let malformed = |what: &str| Finding {
            rule: RuleId::Suppression,
            file: rel.to_string(),
            line: idx + 1,
            message: format!(
                "malformed suppression ({what}); expected \
                 `// flowmax-lint: allow(LN, reason)`"
            ),
        };
        let Some(body) = directive
            .strip_prefix("allow(")
            .and_then(|rest| rest.rfind(')').map(|end| &rest[..end]))
        else {
            findings.push(malformed("missing `allow(..)`"));
            continue;
        };
        let Some((code, reason)) = body.split_once(',') else {
            findings.push(malformed("missing a reason after the rule id"));
            continue;
        };
        let Some(rule) = RuleId::from_code(code.trim()) else {
            findings.push(malformed("unknown rule id"));
            continue;
        };
        let reason = reason.trim();
        if reason.is_empty() {
            findings.push(malformed("empty reason"));
            continue;
        }
        sups.push(Suppression {
            rule,
            reason: reason.to_string(),
            line: idx,
        });
    }
    (sups, findings)
}

/// Finds a suppression covering `line_idx` for `rule`: on the same line,
/// or on the run of comment-only lines directly above it.
fn suppression_for(
    lines: &[Line],
    sups: &[Suppression],
    line_idx: usize,
    rule: RuleId,
) -> Option<usize> {
    let matches_at = |at: usize| sups.iter().position(|s| s.line == at && s.rule == rule);
    if let Some(found) = matches_at(line_idx) {
        return Some(found);
    }
    let mut idx = line_idx;
    while idx > 0 && lines[idx - 1].is_comment_only() {
        idx -= 1;
        if let Some(found) = matches_at(idx) {
            return Some(found);
        }
    }
    None
}

/// True when an `unsafe` at `line_idx` is covered by a `// SAFETY:`
/// comment — on the same line or within the 25 lines above it (attributes
/// and the unsafe expression itself may sit between the comment and the
/// keyword).
fn has_safety_comment(lines: &[Line], line_idx: usize) -> bool {
    let start = line_idx.saturating_sub(25);
    lines[start..=line_idx]
        .iter()
        .any(|l| l.comment.contains("SAFETY:"))
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds `pat` in `code` with identifier boundaries on both sides, so
/// `unsafe` never matches `unsafe_code` and `print!` never matches inside
/// `println!`.
pub(crate) fn find_token(code: &str, pat: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let abs = start + pos;
        let before_ok = code[..abs]
            .chars()
            .next_back()
            .is_none_or(|c| !is_ident_char(c));
        let after_ok = code[abs + pat.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return Some(abs);
        }
        start = abs + pat.len().max(1);
    }
    None
}

/// Splits code into identifier and single-character punctuation tokens
/// (`::` kept whole), dropping whitespace.
fn tokens(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if is_ident_char(c) {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            out.push(chars[start..i].iter().collect());
        } else if c == ':' && chars.get(i + 1) == Some(&':') {
            out.push("::".to_string());
            i += 2;
        } else {
            out.push(c.to_string());
            i += 1;
        }
    }
    out
}

/// Names of local variables / fields declared with a `HashMap`/`HashSet`
/// type in non-test code: `name: [path::]HashMap<..>` declarations and
/// `let [mut] name = HashMap::new()`-style bindings.
fn collect_hash_idents(lines: &[Line], tests: &[bool]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if tests[idx] {
            continue;
        }
        let toks = tokens(&line.code);
        for (k, tok) in toks.iter().enumerate() {
            if tok != "HashMap" && tok != "HashSet" {
                continue;
            }
            // Walk back over a `std::collections::` path prefix, then over
            // `&` / `mut` in reference types.
            let mut j = k;
            while j >= 2 && toks[j - 1] == "::" {
                j -= 2;
            }
            while j >= 1 && matches!(toks[j - 1].as_str(), "&" | "mut") {
                j -= 1;
            }
            let name = if j >= 2 && toks[j - 1] == ":" {
                // `name: HashMap<..>` (field, param, or typed let).
                Some(toks[j - 2].clone())
            } else if j >= 2 && toks[j - 1] == "=" && toks.iter().any(|t| t == "let") {
                // `let [mut] name = HashMap::new()`.
                Some(toks[j - 2].clone())
            } else {
                None
            };
            if let Some(name) = name {
                if name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
                    && !names.contains(&name)
                {
                    names.push(name);
                }
            }
        }
    }
    names
}

/// If `code` iterates the hash-typed identifier `name`, describes how.
fn hash_iteration_on_line(code: &str, name: &str) -> Option<String> {
    let toks = tokens(code);
    for (k, tok) in toks.iter().enumerate() {
        if tok != name {
            continue;
        }
        if toks.get(k + 1).is_some_and(|t| t == ".") {
            if let Some(method) = toks.get(k + 2) {
                if ITER_METHODS.contains(&method.as_str()) {
                    return Some(format!(
                        "`{name}.{method}()` iterates a hash-ordered collection; use a \
                         BTreeMap/BTreeSet or a sorted Vec so iteration order is defined"
                    ));
                }
            }
        }
        // `for x in [&[mut]] name ..` — direct loop over the collection.
        let mut j = k;
        while j > 0 && matches!(toks[j - 1].as_str(), "&" | "mut" | ".") {
            if toks[j - 1] == "." {
                // `something.name` — walk through to the field owner.
                j -= 1;
                if j == 0 {
                    break;
                }
            }
            j -= 1;
        }
        if j > 0 && toks[j - 1] == "in" && toks.contains(&"for".to_string()) {
            return Some(format!(
                "`for .. in {name}` iterates a hash-ordered collection; use a \
                 BTreeMap/BTreeSet or a sorted Vec so iteration order is defined"
            ));
        }
    }
    None
}

/// True when `code` contains a float literal (`1.0`, `9_007.25`) — tuple
/// field chains (`x.0`, `pair.0.1`) and ranges (`0..10`) excluded.
fn has_float_literal(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    for i in 1..chars.len().saturating_sub(1) {
        if chars[i] != '.' || !chars[i - 1].is_ascii_digit() || !chars[i + 1].is_ascii_digit() {
            continue;
        }
        // Walk back over the integer part (digits and `_` separators).
        let mut j = i - 1;
        while j > 0 && (chars[j - 1].is_ascii_digit() || chars[j - 1] == '_') {
            j -= 1;
        }
        let boundary_ok = j == 0 || (!is_ident_char(chars[j - 1]) && chars[j - 1] != '.');
        if boundary_ok {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_boundaries() {
        assert!(find_token("unsafe {", "unsafe").is_some());
        assert!(find_token("#![forbid(unsafe_code)]", "unsafe").is_none());
        assert!(find_token("eprintln!(\"x\")", "print!").is_none());
        assert!(find_token("std::thread::spawn(f)", "thread::spawn").is_some());
    }

    #[test]
    fn float_literal_detection() {
        assert!(has_float_literal("let x = 1.5;"));
        assert!(has_float_literal("const T: f64 = 9_007_199.0;"));
        assert!(!has_float_literal("let y = pair.0;"));
        assert!(!has_float_literal("for i in 0..10 {"));
        assert!(!has_float_literal("let z = x.0.1;"));
    }

    #[test]
    fn classification() {
        assert_eq!(classify("crates/core/src/session.rs"), FileKind::Lib);
        assert_eq!(classify("src/bin/serve.rs"), FileKind::Bin);
        assert_eq!(classify("src/main.rs"), FileKind::Bin);
        assert_eq!(classify("tests/determinism.rs"), FileKind::Test);
        assert_eq!(classify("crates/bench/src/lib.rs"), FileKind::Bench);
        assert_eq!(crate_of("crates/graph/src/lib.rs"), "graph");
        assert_eq!(crate_of("src/lib.rs"), "root");
    }
}
