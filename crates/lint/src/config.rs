//! Parser for `crates/lint/allow_unsafe.toml` — the workspace's `unsafe`
//! allowlist (rule **L4**).
//!
//! The offline environment has no TOML crate, so this reads the one shape
//! the allowlist uses: a sequence of `[[allow]]` tables with string
//! `file` / `reason` keys. Anything else is a hard error — a lint
//! configuration that cannot be parsed must fail the gate, not silently
//! allow things.

/// One audited file that may contain `unsafe` blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative path, `/`-separated (e.g.
    /// `crates/sampling/src/pool.rs`).
    pub file: String,
    /// Why the unsafety is accepted — shown in reports, required non-empty.
    pub reason: String,
    /// 1-based line of the `[[allow]]` header, for error reporting.
    pub line: usize,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// Audited files, in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// An empty allowlist (used by fixture tests to prove a rule fires).
    pub fn empty() -> Allowlist {
        Allowlist::default()
    }

    /// True when `rel` (workspace-relative, `/`-separated) is audited.
    pub fn contains(&self, rel: &str) -> bool {
        self.entries.iter().any(|e| e.file == rel)
    }

    /// Parses the allowlist format described in the module docs.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut open = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(last) = entries.last() {
                    validate(last)?;
                }
                entries.push(AllowEntry {
                    file: String::new(),
                    reason: String::new(),
                    line: lineno,
                });
                open = true;
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "allow_unsafe.toml:{lineno}: expected `key = \"value\"`"
                ));
            };
            if !open {
                return Err(format!(
                    "allow_unsafe.toml:{lineno}: key outside an [[allow]] table"
                ));
            }
            let value = value.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| {
                    format!("allow_unsafe.toml:{lineno}: value must be a double-quoted string")
                })?;
            let entry = entries.last_mut().expect("open implies an entry");
            match key.trim() {
                "file" => entry.file = value.replace('\\', "/"),
                "reason" => entry.reason = value.to_string(),
                other => {
                    return Err(format!(
                        "allow_unsafe.toml:{lineno}: unknown key `{other}` (expected file/reason)"
                    ));
                }
            }
        }
        if let Some(last) = entries.last() {
            validate(last)?;
        }
        Ok(Allowlist { entries })
    }
}

fn validate(entry: &AllowEntry) -> Result<(), String> {
    if entry.file.is_empty() {
        return Err(format!(
            "allow_unsafe.toml:{}: [[allow]] entry is missing `file`",
            entry.line
        ));
    }
    if entry.reason.trim().is_empty() {
        return Err(format!(
            "allow_unsafe.toml:{}: [[allow]] entry for {} is missing a `reason`",
            entry.line, entry.file
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let text = "# audited unsafety\n\n[[allow]]\nfile = \"crates/sampling/src/pool.rs\"\nreason = \"scoped transmute\"\n";
        let list = Allowlist::parse(text).unwrap();
        assert_eq!(list.entries.len(), 1);
        assert!(list.contains("crates/sampling/src/pool.rs"));
        assert!(!list.contains("crates/core/src/lib.rs"));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let text = "[[allow]]\nfile = \"a.rs\"\n";
        assert!(Allowlist::parse(text).is_err());
    }

    #[test]
    fn unknown_key_is_an_error() {
        let text = "[[allow]]\nfile = \"a.rs\"\nreason = \"r\"\nrule = \"L4\"\n";
        assert!(Allowlist::parse(text).is_err());
    }
}
