//! The sanctioned wall-clock reads of `flowmax-core`.
//!
//! Library code must not read the clock (lint rule L3): a timing read in a
//! decision path is how "same seed, different machine, different answer"
//! bugs are born. Two uses are legitimate, and both are funnelled through
//! this module so its suppression is the only L3 exemption in the crate:
//!
//! * **Observability** — reporting how long a solve took. Everything
//!   `monotonic_now` feeds ([`SolveRun::elapsed`](crate::session::SolveRun::elapsed),
//!   serve metrics) is a passenger of the result, never an input to
//!   selection, sampling, or replay.
//! * **Soft deadlines at the serving boundary** — a [`SoftDeadline`] lets
//!   the daemon stop a greedy run when its wall-clock budget expires. The
//!   clock only chooses *where the run stops*, between iterations; every
//!   committed step is bit-identical to the same-seed full run's prefix
//!   (the anytime property of the greedy selection), so degraded answers
//!   stay inside the determinism contract. Step-budget deadlines
//!   ([`crate::cancel::Deadline`]) need no clock at all and are preferred
//!   everywhere below the daemon boundary.

use std::time::{Duration, Instant};

/// Reads the monotonic clock for observability timing and soft deadlines.
///
/// Never branch on this value to pick *what* is computed in library code:
/// results must be a pure function of `(graph, query spec, seed)`, and the
/// determinism suite (bit-identity at every thread count × lane width) is
/// the oracle. Branching on *how far* an anytime run proceeds
/// ([`SoftDeadline`]) is the one sanctioned exception.
#[inline]
pub(crate) fn monotonic_now() -> Instant {
    // flowmax-lint: allow(L3, sanctioned observability clock: feeds SolveRun::elapsed, serving metrics and SoftDeadline stop points only — never what any step computes, only how many anytime steps run)
    Instant::now()
}

/// A wall-clock stop line for an anytime run, sanctioned at the daemon
/// boundary.
///
/// Expiry is checked between greedy iterations only: it decides how many
/// steps commit, never what any step computes, so a deadline-truncated
/// selection is bit-identical to the same-seed full run's prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftDeadline {
    expires_at: Instant,
}

impl SoftDeadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        SoftDeadline {
            expires_at: monotonic_now() + budget,
        }
    }

    /// True once the wall clock has reached the deadline.
    pub fn expired(&self) -> bool {
        monotonic_now() >= self.expires_at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.expires_at.saturating_duration_since(monotonic_now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_deadline_expires_and_reports_remaining() {
        let generous = SoftDeadline::after(Duration::from_secs(3600));
        assert!(!generous.expired());
        assert!(generous.remaining() > Duration::from_secs(3000));

        let immediate = SoftDeadline::after(Duration::ZERO);
        assert!(immediate.expired());
        assert_eq!(immediate.remaining(), Duration::ZERO);
    }
}
