//! The sanctioned wall-clock read of `flowmax-core`.
//!
//! Library code must not read the clock (lint rule L3): a timing read in a
//! decision path is how "same seed, different machine, different answer"
//! bugs are born. The one legitimate use is *observability* — reporting how
//! long a solve took — and that single read is funnelled through
//! [`monotonic_now`] so the suppression below is the only L3 exemption in
//! the crate. Everything this value feeds ([`SolveRun::elapsed`]
//! (crate::session::SolveRun::elapsed), serve metrics) is a passenger of
//! the result, never an input to selection, sampling, or replay.

use std::time::Instant;

/// Reads the monotonic clock for observability timing.
///
/// Never branch on this value in library code: results must be a pure
/// function of `(graph, query spec, seed)`, and the determinism suite
/// (bit-identity at every thread count × lane width) is the oracle.
#[inline]
pub(crate) fn monotonic_now() -> Instant {
    // flowmax-lint: allow(L3, sanctioned observability clock: feeds SolveRun::elapsed and serving metrics only, never any selection or sampling decision)
    Instant::now()
}
