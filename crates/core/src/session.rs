//! The session-based solver API: reusable multi-query sessions, streaming
//! selection, and `Result`-based errors.
//!
//! The paper's greedy selection (§6.1) is *anytime*: no iteration ever
//! looks at the remaining budget, so the selection order at budget `k` is a
//! valid answer for every budget `≤ k`. A [`Session`] exploits that — and
//! the fact that per-graph state (the sampling worker configuration, seed
//! derivation, the evaluation estimator, the Dijkstra baseline's spanning
//! trees) is independent of any single query — to serve many queries and
//! budgets from one set of shared state:
//!
//! * [`Session::query`] starts a typed builder; [`QueryBuilder::run`]
//!   executes one query and returns a [`SolveRun`];
//! * [`QueryBuilder::run_with`] additionally **streams** one
//!   [`SelectionStep`] per committed edge while the run executes;
//! * [`SolveRun::flow_at`] evaluates any prefix of the selection, so one
//!   run at budget `K` answers every budget `≤ K` exactly as `K`
//!   independent runs would;
//! * [`Session::run_many`] shards a batch of independent queries across
//!   the configured worker threads — the multi-user serving mode.
//!
//! Every entry point returns `Result<_, CoreError>` instead of panicking
//! on invalid input. The legacy one-shot [`solve`](crate::solver::solve)
//! API is a thin shim over this module and produces bit-identical results.
//!
//! ```
//! use flowmax_core::{Algorithm, CoreError, Session};
//! use flowmax_graph::{GraphBuilder, Probability, Weight};
//!
//! let mut b = GraphBuilder::new();
//! let q = b.add_vertex(Weight::ZERO);
//! let v = b.add_vertex(Weight::new(5.0).unwrap());
//! b.add_edge(q, v, Probability::new(0.8).unwrap()).unwrap();
//! let graph = b.build();
//!
//! let session = Session::new(&graph).with_seed(42);
//! let run = session.query(q)?.algorithm(Algorithm::FtM).budget(1).run()?;
//! assert_eq!(run.selected.len(), 1);
//! assert!((run.flow - 4.0).abs() < 1e-9);
//! # Ok::<(), CoreError>(())
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use flowmax_graph::{
    max_probability_spanning_tree_full, EdgeId, ProbabilisticGraph, SpanningTree, VertexId,
};
use flowmax_sampling::ParallelEstimator;

use crate::baselines::{dijkstra_select_from_tree, naive_select_observed, NaiveConfig};
use crate::cancel::{RunControl, StopCause};
use crate::error::CoreError;
use crate::estimator::EstimatorConfig;
use crate::metrics::SelectionMetrics;
use crate::selection::greedy::{greedy_select_controlled, CiEngine, GreedyConfig};
use crate::selection::observer::{NoObserver, SelectionObserver, SelectionStep};
use crate::solver::{evaluate_selection_with_parallelism, Algorithm};

/// Seed-stream tag separating the shared evaluator's randomness from the
/// selection's (the legacy `solve` used the same tag, so session runs are
/// bit-identical to it).
pub(crate) const EVAL_SEED_TAG: u64 = 0xE7A1;

/// Default bound of the per-graph spanning-tree cache: plenty for a few hot
/// Dijkstra roots, small enough that a daemon serving arbitrary query
/// vertices can never leak (each tree is O(V)).
pub const DEFAULT_SPANNING_CACHE_CAPACITY: usize = 32;

/// A bounded LRU of Dijkstra spanning trees keyed by root vertex.
/// Most-recently-used entries live at the back of the deque; capacity is
/// at least 1. Linear scans are fine: the capacity is tens, not millions,
/// and each hit already amortizes an O(E log V) Dijkstra run.
#[derive(Debug)]
struct TreeLru {
    capacity: usize,
    entries: VecDeque<(VertexId, Arc<SpanningTree>)>,
}

impl TreeLru {
    fn new(capacity: usize) -> Self {
        TreeLru {
            capacity: capacity.max(1),
            entries: VecDeque::new(),
        }
    }

    fn get_or_insert_with(
        &mut self,
        key: VertexId,
        make: impl FnOnce() -> Arc<SpanningTree>,
    ) -> Arc<SpanningTree> {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            let hit = self.entries.remove(pos).expect("position came from iter");
            self.entries.push_back(hit);
        } else {
            if self.entries.len() == self.capacity {
                self.entries.pop_front();
            }
            self.entries.push_back((key, make()));
        }
        self.entries.back().expect("just pushed").1.clone()
    }
}

/// The shareable per-graph half of a [`Session`]: today, the bounded
/// spanning-tree cache behind the Dijkstra baseline.
///
/// Sessions are cheap, short-lived views (`Session<'g>` borrows its
/// graph); a long-lived server instead keeps one `Arc<SessionState>` per
/// resident graph and hands it to every session over that graph via
/// [`Session::with_state`], so warm state survives individual sessions.
/// **A state must only ever be shared between sessions over the same
/// graph** — trees are keyed by root vertex alone.
///
/// The cache is bounded (LRU, default
/// [`DEFAULT_SPANNING_CACHE_CAPACITY`]), so a daemon serving arbitrary
/// query vertices cannot leak, and lock poisoning is recovered via
/// [`PoisonError::into_inner`] instead of panicking: a tree is either
/// fully inserted or absent, so the cache is valid after any panic and
/// one crashed query cannot take the whole session (or server) down.
#[derive(Debug)]
pub struct SessionState {
    spanning_trees: Mutex<TreeLru>,
}

impl SessionState {
    /// A fresh state with the default spanning-tree cache capacity.
    pub fn new() -> Self {
        SessionState::with_capacity(DEFAULT_SPANNING_CACHE_CAPACITY)
    }

    /// A fresh state whose spanning-tree cache holds at most `capacity`
    /// trees (clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        SessionState {
            spanning_trees: Mutex::new(TreeLru::new(capacity)),
        }
    }

    /// Trees currently cached (for stats endpoints and tests).
    pub fn cached_trees(&self) -> usize {
        self.lock_trees().entries.len()
    }

    fn lock_trees(&self) -> std::sync::MutexGuard<'_, TreeLru> {
        // A panicked query thread poisons the mutex but never leaves the
        // LRU half-updated (insertions happen via a completed
        // `get_or_insert_with`), so recovering the guard is sound.
        self.spanning_trees
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl Default for SessionState {
    fn default() -> Self {
        SessionState::new()
    }
}

/// A reusable multi-query solver session over one probabilistic graph.
///
/// The session owns everything that is per-graph rather than per-query:
/// the worker-thread count for Monte-Carlo sampling, the master seed that
/// queries derive their seeds from, the shared high-fidelity evaluation
/// estimator, and a cache of Dijkstra spanning trees keyed by query
/// vertex. Queries are configured through [`Session::query`]'s typed
/// builder and executed with [`QueryBuilder::run`] /
/// [`Session::run_many`].
///
/// Results never depend on the worker count or on whether queries run
/// solo or batched — only wall-clock time does.
#[derive(Debug)]
pub struct Session<'g> {
    graph: &'g ProbabilisticGraph,
    threads: usize,
    lane_words: usize,
    seed: u64,
    evaluation: EstimatorConfig,
    state: Arc<SessionState>,
}

impl<'g> Session<'g> {
    /// A session over `graph` with the paper's defaults: master seed 42,
    /// the hybrid evaluation estimator, and the `FLOWMAX_THREADS` worker
    /// count (default 1).
    pub fn new(graph: &'g ProbabilisticGraph) -> Self {
        Session {
            graph,
            threads: flowmax_sampling::default_threads(),
            lane_words: flowmax_sampling::default_lane_words(),
            seed: 42,
            evaluation: EstimatorConfig::hybrid(16, 3000),
            state: Arc::new(SessionState::new()),
        }
    }

    /// Sets the worker-thread count for Monte-Carlo sampling. A request of
    /// 0 is invalid and clamped to 1 with a one-time process-wide stderr
    /// warning — the same story as `FLOWMAX_THREADS` parsing and the CLI's
    /// `--threads`. Changing this never changes results, only wall-clock
    /// time — every sampling engine in the workspace is thread-count
    /// invariant.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = flowmax_sampling::clamp_threads(threads, "Session::with_threads");
        self
    }

    /// Sets the sampling lane width, in 64-world lane words per BFS block.
    /// Supported widths are 1, 4 and 8 (64/256/512 worlds per traversal);
    /// anything else is clamped to 1 with a one-time process-wide stderr
    /// warning — the same story as `FLOWMAX_LANES` parsing and the CLIs'
    /// `--lanes`. Changing this never changes results, only wall-clock
    /// time — every sampling engine in the workspace is lane-width
    /// invariant.
    pub fn with_lane_words(mut self, lane_words: usize) -> Self {
        self.lane_words =
            flowmax_sampling::clamp_lane_words(lane_words, "Session::with_lane_words");
        self
    }

    /// Shares per-graph state (the bounded spanning-tree cache) with this
    /// session — the serving path, where sessions are short-lived views
    /// over a resident graph and its long-lived [`SessionState`]. The
    /// state **must** belong to this session's graph.
    pub fn with_state(mut self, state: Arc<SessionState>) -> Self {
        self.state = state;
        self
    }

    /// Replaces the session's state with a fresh one whose spanning-tree
    /// cache holds at most `capacity` trees (clamped to at least 1).
    pub fn with_spanning_cache_capacity(mut self, capacity: usize) -> Self {
        self.state = Arc::new(SessionState::with_capacity(capacity));
        self
    }

    /// The session's shareable per-graph state.
    pub fn state(&self) -> &Arc<SessionState> {
        &self.state
    }

    /// Sets the master seed that queries default to.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the shared high-fidelity estimator used to evaluate every
    /// final selection (and [`SolveRun::flow_at`] prefixes) uniformly
    /// across algorithms.
    pub fn with_evaluation(mut self, evaluation: EstimatorConfig) -> Self {
        self.evaluation = evaluation;
        self
    }

    /// The graph this session serves.
    pub fn graph(&self) -> &'g ProbabilisticGraph {
        self.graph
    }

    /// The sampling worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The sampling lane width, in 64-world lane words per BFS block.
    pub fn lane_words(&self) -> usize {
        self.lane_words
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shared evaluation estimator.
    pub fn evaluation(&self) -> EstimatorConfig {
        self.evaluation
    }

    /// Starts a query builder for query vertex `query`, at the paper's
    /// defaults (`FT+M+CI+DS`, 1000 samples, α = 0.01, c = 2, the
    /// session's master seed). The budget starts at 0 and **must** be set
    /// with [`QueryBuilder::budget`] before running.
    ///
    /// # Errors
    ///
    /// [`CoreError::QueryOutOfBounds`] if `query` is not a vertex of the
    /// session's graph.
    pub fn query(&self, query: VertexId) -> Result<QueryBuilder<'_, 'g>, CoreError> {
        if query.index() >= self.graph.vertex_count() {
            return Err(CoreError::QueryOutOfBounds {
                query,
                vertex_count: self.graph.vertex_count(),
            });
        }
        Ok(QueryBuilder {
            session: self,
            spec: QuerySpec {
                vertex: query,
                algorithm: Algorithm::FtMCiDs,
                budget: 0,
                samples: 1000,
                exact_edge_cap: 0,
                alpha: 0.01,
                ci_engine: CiEngine::BatchedRace,
                ds_penalty_c: 2.0,
                include_query: false,
                seed: self.seed,
                scalar_estimation: false,
                cloning_probes: false,
                incremental: true,
            },
        })
    }

    /// Runs a batch of independent queries, sharding them across the
    /// session's worker threads, and returns one [`SolveRun`] per spec in
    /// input order.
    ///
    /// Each query is bit-identical to running it solo through
    /// [`QueryBuilder::run`], at any thread count: when the batch is
    /// sharded, each query samples single-threaded on its worker, and
    /// every estimator in the workspace is thread-count invariant.
    ///
    /// # Errors
    ///
    /// Validates every spec up front (budget ≥ 1, samples ≥ 1, query in
    /// bounds) and returns the first violation before any work runs.
    ///
    /// ```
    /// use flowmax_core::{Algorithm, CoreError, Session};
    /// use flowmax_graph::{GraphBuilder, Probability, VertexId, Weight};
    ///
    /// let mut b = GraphBuilder::new();
    /// b.add_vertex(Weight::ZERO);
    /// for w in [5.0, 3.0, 8.0] {
    ///     b.add_vertex(Weight::new(w).unwrap());
    /// }
    /// let p = |v| Probability::new(v).unwrap();
    /// b.add_edge(VertexId(0), VertexId(1), p(0.9)).unwrap();
    /// b.add_edge(VertexId(1), VertexId(2), p(0.7)).unwrap();
    /// b.add_edge(VertexId(0), VertexId(3), p(0.6)).unwrap();
    /// b.add_edge(VertexId(2), VertexId(3), p(0.5)).unwrap();
    /// let graph = b.build();
    ///
    /// // Multi-user serving: several queries, one shared session.
    /// let session = Session::new(&graph);
    /// let specs = vec![
    ///     session.query(VertexId(0))?.budget(2).samples(200).spec(),
    ///     session.query(VertexId(2))?.budget(3).samples(200).spec(),
    ///     session.query(VertexId(0))?.budget(2).samples(200).spec(),
    /// ];
    /// let runs = session.run_many(&specs)?;
    /// assert_eq!(runs.len(), 3);
    ///
    /// // Batched runs are bit-identical to solo runs of the same spec.
    /// let solo = session.query(VertexId(0))?.budget(2).samples(200).run()?;
    /// assert_eq!(runs[0].selected, solo.selected);
    /// assert_eq!(runs[0].flow, solo.flow);
    /// // Repeated queries are bit-identical to each other.
    /// assert_eq!(runs[0].selected, runs[2].selected);
    /// assert_eq!(runs[0].flow, runs[2].flow);
    /// # Ok::<(), CoreError>(())
    /// ```
    pub fn run_many(&self, specs: &[QuerySpec]) -> Result<Vec<SolveRun<'g>>, CoreError> {
        self.run_many_with(specs, &|_, _| {})
    }

    /// [`run_many`](Session::run_many) with streaming: `on_step` receives
    /// `(spec index, step)` for every committed edge of every query, as it
    /// commits. This is the serving daemon's entry point — a coalesced
    /// batch of queries streams anytime partial selections to each client
    /// while the batch executes.
    ///
    /// Steps of one spec arrive in commit order; steps of different specs
    /// interleave arbitrarily (they execute concurrently), so `on_step`
    /// must be `Sync` and demultiplex by the spec index. Results are
    /// bit-identical to [`run_many`](Session::run_many).
    pub fn run_many_with(
        &self,
        specs: &[QuerySpec],
        on_step: &(dyn Fn(usize, &SelectionStep) + Sync),
    ) -> Result<Vec<SolveRun<'g>>, CoreError> {
        self.run_many_controlled(specs, &[], on_step)
    }

    /// [`run_many_with`](Session::run_many_with) with per-query run
    /// controls: `controls[i]` (cancellation token and/or deadline) governs
    /// `specs[i]`. Pass an empty slice to leave every query uncontrolled.
    ///
    /// A stopped query reports its cause in [`SolveRun::stopped`] and its
    /// selection is **bit-identical to the same-seed uncontrolled run's
    /// prefix** of the same length (the greedy selection's anytime
    /// property: stop checks sit strictly between iterations and never
    /// change what an iteration computes).
    ///
    /// # Errors
    ///
    /// [`CoreError::ControlMismatch`] when `controls` is non-empty but its
    /// length differs from `specs`; plus everything
    /// [`run_many`](Session::run_many) validates.
    pub fn run_many_controlled(
        &self,
        specs: &[QuerySpec],
        controls: &[RunControl],
        on_step: &(dyn Fn(usize, &SelectionStep) + Sync),
    ) -> Result<Vec<SolveRun<'g>>, CoreError> {
        if !controls.is_empty() && controls.len() != specs.len() {
            return Err(CoreError::ControlMismatch {
                controls: controls.len(),
                specs: specs.len(),
            });
        }
        for spec in specs {
            self.validate(spec)?;
        }
        let unlimited = RunControl::unlimited();
        let control_of = |i: usize| -> &RunControl {
            if controls.is_empty() {
                &unlimited
            } else {
                &controls[i]
            }
        };
        if specs.len() <= 1 || self.threads <= 1 {
            return Ok(specs
                .iter()
                .enumerate()
                .map(|(i, spec)| {
                    self.execute(
                        spec,
                        self.threads,
                        control_of(i),
                        &mut IndexedForward { index: i, on_step },
                    )
                })
                .collect());
        }
        let pool = ParallelEstimator::new(self.threads);
        let mut runs = pool.run_jobs(specs.len(), |i| {
            // Workers run whole queries, so each query samples on one
            // thread; thread-count invariance makes this bit-identical to
            // a solo multi-threaded run.
            self.execute(
                &specs[i],
                1,
                control_of(i),
                &mut IndexedForward { index: i, on_step },
            )
        });
        for run in &mut runs {
            // The batch is done: later prefix evaluations (`flow_at`) run
            // solo, so give them the session's full worker count (results
            // are identical at any count, only wall-clock time changes).
            run.threads = self.threads;
        }
        Ok(runs)
    }

    fn validate(&self, spec: &QuerySpec) -> Result<(), CoreError> {
        if spec.vertex.index() >= self.graph.vertex_count() {
            return Err(CoreError::QueryOutOfBounds {
                query: spec.vertex,
                vertex_count: self.graph.vertex_count(),
            });
        }
        if spec.budget == 0 {
            return Err(CoreError::EmptyBudget);
        }
        if spec.samples == 0 {
            return Err(CoreError::ZeroSamples);
        }
        Ok(())
    }

    /// The cached maximum-probability spanning tree rooted at `query`
    /// (computed on first use; reused by every later Dijkstra query until
    /// LRU-evicted — see [`SessionState`]).
    fn spanning_tree(&self, query: VertexId) -> Arc<SpanningTree> {
        self.state.lock_trees().get_or_insert_with(query, || {
            Arc::new(max_probability_spanning_tree_full(self.graph, query))
        })
    }

    /// Runs one spec without validation (the legacy `solve` shim reaches
    /// this directly to preserve its permissive behaviour bit for bit).
    ///
    /// `control` applies to the greedy algorithms only: the baselines are
    /// cheap enough (Dijkstra never samples; Naive exists for comparison
    /// runs, not serving) that threading stop checks through them would
    /// complicate them for no operational gain — their runs always
    /// complete with `stopped: None`.
    pub(crate) fn execute(
        &self,
        spec: &QuerySpec,
        threads: usize,
        control: &RunControl,
        observer: &mut dyn SelectionObserver,
    ) -> SolveRun<'g> {
        let mut collector = StepCollector {
            steps: Vec::new(),
            forward: observer,
        };
        let start = crate::clock::monotonic_now();
        let outcome = match spec.algorithm {
            Algorithm::Naive => naive_select_observed(
                self.graph,
                spec.vertex,
                &NaiveConfig {
                    budget: spec.budget,
                    samples: spec.samples,
                    include_query: spec.include_query,
                    seed: spec.seed,
                    threads,
                    lane_words: self.lane_words,
                },
                &mut collector,
            ),
            Algorithm::Dijkstra => {
                let tree = self.spanning_tree(spec.vertex);
                dijkstra_select_from_tree(
                    self.graph,
                    &tree,
                    spec.budget,
                    spec.include_query,
                    &mut collector,
                )
            }
            _ => greedy_select_controlled(
                self.graph,
                spec.vertex,
                &spec.greedy_config(threads, self.lane_words),
                control,
                &mut collector,
            ),
        };
        let elapsed = start.elapsed();
        let eval_seed = spec.seed ^ EVAL_SEED_TAG;
        // Evaluate the selection exactly as the legacy `solve` did — in the
        // algorithm's own output order (ascending edge ids for the F-tree
        // algorithms, commit order for the baselines) — so session flows
        // are bit-identical to the shim's.
        let flow = evaluate_selection_with_parallelism(
            self.graph,
            spec.vertex,
            &outcome.selected,
            self.evaluation,
            spec.include_query,
            eval_seed,
            threads,
            self.lane_words,
        );
        // The public selection is the *commit order* (one edge per step);
        // it is the same edge set as `outcome.selected`.
        let selected: Vec<EdgeId> = collector.steps.iter().map(|s| s.edge).collect();
        debug_assert_eq!(selected.len(), outcome.selected.len());
        SolveRun {
            graph: self.graph,
            evaluation: self.evaluation,
            include_query: spec.include_query,
            eval_seed,
            threads,
            lane_words: self.lane_words,
            evaluated_order: outcome.selected,
            query: spec.vertex,
            algorithm: spec.algorithm,
            selected,
            steps: collector.steps,
            flow,
            algorithm_flow: outcome.final_flow,
            elapsed,
            metrics: outcome.metrics,
            stopped: outcome.stopped,
        }
    }
}

/// Adapts a shared `(spec index, step)` callback to the per-query
/// [`SelectionObserver`] seam, for [`Session::run_many_with`].
struct IndexedForward<'a> {
    index: usize,
    on_step: &'a (dyn Fn(usize, &SelectionStep) + Sync),
}

impl SelectionObserver for IndexedForward<'_> {
    fn on_step(&mut self, step: &SelectionStep) {
        (self.on_step)(self.index, step);
    }
}

/// Collects the step stream for [`SolveRun::steps`] while forwarding each
/// event to the caller's observer.
struct StepCollector<'a> {
    steps: Vec<SelectionStep>,
    forward: &'a mut dyn SelectionObserver,
}

impl SelectionObserver for StepCollector<'_> {
    fn on_step(&mut self, step: &SelectionStep) {
        self.steps.push(*step);
        self.forward.on_step(step);
    }
}

/// A fully resolved query plan: the output of [`Session::query`]'s builder
/// and the input of [`Session::run_many`].
///
/// Specs are plain values (`Copy`), so a serving loop can build them once
/// and replay them; construct them through the builder so the query vertex
/// is validated against the session's graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySpec {
    pub(crate) vertex: VertexId,
    pub(crate) algorithm: Algorithm,
    pub(crate) budget: usize,
    pub(crate) samples: u32,
    pub(crate) exact_edge_cap: usize,
    pub(crate) alpha: f64,
    pub(crate) ci_engine: CiEngine,
    pub(crate) ds_penalty_c: f64,
    pub(crate) include_query: bool,
    pub(crate) seed: u64,
    pub(crate) scalar_estimation: bool,
    pub(crate) cloning_probes: bool,
    pub(crate) incremental: bool,
}

impl QuerySpec {
    /// The query vertex.
    pub fn vertex(&self) -> VertexId {
        self.vertex
    }

    /// The selected algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The edge budget `k`.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The single conversion path from a query spec to the greedy
    /// selection's configuration: both structs are handled exhaustively
    /// (no `..` on either side), so adding a knob to one of them is a
    /// compile error here instead of a silently missing field.
    pub(crate) fn greedy_config(&self, threads: usize, lane_words: usize) -> GreedyConfig {
        let QuerySpec {
            vertex: _,
            algorithm,
            budget,
            samples,
            exact_edge_cap,
            alpha,
            ci_engine,
            ds_penalty_c,
            include_query,
            seed,
            scalar_estimation,
            cloning_probes,
            incremental,
        } = *self;
        let (memoize, confidence_pruning, delayed_sampling) = match algorithm {
            Algorithm::Naive | Algorithm::Dijkstra | Algorithm::Ft => (false, false, false),
            Algorithm::FtM => (true, false, false),
            Algorithm::FtMCi => (true, true, false),
            Algorithm::FtMDs => (true, false, true),
            Algorithm::FtMCiDs => (true, true, true),
        };
        GreedyConfig {
            budget,
            samples,
            exact_edge_cap,
            memoize,
            confidence_pruning,
            ci_engine,
            delayed_sampling,
            ds_penalty_c,
            alpha,
            include_query,
            seed,
            threads,
            lane_words,
            scalar_estimation,
            cloning_probes,
            incremental,
        }
    }
}

/// A typed, chainable configuration builder for one query, created by
/// [`Session::query`]. Finish with [`run`](QueryBuilder::run),
/// [`run_with`](QueryBuilder::run_with) for streaming, or
/// [`spec`](QueryBuilder::spec) to extract the plan for
/// [`Session::run_many`].
#[derive(Debug, Clone, Copy)]
pub struct QueryBuilder<'s, 'g> {
    session: &'s Session<'g>,
    spec: QuerySpec,
}

impl<'s, 'g> QueryBuilder<'s, 'g> {
    /// Selects the algorithm (default: the paper's headline
    /// `FT+M+CI+DS`).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.spec.algorithm = algorithm;
        self
    }

    /// Sets the edge budget `k` (required; `run` rejects 0).
    pub fn budget(mut self, budget: usize) -> Self {
        self.spec.budget = budget;
        self
    }

    /// Sets the Monte-Carlo samples per component estimation (paper:
    /// 1000).
    pub fn samples(mut self, samples: u32) -> Self {
        self.spec.samples = samples;
        self
    }

    /// Components with at most this many uncertain edges are enumerated
    /// exactly during selection instead of sampled (0 = pure Monte-Carlo,
    /// the paper's setting).
    pub fn exact_edge_cap(mut self, cap: usize) -> Self {
        self.spec.exact_edge_cap = cap;
        self
    }

    /// Sets the CI significance level `α` (paper: 0.01).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.spec.alpha = alpha;
        self
    }

    /// Picks the §6.3 race engine for the `CI` variants (default: the
    /// batched racing engine).
    pub fn ci_engine(mut self, engine: CiEngine) -> Self {
        self.spec.ci_engine = engine;
        self
    }

    /// Sets the delayed-sampling penalty `c` (paper: 2).
    pub fn ds_penalty_c(mut self, c: f64) -> Self {
        self.spec.ds_penalty_c = c;
        self
    }

    /// Whether `W(Q)` counts toward the flow (default: no).
    pub fn include_query(mut self, include: bool) -> Self {
        self.spec.include_query = include;
        self
    }

    /// Overrides the session's master seed for this query.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Estimates components with the scalar one-world-per-BFS reference
    /// kernel instead of the bit-parallel engine (baseline benchmarking).
    pub fn scalar_estimation(mut self, scalar: bool) -> Self {
        self.spec.scalar_estimation = scalar;
        self
    }

    /// Probes structural candidates through the pinned clone-based
    /// reference engine instead of the undo journal (baseline
    /// benchmarking; results are bit-identical, only slower).
    pub fn cloning_probes(mut self, cloning: bool) -> Self {
        self.spec.cloning_probes = cloning;
        self
    }

    /// Maintains probe flow as `base + Δ(touched)` and commits winners by
    /// replaying their probe journals (default: on). Turning it off runs
    /// the PR-5 journal reference engine — full-tree flow re-aggregation
    /// and `insert_edge` commits — with bit-identical results, only
    /// slower. Ignored (always off) under
    /// [`QueryBuilder::cloning_probes`].
    pub fn incremental(mut self, incremental: bool) -> Self {
        self.spec.incremental = incremental;
        self
    }

    /// Extracts the validated query plan, e.g. for [`Session::run_many`].
    pub fn spec(self) -> QuerySpec {
        self.spec
    }

    /// Runs the query.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyBudget`] if no budget was set (or it is 0);
    /// [`CoreError::ZeroSamples`] if the sample budget is 0.
    pub fn run(self) -> Result<SolveRun<'g>, CoreError> {
        self.run_with(&mut NoObserver)
    }

    /// Runs the query, streaming one [`SelectionStep`] per committed edge
    /// to `observer` while the selection executes. Closures observe too:
    ///
    /// ```no_run
    /// # use flowmax_core::{Algorithm, CoreError, SelectionStep, Session};
    /// # use flowmax_graph::{GraphBuilder, VertexId, Weight};
    /// # let graph = { let mut b = GraphBuilder::new(); b.add_vertex(Weight::ZERO); b.build() };
    /// # let session = Session::new(&graph);
    /// let run = session
    ///     .query(VertexId(0))?
    ///     .budget(8)
    ///     .run_with(&mut |step: &SelectionStep| {
    ///         println!("picked {} (flow {:.3})", step.edge, step.flow);
    ///     })?;
    /// # Ok::<(), CoreError>(())
    /// ```
    pub fn run_with(self, observer: &mut dyn SelectionObserver) -> Result<SolveRun<'g>, CoreError> {
        self.run_controlled_with(&RunControl::unlimited(), observer)
    }

    /// Runs the query under a [`RunControl`] (cancellation token and/or
    /// deadline). A stopped run reports its cause in [`SolveRun::stopped`]
    /// and its selection is bit-identical to the same-seed uncontrolled
    /// run's prefix of the same length.
    ///
    /// # Errors
    ///
    /// Same as [`run`](QueryBuilder::run).
    pub fn run_controlled(self, control: &RunControl) -> Result<SolveRun<'g>, CoreError> {
        self.run_controlled_with(control, &mut NoObserver)
    }

    /// [`run_controlled`](QueryBuilder::run_controlled) with streaming, as
    /// in [`run_with`](QueryBuilder::run_with).
    ///
    /// # Errors
    ///
    /// Same as [`run`](QueryBuilder::run).
    pub fn run_controlled_with(
        self,
        control: &RunControl,
        observer: &mut dyn SelectionObserver,
    ) -> Result<SolveRun<'g>, CoreError> {
        self.session.validate(&self.spec)?;
        Ok(self
            .session
            .execute(&self.spec, self.session.threads, control, observer))
    }
}

/// The result of one session query: the full anytime record of a
/// selection run, not just its endpoint.
///
/// Beyond the fields of the legacy `SolveResult`, a run keeps the
/// per-iteration [`steps`](SolveRun::steps) stream and can evaluate any
/// prefix of its selection with [`flow_at`](SolveRun::flow_at) — one run
/// at budget `K` answers every budget `≤ K` exactly as independent runs
/// would.
#[derive(Debug, Clone)]
pub struct SolveRun<'g> {
    graph: &'g ProbabilisticGraph,
    evaluation: EstimatorConfig,
    include_query: bool,
    eval_seed: u64,
    threads: usize,
    lane_words: usize,
    /// The selection in the order the legacy `solve` evaluated (and
    /// returned) it: ascending edge ids for the F-tree algorithms, commit
    /// order for the baselines. Kept so the deprecated shim stays
    /// bit-identical.
    pub(crate) evaluated_order: Vec<EdgeId>,
    /// The query vertex.
    pub query: VertexId,
    /// The algorithm that produced the run.
    pub algorithm: Algorithm,
    /// Selected edges in commit (selection) order — `selected[i]` is the
    /// edge of `steps[i]`.
    pub selected: Vec<EdgeId>,
    /// One step per committed edge, in commit order.
    pub steps: Vec<SelectionStep>,
    /// Flow of the full selection under the session's shared
    /// high-fidelity evaluator.
    pub flow: f64,
    /// Flow as estimated by the algorithm itself during selection.
    pub algorithm_flow: f64,
    /// Wall-clock time of the selection (excludes final evaluation).
    pub elapsed: Duration,
    /// Work counters from the selection.
    pub metrics: SelectionMetrics,
    /// Why the run stopped early, if it did. `None` means the run used
    /// its full edge budget (or exhausted the candidate pool). `Some`
    /// means a [`RunControl`] stopped it between iterations — the
    /// selection is then bit-identical to the same-seed uncontrolled
    /// run's prefix of the same length.
    pub stopped: Option<StopCause>,
}

impl SolveRun<'_> {
    /// The selection truncated to `budget` edges — exactly the selection
    /// an independent run of the same spec at that budget would produce
    /// (the anytime prefix property).
    pub fn selection_at(&self, budget: usize) -> &[EdgeId] {
        &self.selected[..budget.min(self.selected.len())]
    }

    /// Evaluates the first `budget` selected edges with the session's
    /// shared evaluator — bit-identical to the `flow` of an independent
    /// run of the same spec at budget `budget`.
    pub fn flow_at(&self, budget: usize) -> f64 {
        if budget >= self.selected.len() {
            return self.flow;
        }
        // An independent run at this budget would hand the evaluator its
        // own output order: ascending edge ids for the F-tree algorithms
        // (their selection is an `EdgeSubset`), commit order for the
        // baselines. Mirror that exactly so the sampled evaluation draws
        // the same estimates bit for bit.
        let mut prefix = self.selection_at(budget).to_vec();
        if !matches!(self.algorithm, Algorithm::Naive | Algorithm::Dijkstra) {
            prefix.sort_unstable();
        }
        evaluate_selection_with_parallelism(
            self.graph,
            self.query,
            &prefix,
            self.evaluation,
            self.include_query,
            self.eval_seed,
            self.threads,
            self.lane_words,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::{GraphBuilder, Probability, Weight};

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    /// The solver-test graph: unambiguous greedy ranking.
    fn graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertex(Weight::ZERO); // Q
        for w in [5.0, 3.0, 8.0, 1.0] {
            b.add_vertex(Weight::new(w).unwrap());
        }
        b.add_edge(VertexId(0), VertexId(1), p(0.9)).unwrap();
        b.add_edge(VertexId(0), VertexId(2), p(0.8)).unwrap();
        b.add_edge(VertexId(1), VertexId(3), p(0.7)).unwrap();
        b.add_edge(VertexId(2), VertexId(3), p(0.6)).unwrap();
        b.add_edge(VertexId(3), VertexId(4), p(0.5)).unwrap();
        b.build()
    }

    #[test]
    fn builder_validates_inputs() {
        let g = graph();
        let session = Session::new(&g);
        assert!(matches!(
            session.query(VertexId(99)),
            Err(CoreError::QueryOutOfBounds { .. })
        ));
        let no_budget = session.query(VertexId(0)).unwrap().run();
        assert!(matches!(no_budget, Err(CoreError::EmptyBudget)));
        let no_samples = session
            .query(VertexId(0))
            .unwrap()
            .budget(2)
            .samples(0)
            .run();
        assert!(matches!(no_samples, Err(CoreError::ZeroSamples)));
    }

    #[test]
    fn run_streams_one_step_per_selected_edge() {
        let g = graph();
        let session = Session::new(&g).with_seed(7);
        let mut streamed = Vec::new();
        let run = session
            .query(VertexId(0))
            .unwrap()
            .algorithm(Algorithm::FtM)
            .budget(3)
            .run_with(&mut |s: &SelectionStep| streamed.push(s.edge))
            .unwrap();
        assert_eq!(run.steps.len(), run.selected.len());
        assert_eq!(streamed, run.selected);
        for (i, step) in run.steps.iter().enumerate() {
            assert_eq!(step.iteration, i);
            assert_eq!(step.edge, run.selected[i]);
        }
        // The cumulative flow of the last step is the run's own estimate.
        assert_eq!(run.steps.last().unwrap().flow, run.algorithm_flow);
    }

    #[test]
    fn flow_at_full_budget_is_the_final_flow() {
        let g = graph();
        let session = Session::new(&g).with_seed(3);
        let run = session
            .query(VertexId(0))
            .unwrap()
            .algorithm(Algorithm::FtMCiDs)
            .budget(4)
            .run()
            .unwrap();
        assert_eq!(run.flow_at(run.selected.len()), run.flow);
        assert_eq!(run.flow_at(usize::MAX), run.flow);
        assert_eq!(run.flow_at(0), 0.0);
        assert_eq!(run.selection_at(2), &run.selected[..2]);
    }

    #[test]
    fn dijkstra_spanning_tree_is_cached_across_queries() {
        let g = graph();
        let session = Session::new(&g);
        let a = session
            .query(VertexId(0))
            .unwrap()
            .algorithm(Algorithm::Dijkstra)
            .budget(2)
            .run()
            .unwrap();
        assert_eq!(session.state().cached_trees(), 1);
        let b = session
            .query(VertexId(0))
            .unwrap()
            .algorithm(Algorithm::Dijkstra)
            .budget(4)
            .run()
            .unwrap();
        assert_eq!(session.state().cached_trees(), 1);
        // Anytime property across budgets on the cached tree.
        assert_eq!(a.selected, b.selection_at(2));
    }

    #[test]
    fn spanning_tree_cache_is_bounded_lru() {
        let g = graph();
        let session = Session::new(&g).with_spanning_cache_capacity(2);
        for v in [0u32, 1, 2, 3, 4] {
            session
                .query(VertexId(v))
                .unwrap()
                .algorithm(Algorithm::Dijkstra)
                .budget(1)
                .run()
                .unwrap();
            assert!(
                session.state().cached_trees() <= 2,
                "cache exceeded its bound after root {v}"
            );
        }
        // Re-querying the most recent roots must not grow the cache.
        for v in [3u32, 4, 3, 4] {
            session
                .query(VertexId(v))
                .unwrap()
                .algorithm(Algorithm::Dijkstra)
                .budget(1)
                .run()
                .unwrap();
        }
        assert_eq!(session.state().cached_trees(), 2);
        // An evicted root recomputes the same tree: selections agree with
        // a fresh session's.
        let evicted = session
            .query(VertexId(0))
            .unwrap()
            .algorithm(Algorithm::Dijkstra)
            .budget(2)
            .run()
            .unwrap();
        let fresh = Session::new(&g)
            .query(VertexId(0))
            .unwrap()
            .algorithm(Algorithm::Dijkstra)
            .budget(2)
            .run()
            .unwrap();
        assert_eq!(evicted.selected, fresh.selected);
    }

    #[test]
    fn spanning_tree_cache_recovers_from_poison() {
        let g = graph();
        let session = Session::new(&g);
        session
            .query(VertexId(0))
            .unwrap()
            .algorithm(Algorithm::Dijkstra)
            .budget(1)
            .run()
            .unwrap();
        // Poison the cache mutex: panic while holding the lock on another
        // thread, as a crashing query thread would.
        let state = session.state();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let _guard = state.spanning_trees.lock().unwrap();
                panic!("query thread dies while holding the cache lock");
            });
            assert!(handle.join().is_err());
        });
        assert!(state.spanning_trees.lock().is_err(), "mutex is poisoned");
        // The session keeps serving: the cached tree is still readable and
        // new roots still insert.
        assert_eq!(session.state().cached_trees(), 1);
        let run = session
            .query(VertexId(2))
            .unwrap()
            .algorithm(Algorithm::Dijkstra)
            .budget(2)
            .run()
            .unwrap();
        assert_eq!(run.selected.len(), 2);
        assert_eq!(session.state().cached_trees(), 2);
    }

    #[test]
    fn run_many_with_streams_indexed_steps() {
        let g = graph();
        for threads in [1usize, 4] {
            let session = Session::new(&g).with_threads(threads).with_seed(9);
            let specs = vec![
                session
                    .query(VertexId(0))
                    .unwrap()
                    .algorithm(Algorithm::FtM)
                    .budget(2)
                    .spec(),
                session
                    .query(VertexId(3))
                    .unwrap()
                    .algorithm(Algorithm::FtM)
                    .budget(3)
                    .spec(),
            ];
            let streamed: Mutex<Vec<Vec<SelectionStep>>> = Mutex::new(vec![Vec::new(); 2]);
            let runs = session
                .run_many_with(&specs, &|i, step| streamed.lock().unwrap()[i].push(*step))
                .unwrap();
            let streamed = streamed.into_inner().unwrap();
            for (run, got) in runs.iter().zip(&streamed) {
                assert_eq!(run.steps.len(), got.len(), "threads={threads}");
                for (a, b) in run.steps.iter().zip(got) {
                    assert_eq!(a.edge, b.edge);
                    assert_eq!(a.iteration, b.iteration);
                }
            }
        }
    }

    #[test]
    fn run_many_matches_solo_runs_in_order() {
        let g = graph();
        for threads in [1usize, 2, 8] {
            let session = Session::new(&g).with_threads(threads).with_seed(11);
            let specs = vec![
                session
                    .query(VertexId(0))
                    .unwrap()
                    .algorithm(Algorithm::FtM)
                    .budget(2)
                    .spec(),
                session
                    .query(VertexId(3))
                    .unwrap()
                    .algorithm(Algorithm::FtMCiDs)
                    .budget(3)
                    .spec(),
                session
                    .query(VertexId(0))
                    .unwrap()
                    .algorithm(Algorithm::Naive)
                    .budget(2)
                    .samples(100)
                    .spec(),
            ];
            let runs = session.run_many(&specs).unwrap();
            assert_eq!(runs.len(), specs.len());
            for (spec, run) in specs.iter().zip(&runs) {
                let solo = QueryBuilder {
                    session: &session,
                    spec: *spec,
                }
                .run()
                .unwrap();
                assert_eq!(solo.selected, run.selected, "threads={threads}");
                assert_eq!(solo.flow, run.flow, "threads={threads}");
                assert_eq!(solo.algorithm_flow, run.algorithm_flow);
            }
        }
    }

    #[test]
    fn run_many_validates_before_running() {
        let g = graph();
        let session = Session::new(&g);
        let good = session.query(VertexId(0)).unwrap().budget(1).spec();
        let bad = session.query(VertexId(0)).unwrap().spec(); // budget 0
        assert!(matches!(
            session.run_many(&[good, bad]),
            Err(CoreError::EmptyBudget)
        ));
        assert!(session.run_many(&[]).unwrap().is_empty());
    }
}
