//! Error types for F-tree maintenance and edge selection.

use std::fmt;

use flowmax_graph::{EdgeId, VertexId};

/// Errors raised by F-tree operations and the selection algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The edge was already inserted into the F-tree.
    EdgeAlreadySelected(EdgeId),
    /// Neither endpoint of the edge is connected to the query vertex —
    /// the paper's Case I, which its candidate generation rules out (§5.4).
    DisconnectedEdge {
        /// The rejected edge.
        edge: EdgeId,
        /// Its endpoints, both outside the F-tree.
        endpoints: (VertexId, VertexId),
    },
    /// The requested budget is zero.
    EmptyBudget,
    /// The query vertex has no incident edges; no flow can ever be gained.
    IsolatedQuery(VertexId),
    /// The query vertex does not exist in the session's graph.
    QueryOutOfBounds {
        /// The rejected query vertex.
        query: VertexId,
        /// Number of vertices in the graph (valid ids are `0..count`).
        vertex_count: usize,
    },
    /// The Monte-Carlo sample budget is zero; every sampled estimate would
    /// be undefined.
    ZeroSamples,
    /// The algorithm name did not match any of the paper's seven algorithms
    /// (see [`Algorithm::parse`](crate::solver::Algorithm::parse)).
    UnknownAlgorithm(String),
    /// A worker thread panicked while executing the query. The panic was
    /// contained: the worker pool and the serving process stay up, only
    /// this query fails. The payload is the panic message when it was a
    /// string, or a placeholder otherwise.
    WorkerPanicked(String),
    /// The server shut down before this query could run. Admitted but
    /// never-executed queries fail with this terminal error instead of a
    /// silent stream end, so clients can distinguish an orderly shutdown
    /// from a crash.
    ShuttingDown,
    /// A controlled batch run received a run-control slice whose length
    /// matches neither zero (all uncontrolled) nor the spec count.
    ControlMismatch {
        /// Number of controls passed.
        controls: usize,
        /// Number of query specs in the batch.
        specs: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EdgeAlreadySelected(e) => {
                write!(f, "edge {e:?} is already part of the F-tree")
            }
            CoreError::DisconnectedEdge {
                edge,
                endpoints: (a, b),
            } => write!(
                f,
                "edge {edge:?} = ({a:?}, {b:?}) has no endpoint connected to the query \
                 vertex (Case I is excluded by candidate generation)"
            ),
            CoreError::EmptyBudget => write!(f, "edge budget k must be positive"),
            CoreError::IsolatedQuery(q) => {
                write!(f, "query vertex {q:?} has no incident edges")
            }
            CoreError::QueryOutOfBounds {
                query,
                vertex_count,
            } => write!(
                f,
                "query vertex {query:?} is out of bounds for a graph with {vertex_count} vertices"
            ),
            CoreError::ZeroSamples => {
                write!(f, "the Monte-Carlo sample budget must be at least 1")
            }
            CoreError::UnknownAlgorithm(name) => write!(
                f,
                "unknown algorithm {name:?} (expected one of Naive, Dijkstra, FT, FT+M, \
                 FT+M+CI, FT+M+DS, FT+M+CI+DS)"
            ),
            CoreError::WorkerPanicked(msg) => write!(
                f,
                "a worker thread panicked while executing the query ({msg}); \
                 the pool stays serviceable, only this query failed"
            ),
            CoreError::ShuttingDown => {
                write!(f, "the server shut down before the query could run")
            }
            CoreError::ControlMismatch { controls, specs } => write!(
                f,
                "{controls} run controls for {specs} query specs (pass one control per spec, \
                 or none to leave the batch uncontrolled)"
            ),
        }
    }
}

/// Extracts a human-readable message from a caught panic payload, for
/// [`CoreError::WorkerPanicked`].
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_ids() {
        let e = CoreError::EdgeAlreadySelected(EdgeId(3));
        assert!(e.to_string().contains("e3"));
        let e = CoreError::DisconnectedEdge {
            edge: EdgeId(1),
            endpoints: (VertexId(4), VertexId(5)),
        };
        assert!(e.to_string().contains("v4"));
        assert!(CoreError::EmptyBudget.to_string().contains("budget"));
        let e = CoreError::QueryOutOfBounds {
            query: VertexId(9),
            vertex_count: 4,
        };
        assert!(e.to_string().contains("v9"));
        assert!(e.to_string().contains('4'));
        assert!(CoreError::ZeroSamples.to_string().contains("sample"));
        let e = CoreError::UnknownAlgorithm("FT+X".into());
        assert!(e.to_string().contains("FT+X"));
        assert!(e.to_string().contains("FT+M+CI+DS"));
        let e = CoreError::WorkerPanicked("index out of bounds".into());
        assert!(e.to_string().contains("index out of bounds"));
        assert!(e.to_string().contains("serviceable"));
    }

    #[test]
    fn panic_messages_extract_strings() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&String::from("ow")), "ow");
        assert_eq!(panic_message(&42u32), "non-string panic payload");
    }
}
