//! The F-tree (Flow tree) of §5.3 — the paper's central data structure.
//!
//! An F-tree organizes the *selected* subgraph into components, each owning a
//! set of vertices and an **articulation vertex** (AV) that all information
//! from the component must flow through on its way to the query vertex `Q`:
//!
//! * **mono-connected components** are tree-shaped: every member has a unique
//!   path to the AV, so its reachability is an exact product of edge
//!   probabilities (Lemma 2 / Theorem 2) — no sampling;
//! * **bi-connected components** contain cycles: member reachability toward
//!   the AV is estimated (Monte-Carlo per Lemma 1, or exactly for small
//!   components via the pluggable [`EstimateProvider`]).
//!
//! Components form a forest rooted at `Q`: a component's AV is always owned
//! by its parent component (or is `Q` itself for roots), so expected flow
//! aggregates multiplicatively down the tree (independence across components
//! is guaranteed because an articulation vertex separates edge-disjoint
//! subgraphs).
//!
//! Submodules: `insert` implements the edge-insertion cases I–IV of §5.4,
//! `flow` the expected-flow computation, and `validate` an invariant
//! checker used heavily by tests.

mod flow;
mod insert;
mod journal;
mod validate;

pub use flow::{ProbeOutcome, ProbePlan, SampledProbe};
pub use insert::{InsertCase, InsertReport};
pub(crate) use journal::CommitReplay;
pub use journal::Journal;

use std::collections::BTreeMap;
use std::sync::Arc;

use flowmax_graph::{EdgeId, EdgeSubset, ProbabilisticGraph, VertexId};
use flowmax_sampling::{ComponentEstimate, ComponentGraph, LocalIdScratch};

use crate::estimator::EstimateProvider;

/// Identifier of a component within an [`FTree`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub(crate) u32);

/// Borrowed read-only view of one component (Def. 9), as yielded by
/// [`FTree::components`].
///
/// Nothing is copied out of the tree: children are a borrowed slice and
/// members/edges are iterators over the component's own storage (the
/// historical `ComponentView` cloned all three per component per call).
#[derive(Debug, Clone, Copy)]
pub struct ComponentRef<'t> {
    /// Component id.
    pub id: ComponentId,
    /// The articulation vertex all member flow passes through.
    pub articulation: VertexId,
    /// Parent component (`None` iff the AV is `Q`).
    pub parent: Option<ComponentId>,
    /// Child components.
    pub children: &'t [ComponentId],
    kind: &'t Kind,
}

impl<'t> ComponentRef<'t> {
    /// `true` for bi-connected (sampled) components.
    pub fn is_bi(&self) -> bool {
        matches!(self.kind, Kind::Bi { .. })
    }

    /// Member vertices in ascending order (the AV is not a member).
    pub fn members(&self) -> impl Iterator<Item = VertexId> + 't {
        match self.kind {
            Kind::Mono { members } => MemberIter::Mono(members.keys()),
            Kind::Bi { local, .. } => MemberIter::Bi(local.iter()),
        }
    }

    /// Number of member vertices.
    pub fn member_count(&self) -> usize {
        match self.kind {
            Kind::Mono { members } => members.len(),
            Kind::Bi { local, .. } => local.len(),
        }
    }

    /// For bi components: the component's edges (insertion order); for
    /// mono components: each member's parent edge (member order).
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + 't {
        match self.kind {
            Kind::Mono { members } => EdgeIter::Mono(members.values()),
            Kind::Bi { edges, .. } => EdgeIter::Bi(edges.iter()),
        }
    }

    /// Number of edges held by the component.
    pub fn edge_count(&self) -> usize {
        match self.kind {
            Kind::Mono { members } => members.len(),
            Kind::Bi { edges, .. } => edges.len(),
        }
    }
}

/// Borrowing member iterator behind [`ComponentRef::members`] (the two
/// component flavours key their members in maps of different value types).
enum MemberIter<'t> {
    Mono(std::collections::btree_map::Keys<'t, VertexId, MonoMember>),
    Bi(std::slice::Iter<'t, (VertexId, u32)>),
}

impl Iterator for MemberIter<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        match self {
            MemberIter::Mono(it) => it.next().copied(),
            MemberIter::Bi(it) => it.next().map(|&(v, _)| v),
        }
    }
}

/// Borrowing edge iterator behind [`ComponentRef::edges`].
enum EdgeIter<'t> {
    Mono(std::collections::btree_map::Values<'t, VertexId, MonoMember>),
    Bi(std::slice::Iter<'t, EdgeId>),
}

impl Iterator for EdgeIter<'_> {
    type Item = EdgeId;

    fn next(&mut self) -> Option<EdgeId> {
        match self {
            EdgeIter::Mono(it) => it.next().map(|m| m.parent_edge),
            EdgeIter::Bi(it) => it.next().copied(),
        }
    }
}

impl ComponentId {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-member bookkeeping inside a mono-connected component: the member's
/// unique within-component path toward the AV, one hop at a time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct MonoMember {
    /// Next hop toward the articulation vertex (may be the AV itself).
    pub parent: VertexId,
    /// The edge connecting this member to `parent`.
    pub parent_edge: EdgeId,
    /// Probability of `parent_edge` (cached to avoid graph lookups).
    pub edge_prob: f64,
    /// Product of edge probabilities along the path to the AV (Lemma 2).
    pub reach: f64,
    /// Hop count to the AV (`1` for direct AV neighbours); used for
    /// within-component lowest-common-ancestor computations.
    pub depth: u32,
}

/// Sorted vertex → local-index map for bi components.
///
/// Rebuilt wholesale on every structural change — including every
/// structural *probe* — so construction cost is on the greedy hot path. A
/// sorted `Vec` costs one allocation per rebuild (the `BTreeMap` it
/// replaced allocated a node per member), looks up by branch-light binary
/// search, and iterates in the same ascending vertex order, keeping flow
/// accumulation — hence results — bit-identical.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct LocalMap(Vec<(VertexId, u32)>);

impl LocalMap {
    /// Builds the map from a snapshot's vertex list (index 0 is the AV,
    /// which is not a member).
    pub(crate) fn from_snapshot(vertices: &[VertexId]) -> Self {
        let mut pairs: Vec<(VertexId, u32)> = vertices
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &v)| (v, i as u32))
            .collect();
        pairs.sort_unstable_by_key(|&(v, _)| v);
        LocalMap(pairs)
    }

    #[inline]
    fn position(&self, v: VertexId) -> Option<usize> {
        self.0.binary_search_by_key(&v, |&(w, _)| w).ok()
    }

    #[inline]
    pub(crate) fn contains_key(&self, v: &VertexId) -> bool {
        self.position(*v).is_some()
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.0.len()
    }

    /// Member vertices in ascending order.
    pub(crate) fn keys(&self) -> impl Iterator<Item = &VertexId> + '_ {
        self.0.iter().map(|(v, _)| v)
    }

    /// `(vertex, local index)` pairs in ascending vertex order.
    pub(crate) fn iter(&self) -> std::slice::Iter<'_, (VertexId, u32)> {
        self.0.iter()
    }
}

impl std::ops::Index<&VertexId> for LocalMap {
    type Output = u32;

    #[inline]
    fn index(&self, v: &VertexId) -> &u32 {
        let i = self
            .position(*v)
            .expect("vertex is a member of this bi component");
        &self.0[i].1
    }
}

/// The two component flavours of Def. 9.
#[allow(clippy::large_enum_variant)] // Bi is the hot, common variant; boxing
// it would add an indirection to every flow evaluation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Kind {
    /// Tree-shaped: exact analytic flow (Theorem 2).
    Mono {
        /// Members keyed by vertex; `BTreeMap` keeps every iteration
        /// deterministic (sampling order, hence results, are seed-stable).
        members: BTreeMap<VertexId, MonoMember>,
    },
    /// Cyclic: estimated flow (Lemma 1 or exact enumeration).
    ///
    /// The heavyweight payloads are `Arc`-shared: they are replaced
    /// wholesale on every structural change (never mutated in place), so
    /// the undo journal's first-touch slot snapshots — taken on every
    /// structural probe — cost a reference-count bump instead of deep
    /// copies of the snapshot graph, estimate vectors and member map.
    Bi {
        /// The component's edge set (insertion order).
        edges: Vec<EdgeId>,
        /// Compact snapshot used for (re-)estimation.
        snapshot: Arc<ComponentGraph>,
        /// `BC.P(v)`: reachability of each snapshot vertex toward the AV.
        estimate: Arc<ComponentEstimate>,
        /// Vertex → local index into `snapshot`/`estimate`.
        local: Arc<LocalMap>,
        /// Bumped on every structural change; consumed by memoization.
        version: u64,
    },
}

/// One component of the F-tree.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Component {
    /// The articulation vertex all member flow must pass through.
    pub articulation: VertexId,
    /// Owning component of `articulation` (`None` iff `articulation == Q`).
    pub parent: Option<ComponentId>,
    /// Components whose AV is owned by this component.
    pub children: Vec<ComponentId>,
    /// Mono or bi-connected payload.
    pub kind: Kind,
}

impl Component {
    /// Number of member vertices (the AV is not a member).
    pub(crate) fn member_count(&self) -> usize {
        match &self.kind {
            Kind::Mono { members } => members.len(),
            Kind::Bi { local, .. } => local.len(),
        }
    }

    /// Whether the component is bi-connected.
    pub(crate) fn is_bi(&self) -> bool {
        matches!(self.kind, Kind::Bi { .. })
    }
}

/// The F-tree over a fixed probabilistic graph (§5.3, Def. 9).
///
/// The tree holds only vertex/edge *ids*; every operation takes the graph it
/// was created for. Structural probes (cases IIIb/IV) are evaluated without
/// lasting mutation via the undo journal ([`FTree::apply`] /
/// [`FTree::rollback`], see [`journal`](self)): the candidate is inserted in
/// place, scored, and rolled back bit-identically — no per-probe clone.
#[derive(Debug)]
pub struct FTree {
    query: VertexId,
    /// Component arena; `None` slots are free-listed.
    arena: Vec<Option<Component>>,
    free: Vec<u32>,
    /// Per-vertex owning component (`None`: not in the tree / is `Q`).
    assignment: Vec<Option<ComponentId>>,
    /// Components whose AV is `Q`.
    roots: Vec<ComponentId>,
    /// All edges inserted so far.
    selected: EdgeSubset,
    /// Monotone counter feeding `Kind::Bi::version`.
    version_counter: u64,
    /// Reusable global-vertex → local-id map for component snapshot builds
    /// (allocated once per tree, epoch-reset; replaces the per-snapshot
    /// hash map).
    local_scratch: LocalIdScratch,
    /// Active undo journal of an in-flight [`FTree::apply`] (`None` in
    /// steady state).
    recorder: Option<Box<journal::Recorder>>,
    /// Incremental per-component flow aggregation (`None` unless the
    /// incremental selection engine enabled it). Pure working memory:
    /// excluded from equality, reset on clone.
    flow_cache: Option<Box<flow::FlowCache>>,
}

#[cfg(debug_assertions)]
thread_local! {
    /// Clones performed by this thread — the probe paths are asserted
    /// clone-free against it in debug builds (thread-local so concurrent
    /// tests and worker pools never alias each other's counts).
    static FTREE_CLONES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    /// Whole-forest flow traversals performed by this thread. The
    /// incremental selection loop asserts one full greedy iteration bumps
    /// this by zero: probes and commits must aggregate `O(touched)` through
    /// the flow cache, never re-walk the whole tree.
    static FULL_FLOW_EVALS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    /// Structural (case IIIb/IV) insertion executions by this thread. A
    /// replay-based commit re-applies recorded mutations and must not show
    /// up here — the incremental loop asserts memoized structural winners
    /// leave this counter untouched across the commit.
    static STRUCTURAL_INSERTS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

impl Clone for FTree {
    /// Deep-copies the tree (used by tests, and by the pinned clone-based
    /// probe reference). Debug builds count clones per thread so the
    /// selection hot loop can assert it performs none; see
    /// [`FTree::debug_clone_count`].
    fn clone(&self) -> Self {
        #[cfg(debug_assertions)]
        FTREE_CLONES.with(|c| c.set(c.get() + 1));
        debug_assert!(self.recorder.is_none(), "cannot clone mid-apply");
        FTree {
            query: self.query,
            arena: self.arena.clone(),
            free: self.free.clone(),
            assignment: self.assignment.clone(),
            roots: self.roots.clone(),
            selected: self.selected.clone(),
            version_counter: self.version_counter,
            // The scratch is per-tree working memory, not state: the clone
            // starts with an empty one that grows on first use.
            local_scratch: LocalIdScratch::default(),
            recorder: None,
            // Cached flow aggregation is working memory too; a clone that
            // wants incremental flow re-enables the cache itself.
            flow_cache: None,
        }
    }
}

impl PartialEq for FTree {
    /// Structural equality over everything that defines the tree's
    /// behaviour: components (estimates and versions included), vertex
    /// assignments, arena layout, free-list order, roots, selected edges
    /// and the version counter. Working memory (the snapshot scratch, an
    /// in-flight journal) is excluded. Used by the apply/rollback
    /// restoration tests.
    fn eq(&self, other: &Self) -> bool {
        self.query == other.query
            && self.arena == other.arena
            && self.free == other.free
            && self.assignment == other.assignment
            && self.roots == other.roots
            && self.selected == other.selected
            && self.version_counter == other.version_counter
    }
}

impl FTree {
    /// Creates the trivial F-tree `(∅, Q)` for `graph`.
    pub fn new(graph: &ProbabilisticGraph, query: VertexId) -> Self {
        assert!(
            query.index() < graph.vertex_count(),
            "query vertex out of bounds"
        );
        FTree {
            query,
            arena: Vec::new(),
            free: Vec::new(),
            assignment: vec![None; graph.vertex_count()],
            roots: Vec::new(),
            selected: EdgeSubset::for_graph(graph),
            version_counter: 0,
            local_scratch: LocalIdScratch::new(graph.vertex_count()),
            recorder: None,
            flow_cache: None,
        }
    }

    /// Number of [`FTree`] clones this thread has performed (debug builds
    /// only). The greedy loop asserts its probe phase leaves this counter
    /// untouched — the journal made candidate probing clone-free.
    #[cfg(debug_assertions)]
    pub fn debug_clone_count() -> u64 {
        FTREE_CLONES.with(|c| c.get())
    }

    /// Number of whole-forest flow traversals this thread has performed
    /// (debug builds only). The incremental selection loop asserts a full
    /// greedy iteration leaves this untouched: all of its flow evaluations
    /// must run through the `O(touched)` cache instead.
    #[cfg(debug_assertions)]
    pub fn debug_full_flow_eval_count() -> u64 {
        FULL_FLOW_EVALS.with(|c| c.get())
    }

    #[cfg(debug_assertions)]
    pub(crate) fn note_full_flow_eval() {
        FULL_FLOW_EVALS.with(|c| c.set(c.get() + 1));
    }

    /// Number of structural (case IIIb/IV) insertion executions this
    /// thread has performed (debug builds only; probes count too). The
    /// incremental loop asserts a memoized structural commit leaves this
    /// untouched — the winner is committed by replaying its probe's
    /// recorded mutations, never by re-running `insert_edge`.
    #[cfg(debug_assertions)]
    pub fn debug_structural_insert_count() -> u64 {
        STRUCTURAL_INSERTS.with(|c| c.get())
    }

    #[cfg(debug_assertions)]
    pub(crate) fn note_structural_insert() {
        STRUCTURAL_INSERTS.with(|c| c.set(c.get() + 1));
    }

    /// The query vertex `Q`.
    pub fn query(&self) -> VertexId {
        self.query
    }

    /// Edges inserted so far.
    pub fn selected_edges(&self) -> &EdgeSubset {
        &self.selected
    }

    /// Number of selected edges.
    pub fn edge_count(&self) -> usize {
        self.selected.len()
    }

    /// Whether `v` is connected to the query through selected edges
    /// (i.e. is `Q` itself or a member of some component).
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        v == self.query || self.assignment[v.index()].is_some()
    }

    /// Number of vertices in the tree, including `Q`.
    pub fn vertex_count(&self) -> usize {
        1 + self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// Number of live components.
    pub fn component_count(&self) -> usize {
        self.arena.iter().filter(|c| c.is_some()).count()
    }

    /// Number of live bi-connected components.
    pub fn bi_component_count(&self) -> usize {
        self.arena.iter().flatten().filter(|c| c.is_bi()).count()
    }

    /// The component owning `v`, or `None` for `Q` and unconnected vertices.
    pub(crate) fn owner(&self, v: VertexId) -> Option<ComponentId> {
        self.assignment[v.index()]
    }

    pub(crate) fn comp(&self, cid: ComponentId) -> &Component {
        self.arena[cid.index()].as_ref().expect("live component")
    }

    /// Mutable access to a live component. This is the single gateway for
    /// in-place component mutation, so an active [`FTree::apply`] journal
    /// snapshots the slot here (first touch only) before handing it out.
    pub(crate) fn comp_mut(&mut self, cid: ComponentId) -> &mut Component {
        self.record_slot_touch(cid.0);
        self.arena[cid.index()].as_mut().expect("live component")
    }

    pub(crate) fn alloc(&mut self, component: Component) -> ComponentId {
        if let Some(slot) = self.free.pop() {
            self.record_alloc(slot);
            self.arena[slot as usize] = Some(component);
            ComponentId(slot)
        } else {
            let slot = self.arena.len() as u32;
            self.record_alloc(slot);
            self.arena.push(Some(component));
            ComponentId(slot)
        }
    }

    /// Frees a component slot. The caller is responsible for having detached
    /// it from parents/children/assignments.
    pub(crate) fn dealloc(&mut self, cid: ComponentId) {
        self.record_slot_touch(cid.0);
        debug_assert!(self.arena[cid.index()].is_some());
        self.arena[cid.index()] = None;
        self.free.push(cid.0);
    }

    /// Detaches `cid` from its parent's child list (or from the roots).
    pub(crate) fn detach_from_parent(&mut self, cid: ComponentId) {
        let parent = self.comp(cid).parent;
        let list = match parent {
            Some(p) => &mut self.comp_mut(p).children,
            None => &mut self.roots,
        };
        if let Some(pos) = list.iter().position(|&c| c == cid) {
            list.swap_remove(pos);
        }
    }

    /// Attaches `cid` under `parent` (`None` = root), updating both sides.
    pub(crate) fn attach_to_parent(&mut self, cid: ComponentId, parent: Option<ComponentId>) {
        self.comp_mut(cid).parent = parent;
        match parent {
            Some(p) => self.comp_mut(p).children.push(cid),
            None => self.roots.push(cid),
        }
    }

    pub(crate) fn next_version(&mut self) -> u64 {
        self.version_counter += 1;
        self.version_counter
    }

    /// Reachability of `v` toward the AV *within* component `cid`
    /// (`1` for the AV itself).
    pub(crate) fn reach_in(&self, cid: ComponentId, v: VertexId) -> f64 {
        let comp = self.comp(cid);
        if v == comp.articulation {
            return 1.0;
        }
        match &comp.kind {
            Kind::Mono { members } => members.get(&v).expect("member of mono component").reach,
            Kind::Bi {
                estimate, local, ..
            } => estimate.reach(local[&v] as usize),
        }
    }

    /// Probability that `v` reaches the query vertex through the selected
    /// subgraph, under the tree's current component estimates
    /// (`Π` of per-component reaches along the path to the root).
    pub fn reach_to_query(&self, v: VertexId) -> f64 {
        if v == self.query {
            return 1.0;
        }
        let Some(mut cid) = self.owner(v) else {
            return 0.0;
        };
        let mut vertex = v;
        let mut prob = 1.0;
        loop {
            prob *= self.reach_in(cid, vertex);
            let comp = self.comp(cid);
            vertex = comp.articulation;
            match comp.parent {
                Some(p) => cid = p,
                None => return prob,
            }
        }
    }

    /// Version of the bi-connected component owning both endpoints of a
    /// would-be Case IIIa insertion (used by memoization to detect staleness).
    pub fn bi_component_version(&self, v: VertexId) -> Option<(ComponentId, u64)> {
        let cid = self.owner(v)?;
        match &self.comp(cid).kind {
            Kind::Bi { version, .. } => Some((cid, *version)),
            Kind::Mono { .. } => None,
        }
    }

    /// Iterates live component ids (deterministic order).
    pub(crate) fn component_ids(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.arena
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(i, _)| ComponentId(i as u32))
    }

    /// Borrowed read-only views of all live components, in deterministic
    /// order (for inspection, reporting and structure tests). Nothing is
    /// cloned — members, edges and children are served straight out of the
    /// tree's own storage.
    pub fn components(&self) -> impl Iterator<Item = ComponentRef<'_>> + '_ {
        self.component_ids().map(|cid| {
            let comp = self.comp(cid);
            ComponentRef {
                id: cid,
                articulation: comp.articulation,
                parent: comp.parent,
                children: &comp.children,
                kind: &comp.kind,
            }
        })
    }

    /// The component owning `v` (`None` for `Q` and unconnected vertices).
    pub fn component_of(&self, v: VertexId) -> Option<ComponentId> {
        self.owner(v)
    }

    /// Rebuilds a bi component's snapshot/estimate after its edge set
    /// changed. `provider` supplies the new reachability function.
    pub(crate) fn refresh_bi(
        &mut self,
        graph: &ProbabilisticGraph,
        cid: ComponentId,
        provider: &mut dyn EstimateProvider,
    ) {
        let version = self.next_version();
        // Detach the snapshot scratch so the component can be borrowed
        // mutably alongside it (the scratch is pure working memory).
        let mut scratch = std::mem::take(&mut self.local_scratch);
        let comp = self.comp_mut(cid);
        let av = comp.articulation;
        let Kind::Bi {
            edges,
            snapshot,
            estimate,
            local,
            version: v,
        } = &mut comp.kind
        else {
            panic!("refresh_bi on a mono component");
        };
        let new_snapshot = ComponentGraph::build_with(graph, av, edges, &mut scratch);
        let new_estimate = provider.estimate(&new_snapshot);
        let new_local = LocalMap::from_snapshot(new_snapshot.vertices());
        *snapshot = Arc::new(new_snapshot);
        *estimate = Arc::new(new_estimate);
        *local = Arc::new(new_local);
        *v = version;
        self.local_scratch = scratch;
    }

    /// Replaces a bi component's reachability estimate in place (structure
    /// and snapshot unchanged) — used by deferred probes, whose estimates
    /// arrive after the insertion, and by racing rounds that re-score one
    /// probe at growing sample budgets.
    pub(crate) fn set_bi_estimate(&mut self, cid: ComponentId, new_estimate: ComponentEstimate) {
        let Kind::Bi { estimate, .. } = &mut self.comp_mut(cid).kind else {
            panic!("set_bi_estimate on a mono component");
        };
        *estimate = Arc::new(new_estimate);
    }
}

/// Shared golden fixture for the incremental-flow unit tests: the paper's
/// Fig. 3(a) graph plus the four Fig. 4 insertion candidates — every
/// structural insertion case (leaf-on-mono/bi, cycle-in-bi, `splitTree`,
/// cross-component cycle) occurs while inserting its first 19 edges in id
/// order and probing the rest.
#[cfg(test)]
pub(crate) mod goldens {
    use flowmax_graph::{GraphBuilder, ProbabilisticGraph, Probability, VertexId, Weight};

    /// Vertices Q=0, 1..17 with weight = id, all probabilities 0.5.
    /// Edges e0–e18 form components A–F of Example 2; e19–e22 are the
    /// Fig. 4 candidates (7-17, 6-8, 14-15, 11-15).
    pub(crate) fn figure3_graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertex(Weight::ZERO); // Q
        for w in 1..=17 {
            b.add_vertex(Weight::new(w as f64).unwrap());
        }
        let half = Probability::new(0.5).unwrap();
        let edges: [(u32, u32); 23] = [
            (0, 3),
            (0, 6),
            (3, 1),
            (6, 2),
            (3, 4),
            (4, 5),
            (5, 3),
            (6, 7),
            (7, 8),
            (8, 9),
            (9, 6),
            (9, 10),
            (10, 11),
            (11, 9),
            (9, 13),
            (13, 14),
            (13, 15),
            (15, 16),
            (11, 12),
            // Fig. 4 insertion candidates:
            (7, 17),
            (6, 8),
            (14, 15),
            (11, 15),
        ];
        for (x, y) in edges {
            b.add_edge(VertexId(x), VertexId(y), half).unwrap();
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::{GraphBuilder, Probability, Weight};

    fn tiny_graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(3, Weight::ONE);
        b.add_edge(VertexId(0), VertexId(1), Probability::new(0.5).unwrap())
            .unwrap();
        b.add_edge(VertexId(1), VertexId(2), Probability::new(0.5).unwrap())
            .unwrap();
        b.build()
    }

    #[test]
    fn trivial_tree_contains_only_query() {
        let g = tiny_graph();
        let t = FTree::new(&g, VertexId(0));
        assert_eq!(t.query(), VertexId(0));
        assert!(t.contains_vertex(VertexId(0)));
        assert!(!t.contains_vertex(VertexId(1)));
        assert_eq!(t.vertex_count(), 1);
        assert_eq!(t.component_count(), 0);
        assert_eq!(t.edge_count(), 0);
        assert_eq!(t.reach_to_query(VertexId(0)), 1.0);
        assert_eq!(t.reach_to_query(VertexId(2)), 0.0);
    }

    #[test]
    fn arena_alloc_dealloc_reuses_slots() {
        let g = tiny_graph();
        let mut t = FTree::new(&g, VertexId(0));
        let c = Component {
            articulation: VertexId(0),
            parent: None,
            children: Vec::new(),
            kind: Kind::Mono {
                members: BTreeMap::new(),
            },
        };
        let id1 = t.alloc(c.clone());
        t.dealloc(id1);
        let id2 = t.alloc(c);
        assert_eq!(id1, id2, "free list must recycle slots");
    }

    #[test]
    #[should_panic(expected = "query vertex out of bounds")]
    fn query_must_exist() {
        let g = tiny_graph();
        FTree::new(&g, VertexId(9));
    }
}
