//! The F-tree (Flow tree) of §5.3 — the paper's central data structure.
//!
//! An F-tree organizes the *selected* subgraph into components, each owning a
//! set of vertices and an **articulation vertex** (AV) that all information
//! from the component must flow through on its way to the query vertex `Q`:
//!
//! * **mono-connected components** are tree-shaped: every member has a unique
//!   path to the AV, so its reachability is an exact product of edge
//!   probabilities (Lemma 2 / Theorem 2) — no sampling;
//! * **bi-connected components** contain cycles: member reachability toward
//!   the AV is estimated (Monte-Carlo per Lemma 1, or exactly for small
//!   components via the pluggable [`EstimateProvider`]).
//!
//! Components form a forest rooted at `Q`: a component's AV is always owned
//! by its parent component (or is `Q` itself for roots), so expected flow
//! aggregates multiplicatively down the tree (independence across components
//! is guaranteed because an articulation vertex separates edge-disjoint
//! subgraphs).
//!
//! Submodules: `insert` implements the edge-insertion cases I–IV of §5.4,
//! `flow` the expected-flow computation, and `validate` an invariant
//! checker used heavily by tests.

mod flow;
mod insert;
mod validate;

pub use flow::{ProbeOutcome, ProbePlan, SampledProbe};
pub use insert::{InsertCase, InsertReport};

use std::collections::BTreeMap;

use flowmax_graph::{EdgeId, EdgeSubset, ProbabilisticGraph, VertexId};
use flowmax_sampling::{ComponentEstimate, ComponentGraph};

use crate::estimator::EstimateProvider;

/// Identifier of a component within an [`FTree`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub(crate) u32);

/// Read-only snapshot of one component (Def. 9), as returned by
/// [`FTree::components`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentView {
    /// Component id.
    pub id: ComponentId,
    /// The articulation vertex all member flow passes through.
    pub articulation: VertexId,
    /// Parent component (`None` iff the AV is `Q`).
    pub parent: Option<ComponentId>,
    /// Child components.
    pub children: Vec<ComponentId>,
    /// `true` for bi-connected (sampled) components.
    pub is_bi: bool,
    /// Member vertices, sorted (the AV is not a member).
    pub members: Vec<VertexId>,
    /// For bi components: the component's edges; for mono components: each
    /// member's parent edge.
    pub edges: Vec<EdgeId>,
}

impl ComponentId {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-member bookkeeping inside a mono-connected component: the member's
/// unique within-component path toward the AV, one hop at a time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct MonoMember {
    /// Next hop toward the articulation vertex (may be the AV itself).
    pub parent: VertexId,
    /// The edge connecting this member to `parent`.
    pub parent_edge: EdgeId,
    /// Probability of `parent_edge` (cached to avoid graph lookups).
    pub edge_prob: f64,
    /// Product of edge probabilities along the path to the AV (Lemma 2).
    pub reach: f64,
    /// Hop count to the AV (`1` for direct AV neighbours); used for
    /// within-component lowest-common-ancestor computations.
    pub depth: u32,
}

/// The two component flavours of Def. 9.
#[allow(clippy::large_enum_variant)] // Bi is the hot, common variant; boxing
// it would add an indirection to every flow evaluation.
#[derive(Debug, Clone)]
pub(crate) enum Kind {
    /// Tree-shaped: exact analytic flow (Theorem 2).
    Mono {
        /// Members keyed by vertex; `BTreeMap` keeps every iteration
        /// deterministic (sampling order, hence results, are seed-stable).
        members: BTreeMap<VertexId, MonoMember>,
    },
    /// Cyclic: estimated flow (Lemma 1 or exact enumeration).
    Bi {
        /// The component's edge set (insertion order).
        edges: Vec<EdgeId>,
        /// Compact snapshot used for (re-)estimation.
        snapshot: ComponentGraph,
        /// `BC.P(v)`: reachability of each snapshot vertex toward the AV.
        estimate: ComponentEstimate,
        /// Vertex → local index into `snapshot`/`estimate`.
        local: BTreeMap<VertexId, u32>,
        /// Bumped on every structural change; consumed by memoization.
        version: u64,
    },
}

/// One component of the F-tree.
#[derive(Debug, Clone)]
pub(crate) struct Component {
    /// The articulation vertex all member flow must pass through.
    pub articulation: VertexId,
    /// Owning component of `articulation` (`None` iff `articulation == Q`).
    pub parent: Option<ComponentId>,
    /// Components whose AV is owned by this component.
    pub children: Vec<ComponentId>,
    /// Mono or bi-connected payload.
    pub kind: Kind,
}

impl Component {
    /// Number of member vertices (the AV is not a member).
    pub(crate) fn member_count(&self) -> usize {
        match &self.kind {
            Kind::Mono { members } => members.len(),
            Kind::Bi { local, .. } => local.len(),
        }
    }

    /// Whether the component is bi-connected.
    pub(crate) fn is_bi(&self) -> bool {
        matches!(self.kind, Kind::Bi { .. })
    }
}

/// The F-tree over a fixed probabilistic graph (§5.3, Def. 9).
///
/// The tree holds only vertex/edge *ids*; every operation takes the graph it
/// was created for. Cloning an F-tree is cheap relative to re-sampling and is
/// how structural probes (cases IIIb/IV) are evaluated without mutation.
#[derive(Debug, Clone)]
pub struct FTree {
    query: VertexId,
    /// Component arena; `None` slots are free-listed.
    arena: Vec<Option<Component>>,
    free: Vec<u32>,
    /// Per-vertex owning component (`None`: not in the tree / is `Q`).
    assignment: Vec<Option<ComponentId>>,
    /// Components whose AV is `Q`.
    roots: Vec<ComponentId>,
    /// All edges inserted so far.
    selected: EdgeSubset,
    /// Monotone counter feeding `Kind::Bi::version`.
    version_counter: u64,
}

impl FTree {
    /// Creates the trivial F-tree `(∅, Q)` for `graph`.
    pub fn new(graph: &ProbabilisticGraph, query: VertexId) -> Self {
        assert!(
            query.index() < graph.vertex_count(),
            "query vertex out of bounds"
        );
        FTree {
            query,
            arena: Vec::new(),
            free: Vec::new(),
            assignment: vec![None; graph.vertex_count()],
            roots: Vec::new(),
            selected: EdgeSubset::for_graph(graph),
            version_counter: 0,
        }
    }

    /// The query vertex `Q`.
    pub fn query(&self) -> VertexId {
        self.query
    }

    /// Edges inserted so far.
    pub fn selected_edges(&self) -> &EdgeSubset {
        &self.selected
    }

    /// Number of selected edges.
    pub fn edge_count(&self) -> usize {
        self.selected.len()
    }

    /// Whether `v` is connected to the query through selected edges
    /// (i.e. is `Q` itself or a member of some component).
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        v == self.query || self.assignment[v.index()].is_some()
    }

    /// Number of vertices in the tree, including `Q`.
    pub fn vertex_count(&self) -> usize {
        1 + self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// Number of live components.
    pub fn component_count(&self) -> usize {
        self.arena.iter().filter(|c| c.is_some()).count()
    }

    /// Number of live bi-connected components.
    pub fn bi_component_count(&self) -> usize {
        self.arena.iter().flatten().filter(|c| c.is_bi()).count()
    }

    /// The component owning `v`, or `None` for `Q` and unconnected vertices.
    pub(crate) fn owner(&self, v: VertexId) -> Option<ComponentId> {
        self.assignment[v.index()]
    }

    pub(crate) fn comp(&self, cid: ComponentId) -> &Component {
        self.arena[cid.index()].as_ref().expect("live component")
    }

    pub(crate) fn comp_mut(&mut self, cid: ComponentId) -> &mut Component {
        self.arena[cid.index()].as_mut().expect("live component")
    }

    pub(crate) fn alloc(&mut self, component: Component) -> ComponentId {
        if let Some(slot) = self.free.pop() {
            self.arena[slot as usize] = Some(component);
            ComponentId(slot)
        } else {
            self.arena.push(Some(component));
            ComponentId((self.arena.len() - 1) as u32)
        }
    }

    /// Frees a component slot. The caller is responsible for having detached
    /// it from parents/children/assignments.
    pub(crate) fn dealloc(&mut self, cid: ComponentId) {
        debug_assert!(self.arena[cid.index()].is_some());
        self.arena[cid.index()] = None;
        self.free.push(cid.0);
    }

    /// Detaches `cid` from its parent's child list (or from the roots).
    pub(crate) fn detach_from_parent(&mut self, cid: ComponentId) {
        let parent = self.comp(cid).parent;
        let list = match parent {
            Some(p) => &mut self.comp_mut(p).children,
            None => &mut self.roots,
        };
        if let Some(pos) = list.iter().position(|&c| c == cid) {
            list.swap_remove(pos);
        }
    }

    /// Attaches `cid` under `parent` (`None` = root), updating both sides.
    pub(crate) fn attach_to_parent(&mut self, cid: ComponentId, parent: Option<ComponentId>) {
        self.comp_mut(cid).parent = parent;
        match parent {
            Some(p) => self.comp_mut(p).children.push(cid),
            None => self.roots.push(cid),
        }
    }

    pub(crate) fn next_version(&mut self) -> u64 {
        self.version_counter += 1;
        self.version_counter
    }

    /// Reachability of `v` toward the AV *within* component `cid`
    /// (`1` for the AV itself).
    pub(crate) fn reach_in(&self, cid: ComponentId, v: VertexId) -> f64 {
        let comp = self.comp(cid);
        if v == comp.articulation {
            return 1.0;
        }
        match &comp.kind {
            Kind::Mono { members } => members.get(&v).expect("member of mono component").reach,
            Kind::Bi {
                estimate, local, ..
            } => estimate.reach(local[&v] as usize),
        }
    }

    /// Probability that `v` reaches the query vertex through the selected
    /// subgraph, under the tree's current component estimates
    /// (`Π` of per-component reaches along the path to the root).
    pub fn reach_to_query(&self, v: VertexId) -> f64 {
        if v == self.query {
            return 1.0;
        }
        let Some(mut cid) = self.owner(v) else {
            return 0.0;
        };
        let mut vertex = v;
        let mut prob = 1.0;
        loop {
            prob *= self.reach_in(cid, vertex);
            let comp = self.comp(cid);
            vertex = comp.articulation;
            match comp.parent {
                Some(p) => cid = p,
                None => return prob,
            }
        }
    }

    /// Version of the bi-connected component owning both endpoints of a
    /// would-be Case IIIa insertion (used by memoization to detect staleness).
    pub fn bi_component_version(&self, v: VertexId) -> Option<(ComponentId, u64)> {
        let cid = self.owner(v)?;
        match &self.comp(cid).kind {
            Kind::Bi { version, .. } => Some((cid, *version)),
            Kind::Mono { .. } => None,
        }
    }

    /// Iterates live component ids (deterministic order).
    pub(crate) fn component_ids(&self) -> impl Iterator<Item = ComponentId> + '_ {
        self.arena
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(i, _)| ComponentId(i as u32))
    }

    /// Read-only snapshots of all live components, in deterministic order
    /// (for inspection, reporting and structure tests).
    pub fn components(&self) -> Vec<ComponentView> {
        self.component_ids()
            .map(|cid| {
                let comp = self.comp(cid);
                let (is_bi, mut members, edges) = match &comp.kind {
                    Kind::Mono { members } => (
                        false,
                        members.keys().copied().collect::<Vec<_>>(),
                        members.values().map(|m| m.parent_edge).collect::<Vec<_>>(),
                    ),
                    Kind::Bi { edges, local, .. } => (
                        true,
                        local.keys().copied().collect::<Vec<_>>(),
                        edges.clone(),
                    ),
                };
                members.sort();
                ComponentView {
                    id: cid,
                    articulation: comp.articulation,
                    parent: comp.parent,
                    children: comp.children.clone(),
                    is_bi,
                    members,
                    edges,
                }
            })
            .collect()
    }

    /// The component owning `v` (`None` for `Q` and unconnected vertices).
    pub fn component_of(&self, v: VertexId) -> Option<ComponentId> {
        self.owner(v)
    }

    /// Rebuilds a bi component's snapshot/estimate after its edge set
    /// changed. `provider` supplies the new reachability function.
    pub(crate) fn refresh_bi(
        &mut self,
        graph: &ProbabilisticGraph,
        cid: ComponentId,
        provider: &mut dyn EstimateProvider,
    ) {
        let version = self.next_version();
        let comp = self.comp_mut(cid);
        let av = comp.articulation;
        let Kind::Bi {
            edges,
            snapshot,
            estimate,
            local,
            version: v,
        } = &mut comp.kind
        else {
            panic!("refresh_bi on a mono component");
        };
        let new_snapshot = ComponentGraph::build(graph, av, edges);
        let new_estimate = provider.estimate(&new_snapshot);
        let mut new_local = BTreeMap::new();
        for (i, &vx) in new_snapshot.vertices().iter().enumerate().skip(1) {
            new_local.insert(vx, i as u32);
        }
        *snapshot = new_snapshot;
        *estimate = new_estimate;
        *local = new_local;
        *v = version;
    }

    /// Replaces a bi component's reachability estimate in place (structure
    /// and snapshot unchanged) — used by deferred probes, whose estimates
    /// arrive after the insertion, and by racing rounds that re-score one
    /// probe at growing sample budgets.
    pub(crate) fn set_bi_estimate(&mut self, cid: ComponentId, new_estimate: ComponentEstimate) {
        let Kind::Bi { estimate, .. } = &mut self.comp_mut(cid).kind else {
            panic!("set_bi_estimate on a mono component");
        };
        *estimate = new_estimate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmax_graph::{GraphBuilder, Probability, Weight};

    fn tiny_graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(3, Weight::ONE);
        b.add_edge(VertexId(0), VertexId(1), Probability::new(0.5).unwrap())
            .unwrap();
        b.add_edge(VertexId(1), VertexId(2), Probability::new(0.5).unwrap())
            .unwrap();
        b.build()
    }

    #[test]
    fn trivial_tree_contains_only_query() {
        let g = tiny_graph();
        let t = FTree::new(&g, VertexId(0));
        assert_eq!(t.query(), VertexId(0));
        assert!(t.contains_vertex(VertexId(0)));
        assert!(!t.contains_vertex(VertexId(1)));
        assert_eq!(t.vertex_count(), 1);
        assert_eq!(t.component_count(), 0);
        assert_eq!(t.edge_count(), 0);
        assert_eq!(t.reach_to_query(VertexId(0)), 1.0);
        assert_eq!(t.reach_to_query(VertexId(2)), 0.0);
    }

    #[test]
    fn arena_alloc_dealloc_reuses_slots() {
        let g = tiny_graph();
        let mut t = FTree::new(&g, VertexId(0));
        let c = Component {
            articulation: VertexId(0),
            parent: None,
            children: Vec::new(),
            kind: Kind::Mono {
                members: BTreeMap::new(),
            },
        };
        let id1 = t.alloc(c.clone());
        t.dealloc(id1);
        let id2 = t.alloc(c);
        assert_eq!(id1, id2, "free list must recycle slots");
    }

    #[test]
    #[should_panic(expected = "query vertex out of bounds")]
    fn query_must_exist() {
        let g = tiny_graph();
        FTree::new(&g, VertexId(9));
    }
}
