//! Edge insertion into the F-tree: cases I–IV of §5.4/§5.5.
//!
//! Case I (both endpoints new) is rejected — candidate generation keeps the
//! selection connected to `Q` (§5.4). Case II attaches a new leaf. Case III
//! closes a cycle inside one component. Case IV closes a cycle across
//! components; it subsumes Case IIIb (same mono component = a cross-case with
//! empty chains), so both share one generic cycle builder:
//!
//! 1. walk both endpoints' component chains up to the lowest common ancestor
//!    component, absorbing bi-components whole (IVb) and carving the unique
//!    AV-ward paths out of mono components (IVc, the `splitTree` operation);
//! 2. meet at the LCA (IVa): either a trivial meeting vertex, a merge with a
//!    bi-connected LCA, or a `splitTree` inside a mono LCA;
//! 3. assemble the collected vertices/edges into one new bi-connected
//!    component, re-parent the inherited children and orphan groups, and
//!    estimate its reachability function.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;

use flowmax_graph::{EdgeId, ProbabilisticGraph, VertexId};
use flowmax_sampling::ComponentGraph;

use super::{Component, ComponentId, FTree, Kind, LocalMap, MonoMember};
use crate::error::CoreError;
use crate::estimator::EstimateProvider;

/// Which structural case an insertion took (§5.4 nomenclature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertCase {
    /// Case IIa: new leaf attached to a mono-connected component (or to `Q`).
    LeafMono,
    /// Case IIb: new leaf attached to a bi-connected component.
    LeafBi,
    /// Case IIIa: new edge inside an existing bi-connected component.
    CycleInBi,
    /// Case IIIb: new cycle inside a mono-connected component (`splitTree`).
    CycleInMono,
    /// Case IV: new cycle across components.
    CycleAcross,
}

/// Outcome of an insertion, consumed by metrics and the selection heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertReport {
    /// The structural case taken.
    pub case: InsertCase,
    /// The bi-connected component that was created or re-estimated, if any.
    pub component: Option<ComponentId>,
    /// Number of edges in that component — the sampling cost `cost(e)` of
    /// the delayed-sampling heuristic (§6.4); 0 for leaf attachments.
    pub sampled_edge_count: usize,
}

impl FTree {
    /// Inserts a selected edge, updating the component structure
    /// (§5.4 cases II–IV). `provider` supplies reachability estimates for
    /// any bi-connected component that forms or changes.
    ///
    /// # Errors
    ///
    /// * [`CoreError::EdgeAlreadySelected`] on repeat insertion;
    /// * [`CoreError::DisconnectedEdge`] if neither endpoint is connected to
    ///   `Q` (the excluded Case I).
    pub fn insert_edge(
        &mut self,
        graph: &ProbabilisticGraph,
        e: EdgeId,
        provider: &mut dyn EstimateProvider,
    ) -> Result<InsertReport, CoreError> {
        // A direct insertion bypasses the journal, so an enabled flow cache
        // would silently go stale; incremental commits go through
        // `apply` + `cache_mark_dirty` instead.
        debug_assert!(
            self.recorder.is_some() || self.flow_cache.is_none(),
            "direct insert_edge would stale the enabled flow cache"
        );
        if self.selected.contains(e) {
            return Err(CoreError::EdgeAlreadySelected(e));
        }
        let (a, b) = graph.endpoints(e);
        match (self.contains_vertex(a), self.contains_vertex(b)) {
            (false, false) => Err(CoreError::DisconnectedEdge {
                edge: e,
                endpoints: (a, b),
            }),
            (true, false) => {
                self.selected.insert(e);
                Ok(self.attach_leaf(graph, a, b, e))
            }
            (false, true) => {
                self.selected.insert(e);
                Ok(self.attach_leaf(graph, b, a, e))
            }
            (true, true) => {
                self.selected.insert(e);
                Ok(self.close_cycle(graph, a, b, e, provider))
            }
        }
    }

    /// Case II: `leaf` is new, `anchor` is in the tree.
    fn attach_leaf(
        &mut self,
        graph: &ProbabilisticGraph,
        anchor: VertexId,
        leaf: VertexId,
        e: EdgeId,
    ) -> InsertReport {
        let p = graph.probability(e).value();
        match self.owner(anchor) {
            None => {
                // anchor is Q: attach to (or create) the mono root component.
                debug_assert_eq!(anchor, self.query);
                let existing = self.roots.iter().copied().find(|&c| !self.comp(c).is_bi());
                let cid = existing.unwrap_or_else(|| {
                    let c = Component {
                        articulation: anchor,
                        parent: None,
                        children: Vec::new(),
                        kind: Kind::Mono {
                            members: BTreeMap::new(),
                        },
                    };
                    let id = self.alloc(c);
                    self.roots.push(id);
                    id
                });
                self.add_mono_member(cid, leaf, anchor, e, p);
                InsertReport {
                    case: InsertCase::LeafMono,
                    component: None,
                    sampled_edge_count: 0,
                }
            }
            Some(cid) if !self.comp(cid).is_bi() => {
                // Case IIa: dead end extends the mono component.
                self.add_mono_member(cid, leaf, anchor, e, p);
                InsertReport {
                    case: InsertCase::LeafMono,
                    component: None,
                    sampled_edge_count: 0,
                }
            }
            Some(cid) => {
                // Case IIb: new mono component hanging off the bi component.
                let mut members = BTreeMap::new();
                members.insert(
                    leaf,
                    MonoMember {
                        parent: anchor,
                        parent_edge: e,
                        edge_prob: p,
                        reach: p,
                        depth: 1,
                    },
                );
                let c = Component {
                    articulation: anchor,
                    parent: Some(cid),
                    children: Vec::new(),
                    kind: Kind::Mono { members },
                };
                let id = self.alloc(c);
                self.comp_mut(cid).children.push(id);
                self.set_assignment(leaf, Some(id));
                InsertReport {
                    case: InsertCase::LeafBi,
                    component: None,
                    sampled_edge_count: 0,
                }
            }
        }
    }

    /// Adds `leaf` to mono component `cid`, hanging off member (or AV)
    /// `anchor`.
    fn add_mono_member(
        &mut self,
        cid: ComponentId,
        leaf: VertexId,
        anchor: VertexId,
        e: EdgeId,
        p: f64,
    ) {
        let comp = self.comp(cid);
        let (anchor_reach, anchor_depth) = if anchor == comp.articulation {
            (1.0, 0)
        } else {
            let Kind::Mono { members } = &comp.kind else {
                unreachable!()
            };
            let m = members
                .get(&anchor)
                .expect("anchor is a member of the mono component");
            (m.reach, m.depth)
        };
        let Kind::Mono { members } = &mut self.comp_mut(cid).kind else {
            unreachable!()
        };
        members.insert(
            leaf,
            MonoMember {
                parent: anchor,
                parent_edge: e,
                edge_prob: p,
                reach: anchor_reach * p,
                depth: anchor_depth + 1,
            },
        );
        self.set_assignment(leaf, Some(cid));
    }

    /// Case III/IV dispatch: both endpoints are already in the tree.
    fn close_cycle(
        &mut self,
        graph: &ProbabilisticGraph,
        a: VertexId,
        b: VertexId,
        e: EdgeId,
        provider: &mut dyn EstimateProvider,
    ) -> InsertReport {
        let ca = self.owner(a);
        let cb = self.owner(b);
        // Case IIIa: the cycle stays inside one bi component. This covers
        // both endpoints being members, and one endpoint being the
        // component's articulation vertex (which the parent owns).
        if let Some(cid) = self.same_bi_component(a, b, ca, cb) {
            let Kind::Bi { edges, .. } = &mut self.comp_mut(cid).kind else {
                unreachable!()
            };
            edges.push(e);
            let n = edges.len();
            self.refresh_bi(graph, cid, provider);
            return InsertReport {
                case: InsertCase::CycleInBi,
                component: Some(cid),
                sampled_edge_count: n,
            };
        }
        if ca.is_some() && ca == cb {
            // Case IIIb: splitTree inside one mono component — handled by
            // the generic builder below (empty chains, mono LCA).
            return self.build_cycle(graph, a, b, e, provider, InsertCase::CycleInMono);
        }
        self.build_cycle(graph, a, b, e, provider, InsertCase::CycleAcross)
    }

    /// Detects Case IIIa: both endpoints lie within one bi component's
    /// vertex set (members ∪ articulation vertex).
    fn same_bi_component(
        &self,
        a: VertexId,
        b: VertexId,
        ca: Option<ComponentId>,
        cb: Option<ComponentId>,
    ) -> Option<ComponentId> {
        if let (Some(x), Some(y)) = (ca, cb) {
            if x == y {
                return self.comp(x).is_bi().then_some(x);
            }
        }
        // One endpoint may be the AV of the other's bi component.
        for (owner, other_vertex) in [(ca, b), (cb, a)] {
            if let Some(cid) = owner {
                if self.comp(cid).is_bi() && self.comp(cid).articulation == other_vertex {
                    return Some(cid);
                }
            }
        }
        None
    }

    /// The generic cycle builder shared by cases IIIb and IV.
    fn build_cycle(
        &mut self,
        graph: &ProbabilisticGraph,
        a: VertexId,
        b: VertexId,
        e: EdgeId,
        provider: &mut dyn EstimateProvider,
        case: InsertCase,
    ) -> InsertReport {
        #[cfg(debug_assertions)]
        FTree::note_structural_insert();
        let ca = self.owner(a);
        let cb = self.owner(b);
        let lca = self.lca_component(ca, cb);

        let mut members: Vec<VertexId> = Vec::new();
        let mut edges: Vec<EdgeId> = vec![e];
        let mut inherited: Vec<ComponentId> = Vec::new();

        let x = self.absorb_chain(a, ca, lca, &mut members, &mut edges, &mut inherited);
        let y = self.absorb_chain(b, cb, lca, &mut members, &mut edges, &mut inherited);

        // Case IVa: meet at the lowest common ancestor component.
        let (av, parent) = match lca {
            None => {
                // Virtual root: both chains terminate at Q.
                debug_assert!(x == self.query && y == self.query);
                (self.query, None)
            }
            Some(cid) => {
                if x == y {
                    // Trivial meeting cycle (the paper's "(9)" example).
                    (x, Some(cid))
                } else if self.comp(cid).is_bi() {
                    // The big cycle connects two vertices of a bi LCA
                    // transitively: the LCA merges into the new component.
                    let av = self.comp(cid).articulation;
                    let parent = self.comp(cid).parent;
                    self.detach_from_parent(cid);
                    self.absorb_bi(cid, &mut members, &mut edges, &mut inherited);
                    (av, parent)
                } else {
                    // splitTree between the two entry vertices of a mono LCA.
                    let v_lca = self.mono_lca(cid, x, y);
                    let mut removed = Vec::new();
                    self.move_mono_path(cid, x, v_lca, &mut members, &mut edges, &mut removed);
                    self.move_mono_path(cid, y, v_lca, &mut members, &mut edges, &mut removed);
                    self.regroup_after_removal(cid, &removed, &mut inherited);
                    let comp = self.comp(cid);
                    if v_lca == comp.articulation {
                        let parent = comp.parent;
                        if comp.member_count() == 0 {
                            debug_assert!(comp.children.is_empty());
                            self.detach_from_parent(cid);
                            self.dealloc(cid);
                        }
                        (v_lca, parent)
                    } else {
                        (v_lca, Some(cid))
                    }
                }
            }
        };

        let n_edges = edges.len();
        let bc =
            self.finish_cycle_component(graph, av, parent, members, edges, inherited, provider);
        InsertReport {
            case,
            component: Some(bc),
            sampled_edge_count: n_edges,
        }
    }

    /// Lowest common ancestor of two components in the F-tree
    /// (`None` = the virtual root at `Q`).
    fn lca_component(&self, a: Option<ComponentId>, b: Option<ComponentId>) -> Option<ComponentId> {
        let mut ancestors = HashSet::new();
        let mut cur = a;
        while let Some(c) = cur {
            ancestors.insert(c);
            cur = self.comp(c).parent;
        }
        let mut cur = b;
        while let Some(c) = cur {
            if ancestors.contains(&c) {
                return Some(c);
            }
            cur = self.comp(c).parent;
        }
        None
    }

    /// Walks a chain of components from `start`'s component up to (exclusive)
    /// `stop`, absorbing everything on the cycle's path into the new
    /// component being built. Returns the vertex at which the chain enters
    /// `stop` (or `Q` if `stop` is the virtual root).
    fn absorb_chain(
        &mut self,
        start: VertexId,
        start_comp: Option<ComponentId>,
        stop: Option<ComponentId>,
        members: &mut Vec<VertexId>,
        edges: &mut Vec<EdgeId>,
        inherited: &mut Vec<ComponentId>,
    ) -> VertexId {
        let mut entry = start;
        let mut cur = start_comp;
        while cur != stop {
            let cid = cur.expect("a chain can only end at the virtual root when stop is None");
            let av = self.comp(cid).articulation;
            let next = self.comp(cid).parent;
            if self.comp(cid).is_bi() {
                // Case IVb: the bi component is absorbed whole.
                self.detach_from_parent(cid);
                self.absorb_bi(cid, members, edges, inherited);
            } else {
                // Case IVc: only the entry→AV path joins the cycle.
                let mut removed = Vec::new();
                self.move_mono_path(cid, entry, av, members, edges, &mut removed);
                self.regroup_after_removal(cid, &removed, inherited);
                if self.comp(cid).member_count() == 0 {
                    debug_assert!(self.comp(cid).children.is_empty());
                    self.detach_from_parent(cid);
                    self.dealloc(cid);
                }
            }
            entry = av;
            cur = next;
        }
        entry
    }

    /// Dissolves bi component `cid` into the cycle being built. The caller
    /// must already have detached it from its parent.
    fn absorb_bi(
        &mut self,
        cid: ComponentId,
        members: &mut Vec<VertexId>,
        edges: &mut Vec<EdgeId>,
        inherited: &mut Vec<ComponentId>,
    ) {
        let comp = self.take_component(cid);
        let Kind::Bi {
            edges: bi_edges,
            local,
            ..
        } = comp.kind
        else {
            panic!("absorb_bi on a mono component");
        };
        for &(v, _) in local.iter() {
            self.set_assignment(v, None); // reassigned to the new BC later
            members.push(v);
        }
        edges.extend(bi_edges);
        inherited.extend(comp.children);
    }

    /// Lowest common ancestor of two members within a mono component's
    /// internal tree (the AV acts as root with depth 0).
    fn mono_lca(&self, cid: ComponentId, x: VertexId, y: VertexId) -> VertexId {
        let comp = self.comp(cid);
        let av = comp.articulation;
        let Kind::Mono { members } = &comp.kind else {
            panic!("mono_lca on bi component")
        };
        let depth = |v: VertexId| if v == av { 0 } else { members[&v].depth };
        let up = |v: VertexId| members[&v].parent;
        let (mut px, mut py) = (x, y);
        while depth(px) > depth(py) {
            px = up(px);
        }
        while depth(py) > depth(px) {
            py = up(py);
        }
        while px != py {
            px = up(px);
            py = up(py);
        }
        px
    }

    /// Moves the path `from → stop_vertex` (excluding `stop_vertex`) out of
    /// mono component `cid` into the cycle being built: the vertices join
    /// `members`, their parent edges join `edges`.
    fn move_mono_path(
        &mut self,
        cid: ComponentId,
        from: VertexId,
        stop_vertex: VertexId,
        members: &mut Vec<VertexId>,
        edges: &mut Vec<EdgeId>,
        removed: &mut Vec<VertexId>,
    ) {
        let Kind::Mono { members: mm } = &mut self.comp_mut(cid).kind else {
            panic!("move_mono_path on bi component")
        };
        let mut v = from;
        while v != stop_vertex {
            let m = mm
                .remove(&v)
                .expect("path vertex is a member of the mono component");
            members.push(v);
            edges.push(m.parent_edge);
            removed.push(v);
            v = m.parent;
        }
        for &v in removed.iter() {
            self.set_assignment(v, None); // reassigned to the new BC later
        }
    }

    /// After removing `removed` vertices from mono component `cid`: collects
    /// orphans (remaining members whose AV-ward path crossed a removed
    /// vertex) into new mono components anchored at the first removed vertex
    /// on their path (§5.4 case IIIb step iii), and re-parents the children
    /// of `cid` whose AV moved.
    ///
    /// Newly created orphan components and children that must hang off the
    /// new bi component are appended to `inherited`.
    fn regroup_after_removal(
        &mut self,
        cid: ComponentId,
        removed: &[VertexId],
        inherited: &mut Vec<ComponentId>,
    ) {
        if removed.is_empty() {
            return;
        }
        let removed_set: BTreeSet<VertexId> = removed.iter().copied().collect();
        let av = self.comp(cid).articulation;

        // Classify every remaining member: Stay, or orphan of the first
        // removed vertex on its path to the AV. Memoized chain walk keeps
        // this linear overall.
        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        enum Class {
            Stay,
            OrphanOf(VertexId),
        }
        let mut classes: BTreeMap<VertexId, Class> = BTreeMap::new();
        {
            let Kind::Mono { members } = &self.comp(cid).kind else {
                unreachable!()
            };
            let keys: Vec<VertexId> = members.keys().copied().collect();
            let mut chain: Vec<VertexId> = Vec::new();
            for v in keys {
                chain.clear();
                let mut cur = v;
                let class = loop {
                    if cur == av {
                        break Class::Stay;
                    }
                    if removed_set.contains(&cur) {
                        break Class::OrphanOf(cur);
                    }
                    if let Some(&c) = classes.get(&cur) {
                        break c;
                    }
                    chain.push(cur);
                    cur = members[&cur].parent;
                };
                for &c in &chain {
                    classes.insert(c, class);
                }
            }
        }

        // Group orphans by anchor and split them off into new mono
        // components, recomputing reach/depth relative to the new AV.
        let mut groups: BTreeMap<VertexId, Vec<VertexId>> = BTreeMap::new();
        for (&v, &class) in &classes {
            if let Class::OrphanOf(r) = class {
                groups.entry(r).or_default().push(v);
            }
        }
        for (&anchor, group) in &groups {
            let mut taken: BTreeMap<VertexId, MonoMember> = BTreeMap::new();
            {
                let Kind::Mono { members } = &mut self.comp_mut(cid).kind else {
                    unreachable!()
                };
                for &v in group {
                    let m = members.remove(&v).expect("orphan is a member");
                    taken.insert(v, m);
                }
            }
            recompute_mono_tree(&mut taken, anchor);
            let oc = Component {
                articulation: anchor,
                parent: None, // fixed up when attached to the new BC
                children: Vec::new(),
                kind: Kind::Mono { members: taken },
            };
            let oid = self.alloc(oc);
            for &v in group {
                self.set_assignment(v, Some(oid));
            }
            inherited.push(oid);
        }

        // Re-parent children of `cid` whose AV left the component.
        let children: Vec<ComponentId> = self.comp(cid).children.clone();
        for child in children {
            let cav = self.comp(child).articulation;
            if removed_set.contains(&cav) {
                // AV joins the new BC: the child hangs off it.
                self.detach_from_parent(child);
                inherited.push(child);
            } else if let Some(owner) = self.owner(cav) {
                if owner != cid {
                    // AV moved into an orphan group: reattach there.
                    self.detach_from_parent(child);
                    self.comp_mut(child).parent = Some(owner);
                    self.comp_mut(owner).children.push(child);
                }
            }
        }
    }

    /// Assembles the collected cycle into a new bi-connected component,
    /// estimates its reachability function, and wires up assignments,
    /// parent and inherited children.
    #[allow(clippy::too_many_arguments)]
    fn finish_cycle_component(
        &mut self,
        graph: &ProbabilisticGraph,
        av: VertexId,
        parent: Option<ComponentId>,
        members: Vec<VertexId>,
        edges: Vec<EdgeId>,
        inherited: Vec<ComponentId>,
        provider: &mut dyn EstimateProvider,
    ) -> ComponentId {
        debug_assert!(
            !members.contains(&av),
            "AV is never a member of its component"
        );
        debug_assert_eq!(
            members.iter().collect::<BTreeSet<_>>().len(),
            members.len(),
            "cycle members must be unique"
        );
        let mut scratch = std::mem::take(&mut self.local_scratch);
        let snapshot = ComponentGraph::build_with(graph, av, &edges, &mut scratch);
        self.local_scratch = scratch;
        let estimate = provider.estimate(&snapshot);
        let local = LocalMap::from_snapshot(snapshot.vertices());
        debug_assert_eq!(
            local.len(),
            members.len(),
            "snapshot vertices must equal members"
        );
        let version = self.next_version();
        let bc = self.alloc(Component {
            articulation: av,
            parent: None,
            children: Vec::new(),
            kind: Kind::Bi {
                edges,
                snapshot: Arc::new(snapshot),
                estimate: Arc::new(estimate),
                local: Arc::new(local),
                version,
            },
        });
        for &v in &members {
            self.set_assignment(v, Some(bc));
        }
        for child in inherited {
            self.comp_mut(child).parent = Some(bc);
            self.comp_mut(bc).children.push(child);
        }
        self.attach_to_parent(bc, parent);
        bc
    }
}

/// Recomputes `reach` and `depth` for a detached mono-member group whose new
/// AV is `anchor`. Parent pointers within the group are unchanged; members
/// adjacent to `anchor` reset to depth 1.
fn recompute_mono_tree(members: &mut BTreeMap<VertexId, MonoMember>, anchor: VertexId) {
    let keys: Vec<VertexId> = members.keys().copied().collect();
    let mut fixed: BTreeSet<VertexId> = BTreeSet::new();
    let mut stack: Vec<VertexId> = Vec::new();
    for v in keys {
        if fixed.contains(&v) {
            continue;
        }
        stack.push(v);
        while let Some(&top) = stack.last() {
            let parent = members[&top].parent;
            if parent == anchor {
                let m = members.get_mut(&top).expect("member");
                m.reach = m.edge_prob;
                m.depth = 1;
                fixed.insert(top);
                stack.pop();
            } else if fixed.contains(&parent) {
                let (p_reach, p_depth) = {
                    let pm = &members[&parent];
                    (pm.reach, pm.depth)
                };
                let m = members.get_mut(&top).expect("member");
                m.reach = p_reach * m.edge_prob;
                m.depth = p_depth + 1;
                fixed.insert(top);
                stack.pop();
            } else {
                stack.push(parent);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{EstimatorConfig, SamplingProvider};
    use flowmax_graph::{GraphBuilder, Probability, Weight};

    fn exact_provider() -> SamplingProvider {
        SamplingProvider::new(EstimatorConfig::exact(), 42)
    }

    /// Path Q(0)-1-2 plus chord 0-2 and tail 2-3.
    fn diamond_graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::ONE);
        let p = Probability::new(0.5).unwrap();
        b.add_edge(VertexId(0), VertexId(1), p).unwrap(); // e0
        b.add_edge(VertexId(1), VertexId(2), p).unwrap(); // e1
        b.add_edge(VertexId(0), VertexId(2), p).unwrap(); // e2
        b.add_edge(VertexId(2), VertexId(3), p).unwrap(); // e3
        b.build()
    }

    #[test]
    fn case_i_rejected() {
        let g = diamond_graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        // Edge 2-3 touches neither Q nor any inserted vertex.
        let err = t.insert_edge(&g, EdgeId(3), &mut pr).unwrap_err();
        assert!(matches!(err, CoreError::DisconnectedEdge { .. }));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let g = diamond_graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        t.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        let err = t.insert_edge(&g, EdgeId(0), &mut pr).unwrap_err();
        assert_eq!(err, CoreError::EdgeAlreadySelected(EdgeId(0)));
    }

    #[test]
    fn leaf_attachments_build_mono_root() {
        let g = diamond_graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        let r = t.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        assert_eq!(r.case, InsertCase::LeafMono);
        let r = t.insert_edge(&g, EdgeId(1), &mut pr).unwrap();
        assert_eq!(r.case, InsertCase::LeafMono);
        assert_eq!(t.component_count(), 1);
        assert_eq!(t.bi_component_count(), 0);
        assert!((t.reach_to_query(VertexId(2)) - 0.25).abs() < 1e-12);
        t.validate(&g).unwrap();
    }

    #[test]
    fn chord_triggers_split_tree() {
        let g = diamond_graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        t.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        t.insert_edge(&g, EdgeId(1), &mut pr).unwrap();
        // Chord 0-2: cycle Q-1-2-Q. Endpoint 0 is Q (virtual root), so this
        // runs the cross-component path meeting at the virtual root.
        let r = t.insert_edge(&g, EdgeId(2), &mut pr).unwrap();
        assert_eq!(r.case, InsertCase::CycleAcross);
        assert_eq!(r.sampled_edge_count, 3);
        assert_eq!(t.bi_component_count(), 1);
        // Exact triangle probability: 0.5 + 0.5·0.25 = 0.625.
        assert!((t.reach_to_query(VertexId(1)) - 0.625).abs() < 1e-12);
        assert!((t.reach_to_query(VertexId(2)) - 0.625).abs() < 1e-12);
        t.validate(&g).unwrap();
    }

    #[test]
    fn leaf_on_bi_component_becomes_child_mono() {
        let g = diamond_graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        for e in [0, 1, 2] {
            t.insert_edge(&g, EdgeId(e), &mut pr).unwrap();
        }
        let r = t.insert_edge(&g, EdgeId(3), &mut pr).unwrap();
        assert_eq!(r.case, InsertCase::LeafBi);
        assert_eq!(t.component_count(), 2);
        // v3 reach = reach(2) · 0.5 = 0.3125.
        assert!((t.reach_to_query(VertexId(3)) - 0.3125).abs() < 1e-12);
        t.validate(&g).unwrap();
    }

    #[test]
    fn cycle_in_mono_splits_and_orphans() {
        // Q(0)-1, 1-2, 2-3, 1-4 (orphan side), then chord 2-... build:
        // tree: Q-1-2-3 and 1-4; cycle edge 3-1 creates BC {2,3} AV=1;
        // vertex 4 stays mono under 1.
        let mut b = GraphBuilder::new();
        b.add_vertices(5, Weight::ONE);
        let p = Probability::new(0.5).unwrap();
        b.add_edge(VertexId(0), VertexId(1), p).unwrap(); // e0
        b.add_edge(VertexId(1), VertexId(2), p).unwrap(); // e1
        b.add_edge(VertexId(2), VertexId(3), p).unwrap(); // e2
        b.add_edge(VertexId(1), VertexId(4), p).unwrap(); // e3
        b.add_edge(VertexId(3), VertexId(1), p).unwrap(); // e4 (chord)
        let g = b.build();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        for e in [0, 1, 2, 3] {
            t.insert_edge(&g, EdgeId(e), &mut pr).unwrap();
        }
        let r = t.insert_edge(&g, EdgeId(4), &mut pr).unwrap();
        assert_eq!(r.case, InsertCase::CycleInMono);
        assert_eq!(t.bi_component_count(), 1);
        // Mono root {1, 4}, BC {2, 3} with AV 1.
        assert!((t.reach_to_query(VertexId(4)) - 0.25).abs() < 1e-12);
        // Triangle-as-cycle 1-2-3-1: reach(2 ↔ 1) = 0.625; times reach(1) 0.5.
        assert!((t.reach_to_query(VertexId(2)) - 0.3125).abs() < 1e-12);
        t.validate(&g).unwrap();
    }

    #[test]
    fn cycle_in_bi_reestimates_in_place() {
        // Square Q-1-2-3-Q, then diagonal 1-3 inside the bi component.
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::ONE);
        let p = Probability::new(0.5).unwrap();
        b.add_edge(VertexId(0), VertexId(1), p).unwrap();
        b.add_edge(VertexId(1), VertexId(2), p).unwrap();
        b.add_edge(VertexId(2), VertexId(3), p).unwrap();
        b.add_edge(VertexId(3), VertexId(0), p).unwrap();
        b.add_edge(VertexId(1), VertexId(3), p).unwrap();
        let g = b.build();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        for e in [0, 1, 2, 3] {
            t.insert_edge(&g, EdgeId(e), &mut pr).unwrap();
        }
        assert_eq!(t.bi_component_count(), 1);
        let before = t.reach_to_query(VertexId(2));
        let r = t.insert_edge(&g, EdgeId(4), &mut pr).unwrap();
        assert_eq!(r.case, InsertCase::CycleInBi);
        assert_eq!(t.bi_component_count(), 1);
        assert_eq!(t.component_count(), 1);
        let after = t.reach_to_query(VertexId(2));
        assert!(after > before, "extra path must increase reachability");
        t.validate(&g).unwrap();
    }

    #[test]
    fn cross_component_cycle_absorbs_bi_chain() {
        // Build: triangle Q-1-2 (BC1), tail 2-3 (mono), triangle 3-4-5 via
        // edges (3-4),(4-5),(5-3) => BC2 under mono; then edge 5-Q closes a
        // giant cycle absorbing everything.
        let mut b = GraphBuilder::new();
        b.add_vertices(6, Weight::ONE);
        let p = Probability::new(0.5).unwrap();
        b.add_edge(VertexId(0), VertexId(1), p).unwrap(); // e0
        b.add_edge(VertexId(1), VertexId(2), p).unwrap(); // e1
        b.add_edge(VertexId(0), VertexId(2), p).unwrap(); // e2 → BC1
        b.add_edge(VertexId(2), VertexId(3), p).unwrap(); // e3 tail
        b.add_edge(VertexId(3), VertexId(4), p).unwrap(); // e4
        b.add_edge(VertexId(4), VertexId(5), p).unwrap(); // e5
        b.add_edge(VertexId(5), VertexId(3), p).unwrap(); // e6 → BC2
        b.add_edge(VertexId(5), VertexId(0), p).unwrap(); // e7 giant cycle
        let g = b.build();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        for e in 0..7 {
            t.insert_edge(&g, EdgeId(e), &mut pr).unwrap();
        }
        assert_eq!(t.bi_component_count(), 2);
        let r = t.insert_edge(&g, EdgeId(7), &mut pr).unwrap();
        assert_eq!(r.case, InsertCase::CycleAcross);
        // Everything collapses into one bi component rooted at Q.
        assert_eq!(t.component_count(), 1);
        assert_eq!(t.bi_component_count(), 1);
        assert_eq!(r.sampled_edge_count, 8);
        t.validate(&g).unwrap();
    }

    #[test]
    fn recompute_mono_tree_fixes_reach_and_depth() {
        // Chain anchor <- a <- b with probs 0.5, 0.25.
        let anchor = VertexId(7);
        let a = VertexId(8);
        let b = VertexId(9);
        let mut members = BTreeMap::new();
        members.insert(
            a,
            MonoMember {
                parent: anchor,
                parent_edge: EdgeId(0),
                edge_prob: 0.5,
                reach: 0.1,
                depth: 9,
            },
        );
        members.insert(
            b,
            MonoMember {
                parent: a,
                parent_edge: EdgeId(1),
                edge_prob: 0.25,
                reach: 0.2,
                depth: 9,
            },
        );
        recompute_mono_tree(&mut members, anchor);
        assert_eq!(members[&a].reach, 0.5);
        assert_eq!(members[&a].depth, 1);
        assert_eq!(members[&b].reach, 0.125);
        assert_eq!(members[&b].depth, 2);
    }
}
