//! Expected-flow evaluation over the F-tree, and non-mutating edge probes.
//!
//! Because an articulation vertex separates its component from the rest of
//! the selected subgraph, `Pr[v ↔ Q] = Pr[v ↔ AV | component] · Pr[AV ↔ Q]`
//! with independent factors; flow therefore aggregates bottom-up per
//! component (Theorem 2 + Lemma 1): a component's **subtree flow** is its
//! members' `reach · weight` sum plus each child subtree's flow scaled by
//! the child AV's within-component reach, and the total is the sum over the
//! root components. The per-component form is what makes flow *incremental*:
//! [`FlowCache`] keeps every component's member sum and subtree flow, so a
//! probe or commit that touches `k` components re-aggregates only those `k`
//! and their ancestors — bit-identical to a fresh whole-forest traversal,
//! which survives as the pinned reference (and is debug-counted, so the
//! selection loop can assert it never runs one mid-iteration).
//!
//! Probing (`probe_edge`) evaluates the flow a candidate insertion *would*
//! yield, at minimal cost per structural case:
//!
//! * **Case II** (leaf): an `O(depth)` analytic delta — no sampling, no copy;
//! * **Case IIIa** (cycle in a bi component): only that component is
//!   re-estimated; flow is evaluated with the fresh estimate *overriding* the
//!   stored one — no tree mutation;
//! * **Cases IIIb/IV** (structural): the probe applies the insertion to the
//!   *shared* tree through the undo journal ([`FTree::apply`]), evaluates,
//!   and rolls back bit-identically ([`FTree::rollback`]) — `O(touched
//!   components)` per probe instead of the historical whole-tree clone.
//!   The clone-based path survives only as the pinned reference
//!   ([`FTree::probe_plan_cloning`]) that benchmarks and equivalence tests
//!   compare against.

use flowmax_graph::{EdgeId, ProbabilisticGraph, VertexId};
use flowmax_sampling::{ComponentEstimate, ComponentGraph};

use super::{CommitReplay, ComponentId, FTree, InsertCase, Journal, Kind};
use crate::error::CoreError;
use crate::estimator::EstimateProvider;

/// Per-component flow memo backing the incremental selection engine.
///
/// `entries[slot]` caches two accumulator values for the component living
/// in arena `slot`: `member_sum` (the flow accumulator right after the
/// member loop) and `sub` (after also adding child subtrees — the
/// component's full subtree flow). Caching the *intermediate* member sum is
/// what keeps incremental evaluation bit-identical to a fresh traversal: an
/// ancestor of a touched component resumes accumulation from `member_sum`
/// and replays only the child additions, reproducing the exact operation
/// sequence [`FTree::expected_flow`] would perform.
///
/// The cache is pure working memory: excluded from tree equality, dropped
/// on clone, and consulted only by the `*_cached` evaluators below.
#[derive(Debug, Default)]
pub(crate) struct FlowCache {
    /// Cached accumulators per arena slot (`None`: free or never drained).
    entries: Vec<Option<CacheEntry>>,
    /// Slots whose members or estimates changed since the last drain
    /// ([`FTree::flow_cached_total`]); ancestors are implied.
    dirty: Vec<u32>,
    /// Epoch marks: a slot takes part in the current evaluation iff
    /// `mark[slot] >> 1 == epoch`. The low bit distinguishes member-dirty
    /// (re-sum members) from ancestor-dirty (members intact, only child
    /// contributions must be replayed).
    mark: Vec<u64>,
    epoch: u64,
    /// Traversal scratch reused across evaluations.
    stack: Vec<(u32, bool)>,
    /// Per-slot triple-lane scratch for probe overlays (never the
    /// committed state — probes must not pollute `entries`).
    overlay: Vec<(f64, f64, f64)>,
    /// Seed-slot scratch reused across evaluations.
    seeds: Vec<u32>,
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    /// Flow accumulator after summing `reach · weight` over members.
    member_sum: f64,
    /// Accumulator after also adding each child's subtree flow scaled by
    /// its AV reach: the component's subtree flow.
    sub: f64,
}

impl FlowCache {
    #[inline]
    fn marked(&self, slot: usize) -> bool {
        self.mark[slot] >> 1 == self.epoch
    }

    #[inline]
    fn member_dirty(&self, slot: usize) -> bool {
        self.mark[slot] & 1 == 1
    }
}

/// Sorted `(vertex, snapshot index)` lookup for an IIIa override snapshot,
/// built once per evaluation so member lookups cost `O(log m)` instead of
/// a linear scan of the snapshot's vertex list per member.
fn override_order(snapshot: &ComponentGraph) -> Vec<(VertexId, u32)> {
    let mut order: Vec<(VertexId, u32)> = snapshot
        .vertices()
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    order.sort_unstable_by_key(|&(v, _)| v);
    order
}

#[inline]
fn override_position(order: &[(VertexId, u32)], v: VertexId) -> usize {
    let at = order
        .binary_search_by_key(&v, |&(w, _)| w)
        .expect("override snapshot covers the component's vertices");
    order[at].1 as usize
}

/// Opens a new evaluation epoch: every live seed slot is marked
/// member-dirty, then each seed's parent chain is marked ancestor-dirty,
/// stopping at the first already-marked ancestor (its chain is complete).
/// Because all seeds are member-marked before any chain walk starts, the
/// marked set is closed under parents when this returns. Dead or
/// out-of-range seeds are skipped.
fn mark_touched(tree: &FTree, cache: &mut FlowCache, seeds: &[u32]) {
    cache.epoch += 1;
    let epoch = cache.epoch;
    if cache.mark.len() < tree.arena.len() {
        cache.mark.resize(tree.arena.len(), 0);
    }
    for &slot in seeds {
        let idx = slot as usize;
        if idx < tree.arena.len() && tree.arena[idx].is_some() {
            cache.mark[idx] = (epoch << 1) | 1;
        }
    }
    for &slot in seeds {
        let idx = slot as usize;
        if idx >= tree.arena.len() || tree.arena[idx].is_none() {
            continue;
        }
        let mut up = tree.comp(ComponentId(slot)).parent;
        while let Some(p) = up {
            if cache.mark[p.index()] >> 1 == epoch {
                break;
            }
            cache.mark[p.index()] = epoch << 1;
            up = tree.comp(p).parent;
        }
    }
}

/// Recomputes the cached accumulators of every marked component, children
/// before parents — the committed-state drain behind
/// [`FTree::flow_cached_total`]. Member-dirty (or never-cached) slots
/// re-sum their members; ancestor-dirty slots resume from their cached
/// member sum and replay only the child additions.
fn drain_marked(tree: &FTree, cache: &mut FlowCache, graph: &ProbabilisticGraph) {
    let mut stack = std::mem::take(&mut cache.stack);
    stack.clear();
    for &r in &tree.roots {
        if cache.marked(r.index()) {
            stack.push((r.0, false));
        }
    }
    while let Some((slot, exit)) = stack.pop() {
        let cid = ComponentId(slot);
        let comp = tree.comp(cid);
        if !exit {
            stack.push((slot, true));
            for &ch in &comp.children {
                if cache.marked(ch.index()) {
                    stack.push((ch.0, false));
                }
            }
            continue;
        }
        let idx = slot as usize;
        let member_sum = if cache.member_dirty(idx) || cache.entries[idx].is_none() {
            let mut acc = 0.0;
            match &comp.kind {
                Kind::Mono { members } => {
                    for &v in members.keys() {
                        acc += tree.reach_in(cid, v) * graph.weight(v).value();
                    }
                }
                Kind::Bi { local, .. } => {
                    for &v in local.keys() {
                        acc += tree.reach_in(cid, v) * graph.weight(v).value();
                    }
                }
            }
            acc
        } else {
            cache.entries[idx]
                .expect("entry presence just checked")
                .member_sum
        };
        let mut sub = member_sum;
        for &ch in &comp.children {
            let child_sub = cache.entries[ch.index()]
                .expect("children drain before their parent; clean children are cached")
                .sub;
            sub += tree.reach_in(cid, tree.comp(ch).articulation) * child_sub;
        }
        cache.entries[idx] = Some(CacheEntry { member_sum, sub });
    }
    cache.stack = stack;
}

/// Triple-lane `O(touched)` evaluation for probes: marked subtrees are
/// re-aggregated bottom-up into the overlay scratch (the committed
/// `entries` are never written), unmarked subtrees contribute their cached
/// subtree flow to all three lanes — valid because an unmarked component's
/// three lanes are identical (the bounded component and every journal
/// touch are marked). Returns `(point, lower, upper)` totals.
fn overlay_flow_triple(
    tree: &FTree,
    cache: &mut FlowCache,
    graph: &ProbabilisticGraph,
    include_query: bool,
    reach3: &dyn Fn(ComponentId, VertexId) -> (f64, f64, f64),
) -> (f64, f64, f64) {
    if cache.overlay.len() < tree.arena.len() {
        cache.overlay.resize(tree.arena.len(), (0.0, 0.0, 0.0));
    }
    let mut stack = std::mem::take(&mut cache.stack);
    stack.clear();
    for &r in &tree.roots {
        if cache.marked(r.index()) {
            stack.push((r.0, false));
        }
    }
    while let Some((slot, exit)) = stack.pop() {
        let cid = ComponentId(slot);
        let comp = tree.comp(cid);
        if !exit {
            stack.push((slot, true));
            for &ch in &comp.children {
                if cache.marked(ch.index()) {
                    stack.push((ch.0, false));
                }
            }
            continue;
        }
        let idx = slot as usize;
        let (mut a0, mut a1, mut a2) = if cache.member_dirty(idx) {
            let (mut a0, mut a1, mut a2) = (0.0, 0.0, 0.0);
            let mut add = |v: VertexId| {
                let (r0, r1, r2) = reach3(cid, v);
                let w = graph.weight(v).value();
                a0 += r0 * w;
                a1 += r1 * w;
                a2 += r2 * w;
            };
            match &comp.kind {
                Kind::Mono { members } => {
                    for &v in members.keys() {
                        add(v);
                    }
                }
                Kind::Bi { local, .. } => {
                    for &v in local.keys() {
                        add(v);
                    }
                }
            }
            (a0, a1, a2)
        } else {
            // Ancestor-dirty: members and their reaches are untouched, so
            // the cached single-lane member sum is bit-identical to what
            // each lane would recompute.
            let ms = cache
                .entries
                .get(idx)
                .copied()
                .flatten()
                .expect("ancestor-dirty component has a cache entry")
                .member_sum;
            (ms, ms, ms)
        };
        for &ch in &comp.children {
            let (s0, s1, s2) = if cache.marked(ch.index()) {
                cache.overlay[ch.index()]
            } else {
                let s = cache
                    .entries
                    .get(ch.index())
                    .copied()
                    .flatten()
                    .expect("clean child has a cache entry")
                    .sub;
                (s, s, s)
            };
            let (r0, r1, r2) = reach3(cid, tree.comp(ch).articulation);
            a0 += r0 * s0;
            a1 += r1 * s1;
            a2 += r2 * s2;
        }
        cache.overlay[idx] = (a0, a1, a2);
    }
    cache.stack = stack;
    let base = if include_query {
        graph.weight(tree.query).value()
    } else {
        0.0
    };
    let (mut t0, mut t1, mut t2) = (base, base, base);
    for &r in &tree.roots {
        let (s0, s1, s2) = if cache.marked(r.index()) {
            cache.overlay[r.index()]
        } else {
            let s = cache
                .entries
                .get(r.index())
                .copied()
                .flatten()
                .expect("clean root has a cache entry")
                .sub;
            (s, s, s)
        };
        t0 += s0;
        t1 += s1;
        t2 += s2;
    }
    (t0, t1, t2)
}

/// Result of probing a candidate edge without committing it (§6.1 Eq. 5).
#[derive(Debug, Clone, Copy)]
pub struct ProbeOutcome {
    /// Expected flow of the tree *with* the candidate inserted.
    pub flow: f64,
    /// Candidate-specific lower flow bound (`== flow` for analytic probes).
    pub lower: f64,
    /// Candidate-specific upper flow bound (`== flow` for analytic probes).
    pub upper: f64,
    /// The structural case the insertion would take.
    pub case: InsertCase,
    /// `cost(e)` of §6.4: edges that had to be sampled to answer the probe.
    pub sampling_cost_edges: usize,
}

/// A probe split into its deterministic part and its deferred estimation —
/// the shape the §6.3 racing engine needs: the structural classification
/// (leaf deltas, component snapshots) happens **once**, and the probe is
/// then [`score`](SampledProbe::score)d repeatedly as its component
/// estimate grows across race rounds.
#[derive(Debug)]
pub enum ProbePlan {
    /// Fully analytic (leaf) probe: the outcome is already exact.
    Analytic(ProbeOutcome),
    /// The probe needs exactly one component estimate before it can be
    /// scored (boxed to keep the analytic arm small).
    Sampled(Box<SampledProbe>),
}

/// The deferred half of a sampled probe: which component must be estimated,
/// and how to turn an estimate into a flow score.
///
/// Journal-based structural plans hold only the candidate edge — scoring
/// re-applies it to the shared tree via the undo journal and rolls back.
/// The plan is therefore only valid while the tree it was created from is
/// unchanged (the invariant every selection iteration already maintains).
#[derive(Debug)]
pub struct SampledProbe {
    snapshot: ComponentGraph,
    cost_edges: usize,
    kind: SampledKind,
}

#[derive(Debug)]
enum SampledKind {
    /// Case IIIa: re-estimate one existing bi component; flow is evaluated
    /// on the *original* tree with the estimate overriding the stored one.
    InBi { cid: ComponentId },
    /// Cases IIIb/IV, journal-based (the default): scoring applies the
    /// candidate to the shared tree, evaluates, and rolls back — no clone.
    Structural { edge: EdgeId, case: InsertCase },
    /// Cases IIIb/IV, the pinned clone-based reference: the probe's tree
    /// clone with the candidate inserted and the estimate still pending.
    /// Kept selectable so benchmarks and tests can compare engines (boxed:
    /// the journal variants carry no tree).
    StructuralCloned {
        tree: Box<FTree>,
        cid: ComponentId,
        case: InsertCase,
    },
}

impl SampledProbe {
    /// The component snapshot that must be estimated (candidate edge
    /// included).
    pub fn snapshot(&self) -> &ComponentGraph {
        &self.snapshot
    }

    /// `cost(e)` of §6.4: the number of edges the estimate must sample.
    pub fn sampling_cost_edges(&self) -> usize {
        self.cost_edges
    }

    /// The structural case the insertion would take.
    pub fn case(&self) -> InsertCase {
        match &self.kind {
            SampledKind::InBi { .. } => InsertCase::CycleInBi,
            SampledKind::Structural { case, .. } => *case,
            SampledKind::StructuralCloned { case, .. } => *case,
        }
    }

    /// Scores the probe under `estimate`: the flow the tree would have with
    /// the candidate inserted, plus the candidate-specific `1 − α` bounds.
    ///
    /// Callable repeatedly — racing rounds re-score with growing-budget
    /// estimates; only the latest call's estimate is retained. `tree` must
    /// be the tree the plan was created from, **unchanged since** — a
    /// journal-based structural score applies the candidate to it and rolls
    /// back before returning, so the tree reads unmodified afterwards.
    pub fn score(
        &mut self,
        tree: &mut FTree,
        graph: &ProbabilisticGraph,
        include_query: bool,
        alpha: f64,
        estimate: ComponentEstimate,
    ) -> ProbeOutcome {
        self.score_keeping(tree, graph, include_query, alpha, estimate)
            .0
    }

    /// [`score`](Self::score), additionally capturing a [`CommitReplay`]
    /// when the tree's incremental flow cache is enabled and the probe is a
    /// journal-based structural one: the rollback records the applied
    /// state's images on the way out, so the selection loop can commit this
    /// candidate later by replaying the recorded mutations instead of
    /// re-running the insertion.
    pub(crate) fn score_keeping(
        &mut self,
        tree: &mut FTree,
        graph: &ProbabilisticGraph,
        include_query: bool,
        alpha: f64,
        estimate: ComponentEstimate,
    ) -> (ProbeOutcome, Option<CommitReplay>) {
        match &mut self.kind {
            SampledKind::InBi { cid } => {
                let (flow, lower, upper) = if tree.flow_cache_enabled() {
                    tree.flow_with_override_bounds_cached(
                        graph,
                        include_query,
                        *cid,
                        &self.snapshot,
                        &estimate,
                        alpha,
                    )
                } else {
                    tree.flow_with_override_bounds(
                        graph,
                        include_query,
                        *cid,
                        &self.snapshot,
                        &estimate,
                        alpha,
                    )
                };
                (
                    ProbeOutcome {
                        flow,
                        lower,
                        upper,
                        case: InsertCase::CycleInBi,
                        sampling_cost_edges: self.cost_edges,
                    },
                    None,
                )
            }
            SampledKind::Structural { edge, case } => {
                // Apply → evaluate → rollback on the shared tree. The
                // supplied provider hands the insertion its estimate
                // directly, so no sampling and no tree clone happens here.
                let mut supplied = SuppliedProvider {
                    estimate: Some(estimate),
                };
                let (report, journal) = tree
                    .apply(graph, *edge, &mut supplied)
                    .expect("plan stays applicable while the tree is unchanged");
                let cid = report
                    .component
                    .expect("cycle insertions always produce a bi component");
                let (flow, lower, upper) = if tree.flow_cache_enabled() {
                    tree.flow_with_bounds_cached(graph, include_query, cid, alpha, &journal)
                } else {
                    tree.flow_with_bounds(graph, include_query, cid, alpha)
                };
                let replay = if tree.flow_cache_enabled() {
                    Some(tree.rollback_capturing(journal, cid))
                } else {
                    tree.rollback(journal);
                    None
                };
                (
                    ProbeOutcome {
                        flow,
                        lower,
                        upper,
                        case: *case,
                        sampling_cost_edges: self.cost_edges,
                    },
                    replay,
                )
            }
            SampledKind::StructuralCloned {
                tree: clone,
                cid,
                case,
            } => {
                clone.set_bi_estimate(*cid, estimate);
                let (flow, lower, upper) =
                    clone.flow_with_bounds(graph, include_query, *cid, alpha);
                (
                    ProbeOutcome {
                        flow,
                        lower,
                        upper,
                        case: *case,
                        sampling_cost_edges: self.cost_edges,
                    },
                    None,
                )
            }
        }
    }
}

/// Captures the single component snapshot a structural probe insertion
/// estimates, returning a placeholder so the estimate can be supplied
/// later.
#[derive(Default)]
struct CaptureProvider {
    snapshot: Option<ComponentGraph>,
}

impl EstimateProvider for CaptureProvider {
    fn estimate(&mut self, snapshot: &ComponentGraph) -> ComponentEstimate {
        assert!(
            self.snapshot.is_none(),
            "a structural probe estimates exactly one component"
        );
        self.snapshot = Some(snapshot.clone());
        ComponentEstimate::placeholder(snapshot.vertex_count())
    }
}

/// Defers estimation without copying the snapshot: the fused
/// [`FTree::probe_edge`] path estimates the applied component's own
/// snapshot afterwards, so nothing needs capturing.
struct PlaceholderProvider;

impl EstimateProvider for PlaceholderProvider {
    fn estimate(&mut self, snapshot: &ComponentGraph) -> ComponentEstimate {
        ComponentEstimate::placeholder(snapshot.vertex_count())
    }
}

/// Hands a pre-computed estimate to the single component a structural
/// probe's re-apply forms (the score-time counterpart of
/// [`CaptureProvider`]).
struct SuppliedProvider {
    estimate: Option<ComponentEstimate>,
}

impl EstimateProvider for SuppliedProvider {
    fn estimate(&mut self, _snapshot: &ComponentGraph) -> ComponentEstimate {
        self.estimate
            .take()
            .expect("a structural probe estimates exactly one component")
    }
}

impl FTree {
    /// The expected information flow `E(flow(Q, G_selected))` under the
    /// tree's current component estimates (Def. 3 / Eq. 2), by one
    /// whole-forest traversal — the pinned reference the incremental
    /// `FTree::flow_cached_total` (crate-internal) is held bit-identical
    /// to.
    pub fn expected_flow(&self, graph: &ProbabilisticGraph, include_query: bool) -> f64 {
        self.flow_forest(graph, include_query, &|c, v| self.reach_in(c, v))
    }

    /// Lower/upper expected-flow bounds obtained by evaluating component
    /// `cid` at its per-vertex confidence bounds (every other component at
    /// its point estimate) — the candidate-specific uncertainty of §6.3.
    ///
    /// This two-pass form is the pinned reference for the fused
    /// `FTree::flow_with_bounds` (crate-internal), which computes the
    /// point estimate and
    /// both bounds in one traversal; the `fused_bounds_match_reference`
    /// test holds them bit-identical.
    pub fn flow_bounds_for_component(
        &self,
        graph: &ProbabilisticGraph,
        include_query: bool,
        cid: ComponentId,
        alpha: f64,
    ) -> (f64, f64) {
        let bound = |upper: bool| {
            self.flow_forest(graph, include_query, &|c, v| {
                let comp = self.comp(c);
                if v == comp.articulation {
                    return 1.0;
                }
                if c != cid {
                    return self.reach_in(c, v);
                }
                match &comp.kind {
                    Kind::Mono { members } => members[&v].reach,
                    Kind::Bi {
                        estimate, local, ..
                    } => {
                        let ci = estimate.interval(local[&v] as usize, alpha);
                        if upper {
                            ci.upper
                        } else {
                            ci.lower
                        }
                    }
                }
            })
        };
        (bound(false), bound(true))
    }

    /// `(point, lower, upper)` expected flow in **one** traversal, with
    /// component `cid` evaluated at its point estimate and its `1 − α`
    /// confidence bounds (every other component at its point estimate).
    ///
    /// Bit-identical to running [`FTree::expected_flow`] plus
    /// [`FTree::flow_bounds_for_component`] — the traversal order is purely
    /// structural, the three accumulators are independent, and the interval
    /// is a pure function of the stored counts — but three times cheaper:
    /// this is what every sampled probe pays per score, thousands of times
    /// per greedy iteration.
    pub(crate) fn flow_with_bounds(
        &self,
        graph: &ProbabilisticGraph,
        include_query: bool,
        cid: ComponentId,
        alpha: f64,
    ) -> (f64, f64, f64) {
        self.flow_forest_triple(graph, include_query, &|c, v| {
            let comp = self.comp(c);
            if v == comp.articulation {
                return (1.0, 1.0, 1.0);
            }
            if c != cid {
                let r = self.reach_in(c, v);
                return (r, r, r);
            }
            match &comp.kind {
                Kind::Mono { members } => {
                    let r = members[&v].reach;
                    (r, r, r)
                }
                Kind::Bi {
                    estimate, local, ..
                } => {
                    let l = local[&v] as usize;
                    let ci = estimate.interval(l, alpha);
                    (estimate.reach(l), ci.lower, ci.upper)
                }
            }
        })
    }

    /// The IIIa-probe counterpart of [`FTree::flow_with_bounds`]: component
    /// `cid`'s stored estimate is overridden by `(snapshot, estimate)` and
    /// evaluated at its point and `1 − α` bounds, in one traversal.
    fn flow_with_override_bounds(
        &self,
        graph: &ProbabilisticGraph,
        include_query: bool,
        cid: ComponentId,
        snapshot: &ComponentGraph,
        estimate: &ComponentEstimate,
        alpha: f64,
    ) -> (f64, f64, f64) {
        let order = override_order(snapshot);
        self.flow_forest_triple(graph, include_query, &|c, v| {
            let comp = self.comp(c);
            if v == comp.articulation {
                return (1.0, 1.0, 1.0);
            }
            if c != cid {
                let r = self.reach_in(c, v);
                return (r, r, r);
            }
            let local = override_position(&order, v);
            let ci = estimate.interval(local, alpha);
            (estimate.reach(local), ci.lower, ci.upper)
        })
    }

    /// One bottom-up whole-forest traversal computing total expected flow,
    /// with per-vertex within-component reach supplied by `reach`.
    /// Children complete before their parent; a parent accumulates members
    /// first (ascending member order), then child subtree flows scaled by
    /// each child AV's reach (child-list order) — the canonical operation
    /// sequence every evaluator in this module shares, which is what makes
    /// cached, overlay and fresh results bitwise comparable.
    ///
    /// Debug builds count every call ([`FTree::debug_full_flow_eval_count`])
    /// so the incremental selection loop can assert it never falls back to
    /// a whole-forest walk mid-iteration.
    fn flow_forest(
        &self,
        graph: &ProbabilisticGraph,
        include_query: bool,
        reach: &dyn Fn(ComponentId, VertexId) -> f64,
    ) -> f64 {
        #[cfg(debug_assertions)]
        FTree::note_full_flow_eval();
        let mut sub = vec![0.0f64; self.arena.len()];
        let mut stack: Vec<(u32, bool)> = self.roots.iter().map(|&r| (r.0, false)).collect();
        while let Some((slot, exit)) = stack.pop() {
            let cid = ComponentId(slot);
            let comp = self.comp(cid);
            if !exit {
                stack.push((slot, true));
                for &ch in &comp.children {
                    stack.push((ch.0, false));
                }
                continue;
            }
            let mut acc = 0.0;
            match &comp.kind {
                Kind::Mono { members } => {
                    for &v in members.keys() {
                        acc += reach(cid, v) * graph.weight(v).value();
                    }
                }
                Kind::Bi { local, .. } => {
                    for &v in local.keys() {
                        acc += reach(cid, v) * graph.weight(v).value();
                    }
                }
            }
            for &ch in &comp.children {
                acc += reach(cid, self.comp(ch).articulation) * sub[ch.index()];
            }
            sub[slot as usize] = acc;
        }
        let mut total = if include_query {
            graph.weight(self.query).value()
        } else {
            0.0
        };
        for &r in &self.roots {
            total += sub[r.index()];
        }
        total
    }

    /// The three-accumulator form of [`FTree::flow_forest`]: `reach3` yields
    /// `(point, lower, upper)` reach per vertex, and each lane sees exactly
    /// the operation sequence its solo traversal would, so the results are
    /// bit-identical to three separate passes.
    fn flow_forest_triple(
        &self,
        graph: &ProbabilisticGraph,
        include_query: bool,
        reach3: &dyn Fn(ComponentId, VertexId) -> (f64, f64, f64),
    ) -> (f64, f64, f64) {
        #[cfg(debug_assertions)]
        FTree::note_full_flow_eval();
        let mut sub = vec![(0.0f64, 0.0f64, 0.0f64); self.arena.len()];
        let mut stack: Vec<(u32, bool)> = self.roots.iter().map(|&r| (r.0, false)).collect();
        while let Some((slot, exit)) = stack.pop() {
            let cid = ComponentId(slot);
            let comp = self.comp(cid);
            if !exit {
                stack.push((slot, true));
                for &ch in &comp.children {
                    stack.push((ch.0, false));
                }
                continue;
            }
            let (mut a0, mut a1, mut a2) = (0.0, 0.0, 0.0);
            let mut add_member = |v: VertexId| {
                let (r0, r1, r2) = reach3(cid, v);
                let w = graph.weight(v).value();
                a0 += r0 * w;
                a1 += r1 * w;
                a2 += r2 * w;
            };
            match &comp.kind {
                Kind::Mono { members } => {
                    for &v in members.keys() {
                        add_member(v);
                    }
                }
                Kind::Bi { local, .. } => {
                    for &v in local.keys() {
                        add_member(v);
                    }
                }
            }
            for &ch in &comp.children {
                let (s0, s1, s2) = sub[ch.index()];
                let (r0, r1, r2) = reach3(cid, self.comp(ch).articulation);
                a0 += r0 * s0;
                a1 += r1 * s1;
                a2 += r2 * s2;
            }
            sub[slot as usize] = (a0, a1, a2);
        }
        let base = if include_query {
            graph.weight(self.query).value()
        } else {
            0.0
        };
        let (mut t0, mut t1, mut t2) = (base, base, base);
        for &r in &self.roots {
            let (s0, s1, s2) = sub[r.index()];
            t0 += s0;
            t1 += s1;
            t2 += s2;
        }
        (t0, t1, t2)
    }

    /// Switches this tree to incremental flow accounting: every live slot
    /// is queued dirty so the first [`FTree::flow_cached_total`] populates
    /// the cache, and subsequent commits keep it fresh via
    /// [`FTree::cache_mark_dirty`]. Probes evaluate `O(touched)` through
    /// the overlay scratch without ever writing committed entries.
    pub(crate) fn enable_flow_cache(&mut self) {
        let mut cache = Box::<FlowCache>::default();
        cache.dirty.extend(self.component_ids().map(|c| c.0));
        self.flow_cache = Some(cache);
    }

    /// Whether incremental flow accounting is enabled.
    pub(crate) fn flow_cache_enabled(&self) -> bool {
        self.flow_cache.is_some()
    }

    /// Queues arena slots whose members or estimates changed, for
    /// re-aggregation at the next [`FTree::flow_cached_total`]. No-op
    /// without an enabled cache; ancestors are implied (the drain marks
    /// them itself); dead slots are tolerated (their entries are cleared).
    pub(crate) fn cache_mark_dirty(&mut self, slots: impl IntoIterator<Item = u32>) {
        if let Some(cache) = self.flow_cache.as_deref_mut() {
            cache.dirty.extend(slots);
        }
    }

    /// The incremental counterpart of [`FTree::expected_flow`]: drains the
    /// dirty-slot queue by re-aggregating exactly the dirty components and
    /// their ancestors, then sums the cached root subtree flows —
    /// bit-identical to a fresh whole-forest traversal without performing
    /// one.
    pub(crate) fn flow_cached_total(
        &mut self,
        graph: &ProbabilisticGraph,
        include_query: bool,
    ) -> f64 {
        let mut cache = self.flow_cache.take().expect("flow cache enabled");
        {
            let tree = &*self;
            if cache.entries.len() < tree.arena.len() {
                cache.entries.resize(tree.arena.len(), None);
            }
            let mut seeds = std::mem::take(&mut cache.seeds);
            seeds.clear();
            seeds.append(&mut cache.dirty);
            for &slot in &seeds {
                let idx = slot as usize;
                if (idx >= tree.arena.len() || tree.arena[idx].is_none())
                    && idx < cache.entries.len()
                {
                    cache.entries[idx] = None;
                }
            }
            mark_touched(tree, &mut cache, &seeds);
            drain_marked(tree, &mut cache, graph);
            cache.seeds = seeds;
        }
        let mut total = if include_query {
            graph.weight(self.query).value()
        } else {
            0.0
        };
        for &r in &self.roots {
            total += cache.entries[r.index()]
                .expect("live roots are cached after a drain")
                .sub;
        }
        self.flow_cache = Some(cache);
        total
    }

    /// The incremental counterpart of [`FTree::flow_with_bounds`], for
    /// structural probes evaluated while their journalled apply is still in
    /// place: only the journal's touched components and their ancestors are
    /// re-aggregated, triple-lane, into the overlay scratch — committed
    /// entries are never written. Bit-identical to the fresh traversal.
    pub(crate) fn flow_with_bounds_cached(
        &mut self,
        graph: &ProbabilisticGraph,
        include_query: bool,
        cid: ComponentId,
        alpha: f64,
        journal: &Journal,
    ) -> (f64, f64, f64) {
        let mut cache = self.flow_cache.take().expect("flow cache enabled");
        debug_assert!(
            cache.dirty.is_empty(),
            "probe evaluation requires a drained flow cache"
        );
        let mut seeds = std::mem::take(&mut cache.seeds);
        seeds.clear();
        seeds.extend(journal.touched_slot_ids());
        let result = {
            let tree = &*self;
            mark_touched(tree, &mut cache, &seeds);
            overlay_flow_triple(tree, &mut cache, graph, include_query, &|c, v| {
                let comp = tree.comp(c);
                if v == comp.articulation {
                    return (1.0, 1.0, 1.0);
                }
                if c != cid {
                    let r = tree.reach_in(c, v);
                    return (r, r, r);
                }
                match &comp.kind {
                    Kind::Mono { members } => {
                        let r = members[&v].reach;
                        (r, r, r)
                    }
                    Kind::Bi {
                        estimate, local, ..
                    } => {
                        let l = local[&v] as usize;
                        let ci = estimate.interval(l, alpha);
                        (estimate.reach(l), ci.lower, ci.upper)
                    }
                }
            })
        };
        cache.seeds = seeds;
        self.flow_cache = Some(cache);
        result
    }

    /// The incremental counterpart of [`FTree::flow_with_override_bounds`]
    /// (IIIa probes): only component `cid` — evaluated under the override
    /// estimate — and its ancestors are re-aggregated. The tree itself is
    /// untouched, so no journal is involved.
    fn flow_with_override_bounds_cached(
        &mut self,
        graph: &ProbabilisticGraph,
        include_query: bool,
        cid: ComponentId,
        snapshot: &ComponentGraph,
        estimate: &ComponentEstimate,
        alpha: f64,
    ) -> (f64, f64, f64) {
        let mut cache = self.flow_cache.take().expect("flow cache enabled");
        debug_assert!(
            cache.dirty.is_empty(),
            "probe evaluation requires a drained flow cache"
        );
        let mut seeds = std::mem::take(&mut cache.seeds);
        seeds.clear();
        seeds.push(cid.0);
        let order = override_order(snapshot);
        let result = {
            let tree = &*self;
            mark_touched(tree, &mut cache, &seeds);
            overlay_flow_triple(tree, &mut cache, graph, include_query, &|c, v| {
                let comp = tree.comp(c);
                if v == comp.articulation {
                    return (1.0, 1.0, 1.0);
                }
                if c != cid {
                    let r = tree.reach_in(c, v);
                    return (r, r, r);
                }
                let local = override_position(&order, v);
                let ci = estimate.interval(local, alpha);
                (estimate.reach(local), ci.lower, ci.upper)
            })
        };
        cache.seeds = seeds;
        self.flow_cache = Some(cache);
        result
    }

    /// Evaluates the flow the tree would have after inserting `e`, without
    /// committing the insertion (Eq. 5's probe).
    ///
    /// `base_flow` must be `self.expected_flow(graph, include_query)` — the
    /// caller computes it once per iteration and shares it across probes.
    /// The tree reads unmodified afterwards; structural candidates are
    /// evaluated with **one** journalled apply — the captured component
    /// snapshot is estimated and scored while the insertion is still
    /// applied, then rolled back — never by cloning. (The split
    /// [`FTree::probe_plan`] + [`SampledProbe::score`] form, which the
    /// racing engine needs, pays the apply twice; one-shot probes fuse it.)
    ///
    /// Returns candidate-specific confidence bounds alongside the point
    /// estimate: exact for analytic (leaf) probes, interval-derived for
    /// probes that sampled a component.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_edge(
        &mut self,
        graph: &ProbabilisticGraph,
        e: EdgeId,
        base_flow: f64,
        include_query: bool,
        alpha: f64,
        provider: &mut dyn EstimateProvider,
    ) -> Result<ProbeOutcome, CoreError> {
        self.probe_edge_keeping(graph, e, base_flow, include_query, alpha, provider)
            .map(|(outcome, _replay)| outcome)
    }

    /// [`probe_edge`](FTree::probe_edge), additionally capturing a
    /// [`CommitReplay`] when the incremental flow cache is enabled and the
    /// probe is structural: the selection loop can then commit the winning
    /// candidate by replaying its probe's recorded mutations instead of
    /// re-running the insertion.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe_edge_keeping(
        &mut self,
        graph: &ProbabilisticGraph,
        e: EdgeId,
        base_flow: f64,
        include_query: bool,
        alpha: f64,
        provider: &mut dyn EstimateProvider,
    ) -> Result<(ProbeOutcome, Option<CommitReplay>), CoreError> {
        if matches!(self.classify_candidate(graph, e)?, ProbeClass::Structural) {
            // Fused structural probe: apply once, estimate the new
            // component's own snapshot in place, score, roll back — no
            // snapshot copy, no clone.
            let (report, journal) = self
                .apply(graph, e, &mut PlaceholderProvider)
                .expect("probe preconditions were just checked");
            let cid = report
                .component
                .expect("cycle insertions always produce a bi component");
            let estimate = {
                let Kind::Bi { snapshot, .. } = &self.comp(cid).kind else {
                    unreachable!("cycle insertions always produce a bi component")
                };
                provider.estimate(snapshot)
            };
            self.set_bi_estimate(cid, estimate);
            let (flow, lower, upper) = if self.flow_cache_enabled() {
                self.flow_with_bounds_cached(graph, include_query, cid, alpha, &journal)
            } else {
                self.flow_with_bounds(graph, include_query, cid, alpha)
            };
            let replay = if self.flow_cache_enabled() {
                Some(self.rollback_capturing(journal, cid))
            } else {
                self.rollback(journal);
                None
            };
            return Ok((
                ProbeOutcome {
                    flow,
                    lower,
                    upper,
                    case: report.case,
                    sampling_cost_edges: report.sampled_edge_count,
                },
                replay,
            ));
        }
        match self.probe_plan(graph, e, base_flow)? {
            ProbePlan::Analytic(outcome) => Ok((outcome, None)),
            ProbePlan::Sampled(mut sampled) => {
                let estimate = provider.estimate(sampled.snapshot());
                Ok(sampled.score_keeping(self, graph, include_query, alpha, estimate))
            }
        }
    }

    /// Classifies candidate `e` (validating the probe preconditions); see
    /// [`ProbeClass`]. Every probe entry point goes through this.
    fn classify_candidate(
        &self,
        graph: &ProbabilisticGraph,
        e: EdgeId,
    ) -> Result<ProbeClass, CoreError> {
        if self.selected.contains(e) {
            return Err(CoreError::EdgeAlreadySelected(e));
        }
        let (a, b) = graph.endpoints(e);
        let (a_in, b_in) = (self.contains_vertex(a), self.contains_vertex(b));
        match (a_in, b_in) {
            (false, false) => Err(CoreError::DisconnectedEdge {
                edge: e,
                endpoints: (a, b),
            }),
            (true, false) => Ok(ProbeClass::Leaf { anchor: a, leaf: b }),
            (false, true) => Ok(ProbeClass::Leaf { anchor: b, leaf: a }),
            (true, true) => {
                if let (Some(x), Some(y)) = (self.owner(a), self.owner(b)) {
                    if x == y && self.comp(x).is_bi() {
                        return Ok(ProbeClass::InBi { cid: x });
                    }
                }
                Ok(ProbeClass::Structural)
            }
        }
    }

    /// The deterministic half of [`FTree::probe_edge`]: classifies the
    /// candidate, resolves leaf probes analytically, and packages sampled
    /// probes (IIIa and structural) with the one component snapshot they
    /// need — without drawing a single sample. The racing engine builds one
    /// plan per candidate and re-[`score`](SampledProbe::score)s it as the
    /// candidate's estimate grows across rounds.
    ///
    /// Structural candidates are classified by a journalled apply +
    /// rollback on this tree (hence `&mut self`); the returned plan holds
    /// only the candidate edge and its component snapshot, and stays valid
    /// while the tree is unchanged — one selection iteration.
    ///
    /// `base_flow` must be `self.expected_flow(graph, include_query)`.
    pub fn probe_plan(
        &mut self,
        graph: &ProbabilisticGraph,
        e: EdgeId,
        base_flow: f64,
    ) -> Result<ProbePlan, CoreError> {
        self.probe_plan_impl(graph, e, base_flow, false)
    }

    /// The pinned clone-based reference form of [`FTree::probe_plan`]: the
    /// pre-journal engine, kept selectable so equivalence tests and the
    /// `probe_churn` benchmark can compare probe engines edge-for-edge.
    /// Structural plans carry a full tree clone, exactly as before.
    pub fn probe_plan_cloning(
        &mut self,
        graph: &ProbabilisticGraph,
        e: EdgeId,
        base_flow: f64,
    ) -> Result<ProbePlan, CoreError> {
        self.probe_plan_impl(graph, e, base_flow, true)
    }

    fn probe_plan_impl(
        &mut self,
        graph: &ProbabilisticGraph,
        e: EdgeId,
        base_flow: f64,
        cloning: bool,
    ) -> Result<ProbePlan, CoreError> {
        match self.classify_candidate(graph, e)? {
            ProbeClass::Leaf { anchor, leaf } => {
                let p = graph.probability(e).value();
                let delta = graph.weight(leaf).value() * p * self.reach_to_query(anchor);
                let flow = base_flow + delta;
                let case = match self.owner(anchor) {
                    Some(cid) if self.comp(cid).is_bi() => InsertCase::LeafBi,
                    _ => InsertCase::LeafMono,
                };
                Ok(ProbePlan::Analytic(ProbeOutcome {
                    flow,
                    lower: flow,
                    upper: flow,
                    case,
                    sampling_cost_edges: 0,
                }))
            }
            ProbeClass::InBi { cid } => {
                // IIIa probe: only this component is re-estimated.
                let Kind::Bi { edges, .. } = &self.comp(cid).kind else {
                    unreachable!()
                };
                let mut probe_edges = edges.clone();
                probe_edges.push(e);
                let av = self.comp(cid).articulation;
                let mut scratch = std::mem::take(&mut self.local_scratch);
                let snapshot = ComponentGraph::build_with(graph, av, &probe_edges, &mut scratch);
                self.local_scratch = scratch;
                Ok(ProbePlan::Sampled(Box::new(SampledProbe {
                    snapshot,
                    cost_edges: probe_edges.len(),
                    kind: SampledKind::InBi { cid },
                })))
            }
            ProbeClass::Structural if cloning => {
                // Pinned reference: clone and insert now, estimate later.
                let mut clone = self.clone();
                let mut capture = CaptureProvider::default();
                let report = clone
                    .insert_edge(graph, e, &mut capture)
                    .expect("probe preconditions were just checked");
                let cid = report
                    .component
                    .expect("cycle insertions always produce a bi component");
                let snapshot = capture
                    .snapshot
                    .expect("cycle insertions estimate their new component");
                Ok(ProbePlan::Sampled(Box::new(SampledProbe {
                    snapshot,
                    cost_edges: report.sampled_edge_count,
                    kind: SampledKind::StructuralCloned {
                        tree: Box::new(clone),
                        cid,
                        case: report.case,
                    },
                })))
            }
            ProbeClass::Structural => {
                // Structural probe: journalled apply on the shared tree
                // captures the would-be component's snapshot, then rolls
                // back — no clone, cost proportional to the touched slots.
                let mut capture = CaptureProvider::default();
                let (report, journal) = self
                    .apply(graph, e, &mut capture)
                    .expect("probe preconditions were just checked");
                self.rollback(journal);
                let snapshot = capture
                    .snapshot
                    .expect("cycle insertions estimate their new component");
                Ok(ProbePlan::Sampled(Box::new(SampledProbe {
                    snapshot,
                    cost_edges: report.sampled_edge_count,
                    kind: SampledKind::Structural {
                        edge: e,
                        case: report.case,
                    },
                })))
            }
        }
    }
}

/// How a candidate probe is answered — the **single** classification shared
/// by the plan engines and the fused [`FTree::probe_edge`] path, so the two
/// can never drift apart.
enum ProbeClass {
    /// Case II: `leaf` is outside the tree, `anchor` inside — analytic.
    Leaf { anchor: VertexId, leaf: VertexId },
    /// Case IIIa inside bi component `cid` — override-scored, no mutation.
    InBi { cid: ComponentId },
    /// Cases IIIb/IV (plus the AV-adjacent IIIa probes routed the same
    /// way): a mutating insertion, probed through the journal or a clone.
    Structural,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{EstimatorConfig, SamplingProvider};
    use flowmax_graph::{
        exact_expected_flow, GraphBuilder, Probability, Weight, DEFAULT_ENUMERATION_CAP,
    };

    fn exact_provider() -> SamplingProvider {
        SamplingProvider::new(EstimatorConfig::exact(), 7)
    }

    /// Manual timing probe (not a correctness test): run with
    /// `cargo test --release -p flowmax-core -- --ignored probe_timing --nocapture`.
    #[test]
    #[ignore]
    fn probe_timing_breakdown() {
        use crate::selection::MemoProvider;
        use std::time::Instant;
        let links = 100usize;
        let mut b = GraphBuilder::new();
        let diamond = Probability::new(0.99).unwrap();
        let chordp = Probability::new(0.05).unwrap();
        let h0 = b.add_vertex(Weight::ONE);
        let mut hub = h0;
        let mut prev_a: Option<VertexId> = None;
        let mut chords = Vec::new();
        let mut count = 0u32;
        for _ in 0..links {
            let a = b.add_vertex(Weight::ONE);
            let bb = b.add_vertex(Weight::ONE);
            let next = b.add_vertex(Weight::ONE);
            b.add_edge(hub, a, diamond).unwrap();
            b.add_edge(hub, bb, diamond).unwrap();
            b.add_edge(a, next, diamond).unwrap();
            b.add_edge(bb, next, diamond).unwrap();
            count += 4;
            if let Some(pa) = prev_a {
                b.add_edge(pa, a, chordp).unwrap();
                chords.push(EdgeId(count));
                count += 1;
            }
            prev_a = Some(a);
            hub = next;
        }
        let g = b.build();
        let inner = SamplingProvider::new(EstimatorConfig::monte_carlo(1000), 13);
        let mut provider = MemoProvider::new(inner, true);
        let mut tree = FTree::new(&g, VertexId(0));
        for e in g.edge_ids() {
            if g.probability(e).value() > 0.5 {
                tree.insert_edge(&g, e, &mut provider).unwrap();
            }
        }
        let base = tree.expected_flow(&g, false);
        let reps = 2000usize;
        // Warm the memo for every chord's merged shape first.
        for &e in &chords {
            let _ = tree.probe_edge(&g, e, base, false, 0.05, &mut provider);
        }

        let t = Instant::now();
        for i in 0..reps {
            let e = chords[i % chords.len()];
            let (_r, j) = tree.apply(&g, e, &mut provider).unwrap();
            tree.rollback(j);
        }
        println!(
            "apply+memo+rollback      : {:8.2} us",
            t.elapsed().as_secs_f64() * 1e6 / reps as f64
        );

        let t = Instant::now();
        for i in 0..reps {
            let e = chords[i % chords.len()];
            let _ = tree
                .probe_edge(&g, e, base, false, 0.05, &mut provider)
                .unwrap();
        }
        println!(
            "journal fused probe      : {:8.2} us",
            t.elapsed().as_secs_f64() * 1e6 / reps as f64
        );

        let t = Instant::now();
        let mut acc = 0.0;
        for _ in 0..reps {
            acc += tree.expected_flow(&g, false);
        }
        println!(
            "single-lane traversal    : {:8.2} us ({acc:.0})",
            t.elapsed().as_secs_f64() * 1e6 / reps as f64
        );

        let t = Instant::now();
        let cid = tree.component_ids().next().unwrap();
        let mut acc = 0.0;
        for _ in 0..reps {
            let (p, _, _) = tree.flow_with_bounds(&g, false, cid, 0.05);
            acc += p;
        }
        println!(
            "triple-lane traversal    : {:8.2} us ({acc:.0})",
            t.elapsed().as_secs_f64() * 1e6 / reps as f64
        );

        tree.enable_flow_cache();
        let cached = tree.flow_cached_total(&g, false);
        assert_eq!(cached.to_bits(), base.to_bits());
        let t = Instant::now();
        for i in 0..reps {
            let e = chords[i % chords.len()];
            let _ = tree
                .probe_edge(&g, e, cached, false, 0.05, &mut provider)
                .unwrap();
        }
        println!(
            "incremental fused probe  : {:8.2} us",
            t.elapsed().as_secs_f64() * 1e6 / reps as f64
        );

        let t = Instant::now();
        for i in 0..reps {
            let e = chords[i % chords.len()];
            let (_r, j) = tree.apply(&g, e, &mut provider).unwrap();
            let cid = _r.component.unwrap();
            let _ = tree.rollback_capturing(j, cid);
        }
        println!(
            "apply+memo+capture       : {:8.2} us",
            t.elapsed().as_secs_f64() * 1e6 / reps as f64
        );
    }

    /// Q(0)-1 (0.8), 1-2 (0.5), 2-0 (0.4), 2-3 (0.9), weights = id.
    fn graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        for w in 0..4 {
            b.add_vertex(Weight::new(w as f64).unwrap());
        }
        b.add_edge(VertexId(0), VertexId(1), Probability::new(0.8).unwrap())
            .unwrap();
        b.add_edge(VertexId(1), VertexId(2), Probability::new(0.5).unwrap())
            .unwrap();
        b.add_edge(VertexId(2), VertexId(0), Probability::new(0.4).unwrap())
            .unwrap();
        b.add_edge(VertexId(2), VertexId(3), Probability::new(0.9).unwrap())
            .unwrap();
        b.build()
    }

    #[test]
    fn flow_matches_exact_enumeration_with_exact_estimator() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        for e in 0..4 {
            t.insert_edge(&g, EdgeId(e), &mut pr).unwrap();
        }
        let ftree_flow = t.expected_flow(&g, false);
        let exact = exact_expected_flow(
            &g,
            t.selected_edges(),
            VertexId(0),
            false,
            DEFAULT_ENUMERATION_CAP,
        )
        .unwrap();
        assert!(
            (ftree_flow - exact).abs() < 1e-9,
            "decomposition must be exact: {ftree_flow} vs {exact}"
        );
    }

    #[test]
    fn include_query_adds_its_weight() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(2));
        let mut pr = exact_provider();
        t.insert_edge(&g, EdgeId(3), &mut pr).unwrap();
        let without = t.expected_flow(&g, false);
        let with = t.expected_flow(&g, true);
        assert!(
            (with - without - 2.0).abs() < 1e-12,
            "W(Q)=2 must be the difference"
        );
    }

    #[test]
    fn leaf_probe_equals_commit() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        t.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        t.insert_edge(&g, EdgeId(1), &mut pr).unwrap();
        let base = t.expected_flow(&g, false);
        let probe = t
            .probe_edge(&g, EdgeId(3), base, false, 0.01, &mut pr)
            .unwrap();
        assert_eq!(probe.case, InsertCase::LeafMono);
        assert_eq!(probe.sampling_cost_edges, 0);
        assert_eq!(probe.lower, probe.flow);
        let mut t2 = t.clone();
        t2.insert_edge(&g, EdgeId(3), &mut pr).unwrap();
        let committed = t2.expected_flow(&g, false);
        assert!((probe.flow - committed).abs() < 1e-12);
    }

    #[test]
    fn structural_probe_equals_commit_with_exact_estimates() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        t.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        t.insert_edge(&g, EdgeId(1), &mut pr).unwrap();
        let base = t.expected_flow(&g, false);
        let probe = t
            .probe_edge(&g, EdgeId(2), base, false, 0.01, &mut pr)
            .unwrap();
        assert_eq!(probe.case, InsertCase::CycleAcross);
        assert!(probe.sampling_cost_edges > 0);
        let mut t2 = t.clone();
        t2.insert_edge(&g, EdgeId(2), &mut pr).unwrap();
        let committed = t2.expected_flow(&g, false);
        assert!((probe.flow - committed).abs() < 1e-12);
        // Probe must not have mutated the original.
        assert!((t.expected_flow(&g, false) - base).abs() < 1e-12);
        assert_eq!(t.edge_count(), 2);
    }

    #[test]
    fn iiia_probe_uses_override_without_mutation() {
        // Square + diagonal: insert square, probe diagonal.
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::ONE);
        let p = Probability::new(0.5).unwrap();
        b.add_edge(VertexId(0), VertexId(1), p).unwrap();
        b.add_edge(VertexId(1), VertexId(2), p).unwrap();
        b.add_edge(VertexId(2), VertexId(3), p).unwrap();
        b.add_edge(VertexId(3), VertexId(0), p).unwrap();
        b.add_edge(VertexId(1), VertexId(3), p).unwrap();
        let g = b.build();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        for e in 0..4 {
            t.insert_edge(&g, EdgeId(e), &mut pr).unwrap();
        }
        let base = t.expected_flow(&g, false);
        let probe = t
            .probe_edge(&g, EdgeId(4), base, false, 0.01, &mut pr)
            .unwrap();
        assert_eq!(probe.case, InsertCase::CycleInBi);
        assert!(probe.flow > base, "diagonal adds paths");
        let mut t2 = t.clone();
        t2.insert_edge(&g, EdgeId(4), &mut pr).unwrap();
        assert!((probe.flow - t2.expected_flow(&g, false)).abs() < 1e-12);
        assert_eq!(t.edge_count(), 4, "probe must not commit");
    }

    #[test]
    fn fused_bounds_match_reference() {
        // The one-pass flow_with_bounds must equal expected_flow plus the
        // two-pass flow_bounds_for_component bit for bit, on a tree with a
        // genuinely sampled (non-degenerate) component.
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut mc = SamplingProvider::new(EstimatorConfig::monte_carlo(300), 9);
        for e in 0..4 {
            t.insert_edge(&g, EdgeId(e), &mut mc).unwrap();
        }
        let cid = t.component_of(VertexId(1)).expect("cycle component");
        for include_query in [false, true] {
            let (flow, lo, hi) = t.flow_with_bounds(&g, include_query, cid, 0.01);
            assert_eq!(flow.to_bits(), t.expected_flow(&g, include_query).to_bits());
            let (rlo, rhi) = t.flow_bounds_for_component(&g, include_query, cid, 0.01);
            assert_eq!(lo.to_bits(), rlo.to_bits());
            assert_eq!(hi.to_bits(), rhi.to_bits());
            assert!(lo < hi, "sampled component must have bound width");
        }
    }

    #[test]
    fn bounds_bracket_point_estimate_for_sampled_probes() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut mc = SamplingProvider::new(EstimatorConfig::monte_carlo(200), 3);
        t.insert_edge(&g, EdgeId(0), &mut mc).unwrap();
        t.insert_edge(&g, EdgeId(1), &mut mc).unwrap();
        let base = t.expected_flow(&g, false);
        let probe = t
            .probe_edge(&g, EdgeId(2), base, false, 0.01, &mut mc)
            .unwrap();
        assert!(probe.lower <= probe.flow && probe.flow <= probe.upper);
        assert!(
            probe.upper - probe.lower > 0.0,
            "sampled probe must have width"
        );
    }

    #[test]
    fn probe_rejects_bad_edges() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        t.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        assert!(matches!(
            t.probe_edge(&g, EdgeId(0), 0.0, false, 0.01, &mut pr),
            Err(CoreError::EdgeAlreadySelected(_))
        ));
        assert!(matches!(
            t.probe_edge(&g, EdgeId(3), 0.0, false, 0.01, &mut pr),
            Err(CoreError::DisconnectedEdge { .. })
        ));
    }

    #[test]
    fn empty_tree_flow_is_query_weight_only() {
        let g = graph();
        let t = FTree::new(&g, VertexId(3));
        assert_eq!(t.expected_flow(&g, false), 0.0);
        assert_eq!(t.expected_flow(&g, true), 3.0);
    }

    /// Insertable candidates: unselected edges touching a tree vertex.
    fn insertable(g: &ProbabilisticGraph, tree: &FTree) -> Vec<EdgeId> {
        g.edge_ids()
            .filter(|&e| {
                if tree.selected_edges().contains(e) {
                    return false;
                }
                let (a, b) = g.endpoints(e);
                tree.contains_vertex(a) || tree.contains_vertex(b)
            })
            .collect()
    }

    /// The Δ(touched) golden: growing the Fig. 3 tree edge by edge through
    /// the incremental commit path (apply → keep → mark touched), the
    /// cached flow total and every candidate probe — leaf, in-bi,
    /// `splitTree` and cross-component alike — are **bit-identical** to a
    /// reference tree maintained by `insert_edge` with whole-forest
    /// traversals, at every single step.
    #[test]
    fn figure3_walk_cached_flow_and_probes_match_full_traversal() {
        let g = crate::ftree::goldens::figure3_graph();
        let mut pr = exact_provider();
        let mut cached = FTree::new(&g, VertexId(0));
        cached.enable_flow_cache();
        let mut reference = FTree::new(&g, VertexId(0));
        for e in 0..19u32 {
            let total = cached.flow_cached_total(&g, false);
            assert_eq!(
                total.to_bits(),
                reference.expected_flow(&g, false).to_bits(),
                "cached total diverged before inserting e{e}"
            );
            for cand in insertable(&g, &cached) {
                let mut pa = exact_provider();
                let mut pb = exact_provider();
                let a = cached
                    .probe_edge(&g, cand, total, false, 0.01, &mut pa)
                    .unwrap();
                let b = reference
                    .probe_edge(&g, cand, total, false, 0.01, &mut pb)
                    .unwrap();
                assert_eq!(a.case, b.case, "case of {cand:?} before e{e}");
                assert_eq!(
                    a.flow.to_bits(),
                    b.flow.to_bits(),
                    "overlay flow of {cand:?} before e{e}: {} vs {}",
                    a.flow,
                    b.flow
                );
                assert_eq!(a.lower.to_bits(), b.lower.to_bits());
                assert_eq!(a.upper.to_bits(), b.upper.to_bits());
            }
            // Commit: the incremental path keeps the applied journal's
            // mutations and marks its touched set; the reference re-runs
            // a plain insertion.
            let (_, journal) = cached.apply(&g, EdgeId(e), &mut pr).unwrap();
            let touched: Vec<u32> = journal.touched_slot_ids().collect();
            drop(journal);
            cached.cache_mark_dirty(touched);
            reference.insert_edge(&g, EdgeId(e), &mut pr).unwrap();
            assert_eq!(cached, reference, "trees diverged after e{e}");
        }
        let total = cached.flow_cached_total(&g, false);
        assert_eq!(
            total.to_bits(),
            reference.expected_flow(&g, false).to_bits()
        );
    }

    /// The dirty-state regression: mutating a component estimate *without*
    /// marking it leaves the cache stale, and the revalidation the greedy
    /// loop runs after every commit (cached bits == full-traversal bits)
    /// must catch it. This is the safety net that makes every invalidation
    /// bug a loud debug failure instead of a silent wrong answer.
    #[test]
    #[should_panic(expected = "stale cache must be caught")]
    fn unmarked_mutation_fails_the_commit_revalidation() {
        let g = crate::ftree::goldens::figure3_graph();
        let mut pr = exact_provider();
        let mut tree = FTree::new(&g, VertexId(0));
        tree.enable_flow_cache();
        for e in 0..19u32 {
            let (_, journal) = tree.apply(&g, EdgeId(e), &mut pr).unwrap();
            let touched: Vec<u32> = journal.touched_slot_ids().collect();
            drop(journal);
            tree.cache_mark_dirty(touched);
        }
        let _ = tree.flow_cached_total(&g, false);
        // Dirty a bi-component's estimate across rounds without marking it.
        let bi = tree
            .components()
            .find(|c| c.is_bi())
            .map(|c| c.id)
            .expect("figure 3 has bi components");
        let members = match &tree.comp(bi).kind {
            Kind::Bi { local, .. } => local.len(),
            Kind::Mono { .. } => unreachable!(),
        };
        tree.set_bi_estimate(bi, ComponentEstimate::placeholder(members + 1));
        assert_eq!(
            tree.flow_cached_total(&g, false).to_bits(),
            tree.expected_flow(&g, false).to_bits(),
            "stale cache must be caught"
        );
    }
}
