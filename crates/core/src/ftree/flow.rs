//! Expected-flow evaluation over the F-tree, and non-mutating edge probes.
//!
//! Because an articulation vertex separates its component from the rest of
//! the selected subgraph, `Pr[v ↔ Q] = Pr[v ↔ AV | component] · Pr[AV ↔ Q]`
//! with independent factors; flow therefore aggregates in one top-down pass,
//! multiplying component-local reaches along the tree (Theorem 2 + Lemma 1).
//!
//! Probing (`probe_edge`) evaluates the flow a candidate insertion *would*
//! yield, at minimal cost per structural case:
//!
//! * **Case II** (leaf): an `O(depth)` analytic delta — no sampling, no copy;
//! * **Case IIIa** (cycle in a bi component): only that component is
//!   re-estimated; flow is evaluated with the fresh estimate *overriding* the
//!   stored one — no tree mutation;
//! * **Cases IIIb/IV** (structural): the probe clones the tree and inserts.

use flowmax_graph::{EdgeId, ProbabilisticGraph, VertexId};
use flowmax_sampling::{ComponentEstimate, ComponentGraph};

use super::{ComponentId, FTree, InsertCase, Kind};
use crate::error::CoreError;
use crate::estimator::EstimateProvider;

/// How per-vertex reach is read during a flow traversal.
enum ReachView<'a> {
    /// The tree's stored estimates.
    Stored,
    /// Use a replacement estimate for one component (IIIa probes).
    Override {
        cid: ComponentId,
        snapshot: &'a ComponentGraph,
        estimate: &'a ComponentEstimate,
        /// `Some((alpha, upper))`: evaluate the override at its confidence
        /// bound instead of the point estimate.
        bound: Option<(f64, bool)>,
    },
    /// Evaluate one component at its confidence bounds (post-insert bounds
    /// for structural probes).
    Bound {
        cid: ComponentId,
        alpha: f64,
        upper: bool,
    },
}

/// Result of probing a candidate edge without committing it (§6.1 Eq. 5).
#[derive(Debug, Clone, Copy)]
pub struct ProbeOutcome {
    /// Expected flow of the tree *with* the candidate inserted.
    pub flow: f64,
    /// Candidate-specific lower flow bound (`== flow` for analytic probes).
    pub lower: f64,
    /// Candidate-specific upper flow bound (`== flow` for analytic probes).
    pub upper: f64,
    /// The structural case the insertion would take.
    pub case: InsertCase,
    /// `cost(e)` of §6.4: edges that had to be sampled to answer the probe.
    pub sampling_cost_edges: usize,
}

/// A probe split into its deterministic part and its deferred estimation —
/// the shape the §6.3 racing engine needs: the structural work (leaf
/// deltas, component snapshots, tree clones) happens **once**, and the
/// probe is then [`score`](SampledProbe::score)d repeatedly as its
/// component estimate grows across race rounds.
#[derive(Debug)]
pub enum ProbePlan {
    /// Fully analytic (leaf) probe: the outcome is already exact.
    Analytic(ProbeOutcome),
    /// The probe needs exactly one component estimate before it can be
    /// scored (boxed: structural plans carry a cloned tree).
    Sampled(Box<SampledProbe>),
}

/// The deferred half of a sampled probe: which component must be estimated,
/// and how to turn an estimate into a flow score.
#[derive(Debug)]
pub struct SampledProbe {
    snapshot: ComponentGraph,
    cost_edges: usize,
    kind: SampledKind,
}

#[derive(Debug)]
enum SampledKind {
    /// Case IIIa: re-estimate one existing bi component; flow is evaluated
    /// on the *original* tree with the estimate overriding the stored one.
    InBi { cid: ComponentId },
    /// Cases IIIb/IV: the probe's tree clone with the candidate inserted
    /// and the new component's estimate still pending.
    Structural {
        tree: FTree,
        cid: ComponentId,
        case: InsertCase,
    },
}

impl SampledProbe {
    /// The component snapshot that must be estimated (candidate edge
    /// included).
    pub fn snapshot(&self) -> &ComponentGraph {
        &self.snapshot
    }

    /// `cost(e)` of §6.4: the number of edges the estimate must sample.
    pub fn sampling_cost_edges(&self) -> usize {
        self.cost_edges
    }

    /// The structural case the insertion would take.
    pub fn case(&self) -> InsertCase {
        match &self.kind {
            SampledKind::InBi { .. } => InsertCase::CycleInBi,
            SampledKind::Structural { case, .. } => *case,
        }
    }

    /// Scores the probe under `estimate`: the flow the tree would have with
    /// the candidate inserted, plus the candidate-specific `1 − α` bounds.
    ///
    /// Callable repeatedly — racing rounds re-score with growing-budget
    /// estimates; only the latest call's estimate is retained. `tree` must
    /// be the tree the plan was created from.
    pub fn score(
        &mut self,
        tree: &FTree,
        graph: &ProbabilisticGraph,
        include_query: bool,
        alpha: f64,
        estimate: ComponentEstimate,
    ) -> ProbeOutcome {
        match &mut self.kind {
            SampledKind::InBi { cid } => {
                let flow = tree.expected_flow_with_override(
                    graph,
                    include_query,
                    *cid,
                    &self.snapshot,
                    &estimate,
                );
                let bound = |upper| {
                    tree.flow_with(
                        graph,
                        include_query,
                        &ReachView::Override {
                            cid: *cid,
                            snapshot: &self.snapshot,
                            estimate: &estimate,
                            bound: Some((alpha, upper)),
                        },
                    )
                };
                let lower = bound(false);
                let upper = bound(true);
                ProbeOutcome {
                    flow,
                    lower,
                    upper,
                    case: InsertCase::CycleInBi,
                    sampling_cost_edges: self.cost_edges,
                }
            }
            SampledKind::Structural {
                tree: clone,
                cid,
                case,
            } => {
                clone.set_bi_estimate(*cid, estimate);
                let flow = clone.expected_flow(graph, include_query);
                let (lower, upper) =
                    clone.flow_bounds_for_component(graph, include_query, *cid, alpha);
                ProbeOutcome {
                    flow,
                    lower,
                    upper,
                    case: *case,
                    sampling_cost_edges: self.cost_edges,
                }
            }
        }
    }
}

/// Captures the single component snapshot a structural probe insertion
/// estimates, returning a placeholder so the estimate can be supplied
/// later.
#[derive(Default)]
struct CaptureProvider {
    snapshot: Option<ComponentGraph>,
}

impl EstimateProvider for CaptureProvider {
    fn estimate(&mut self, snapshot: &ComponentGraph) -> ComponentEstimate {
        assert!(
            self.snapshot.is_none(),
            "a structural probe estimates exactly one component"
        );
        self.snapshot = Some(snapshot.clone());
        ComponentEstimate::placeholder(snapshot.vertex_count())
    }
}

impl FTree {
    /// The expected information flow `E(flow(Q, G_selected))` under the
    /// tree's current component estimates (Def. 3 / Eq. 2).
    pub fn expected_flow(&self, graph: &ProbabilisticGraph, include_query: bool) -> f64 {
        self.flow_with(graph, include_query, &ReachView::Stored)
    }

    /// Expected flow with one component's estimate replaced (IIIa probes).
    pub(crate) fn expected_flow_with_override(
        &self,
        graph: &ProbabilisticGraph,
        include_query: bool,
        cid: ComponentId,
        snapshot: &ComponentGraph,
        estimate: &ComponentEstimate,
    ) -> f64 {
        self.flow_with(
            graph,
            include_query,
            &ReachView::Override {
                cid,
                snapshot,
                estimate,
                bound: None,
            },
        )
    }

    /// Lower/upper expected-flow bounds obtained by evaluating component
    /// `cid` at its per-vertex confidence bounds (every other component at
    /// its point estimate) — the candidate-specific uncertainty of §6.3.
    pub fn flow_bounds_for_component(
        &self,
        graph: &ProbabilisticGraph,
        include_query: bool,
        cid: ComponentId,
        alpha: f64,
    ) -> (f64, f64) {
        let lo = self.flow_with(
            graph,
            include_query,
            &ReachView::Bound {
                cid,
                alpha,
                upper: false,
            },
        );
        let hi = self.flow_with(
            graph,
            include_query,
            &ReachView::Bound {
                cid,
                alpha,
                upper: true,
            },
        );
        (lo, hi)
    }

    /// Reach of `v` inside component `cid` under a view.
    fn reach_in_view(&self, cid: ComponentId, v: VertexId, view: &ReachView<'_>) -> f64 {
        let comp = self.comp(cid);
        if v == comp.articulation {
            return 1.0;
        }
        match view {
            ReachView::Override {
                cid: ocid,
                snapshot,
                estimate,
                bound,
            } if *ocid == cid => {
                let local = snapshot
                    .vertices()
                    .iter()
                    .position(|&x| x == v)
                    .expect("override snapshot covers the component's vertices");
                match bound {
                    None => estimate.reach(local),
                    Some((alpha, upper)) => {
                        let ci = estimate.interval(local, *alpha);
                        if *upper {
                            ci.upper
                        } else {
                            ci.lower
                        }
                    }
                }
            }
            ReachView::Bound {
                cid: bcid,
                alpha,
                upper,
            } if *bcid == cid => match &comp.kind {
                Kind::Mono { members } => members[&v].reach,
                Kind::Bi {
                    estimate, local, ..
                } => {
                    let ci = estimate.interval(local[&v] as usize, *alpha);
                    if *upper {
                        ci.upper
                    } else {
                        ci.lower
                    }
                }
            },
            _ => self.reach_in(cid, v),
        }
    }

    /// One top-down traversal computing total expected flow under a view.
    fn flow_with(
        &self,
        graph: &ProbabilisticGraph,
        include_query: bool,
        view: &ReachView<'_>,
    ) -> f64 {
        let mut total = if include_query {
            graph.weight(self.query).value()
        } else {
            0.0
        };
        let mut stack: Vec<(ComponentId, f64)> = self.roots.iter().map(|&c| (c, 1.0)).collect();
        while let Some((cid, p_av)) = stack.pop() {
            let comp = self.comp(cid);
            match &comp.kind {
                Kind::Mono { members } => {
                    for &v in members.keys() {
                        let r = self.reach_in_view(cid, v, view);
                        total += r * p_av * graph.weight(v).value();
                    }
                }
                Kind::Bi { local, .. } => {
                    for &v in local.keys() {
                        let r = self.reach_in_view(cid, v, view);
                        total += r * p_av * graph.weight(v).value();
                    }
                }
            }
            for &child in &comp.children {
                let cav = self.comp(child).articulation;
                let r = self.reach_in_view(cid, cav, view);
                stack.push((child, r * p_av));
            }
        }
        total
    }

    /// Evaluates the flow the tree would have after inserting `e`, without
    /// committing the insertion (Eq. 5's probe).
    ///
    /// `base_flow` must be `self.expected_flow(graph, include_query)` — the
    /// caller computes it once per iteration and shares it across probes.
    ///
    /// Returns candidate-specific confidence bounds alongside the point
    /// estimate: exact for analytic (leaf) probes, interval-derived for
    /// probes that sampled a component.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_edge(
        &self,
        graph: &ProbabilisticGraph,
        e: EdgeId,
        base_flow: f64,
        include_query: bool,
        alpha: f64,
        provider: &mut dyn EstimateProvider,
    ) -> Result<ProbeOutcome, CoreError> {
        match self.probe_plan(graph, e, base_flow)? {
            ProbePlan::Analytic(outcome) => Ok(outcome),
            ProbePlan::Sampled(mut sampled) => {
                let estimate = provider.estimate(sampled.snapshot());
                Ok(sampled.score(self, graph, include_query, alpha, estimate))
            }
        }
    }

    /// The deterministic half of [`FTree::probe_edge`]: classifies the
    /// candidate, resolves leaf probes analytically, and packages sampled
    /// probes (IIIa and structural) with the one component snapshot they
    /// need — without drawing a single sample. The racing engine builds one
    /// plan per candidate and re-[`score`](SampledProbe::score)s it as the
    /// candidate's estimate grows across rounds.
    ///
    /// `base_flow` must be `self.expected_flow(graph, include_query)`.
    pub fn probe_plan(
        &self,
        graph: &ProbabilisticGraph,
        e: EdgeId,
        base_flow: f64,
    ) -> Result<ProbePlan, CoreError> {
        if self.selected.contains(e) {
            return Err(CoreError::EdgeAlreadySelected(e));
        }
        let (a, b) = graph.endpoints(e);
        let (a_in, b_in) = (self.contains_vertex(a), self.contains_vertex(b));
        match (a_in, b_in) {
            (false, false) => Err(CoreError::DisconnectedEdge {
                edge: e,
                endpoints: (a, b),
            }),
            (true, false) | (false, true) => {
                let (anchor, leaf) = if a_in { (a, b) } else { (b, a) };
                let p = graph.probability(e).value();
                let delta = graph.weight(leaf).value() * p * self.reach_to_query(anchor);
                let flow = base_flow + delta;
                let case = match self.owner(anchor) {
                    Some(cid) if self.comp(cid).is_bi() => InsertCase::LeafBi,
                    _ => InsertCase::LeafMono,
                };
                Ok(ProbePlan::Analytic(ProbeOutcome {
                    flow,
                    lower: flow,
                    upper: flow,
                    case,
                    sampling_cost_edges: 0,
                }))
            }
            (true, true) => {
                let ca = self.owner(a);
                let cb = self.owner(b);
                if let (Some(x), Some(y)) = (ca, cb) {
                    if x == y && self.comp(x).is_bi() {
                        // IIIa probe: only this component is re-estimated.
                        let Kind::Bi { edges, .. } = &self.comp(x).kind else {
                            unreachable!()
                        };
                        let mut probe_edges = edges.clone();
                        probe_edges.push(e);
                        let av = self.comp(x).articulation;
                        let snapshot = ComponentGraph::build(graph, av, &probe_edges);
                        return Ok(ProbePlan::Sampled(Box::new(SampledProbe {
                            snapshot,
                            cost_edges: probe_edges.len(),
                            kind: SampledKind::InBi { cid: x },
                        })));
                    }
                }
                // Structural probe: clone and insert now, estimate later.
                let mut clone = self.clone();
                let mut capture = CaptureProvider::default();
                let report = clone
                    .insert_edge(graph, e, &mut capture)
                    .expect("probe preconditions were just checked");
                let cid = report
                    .component
                    .expect("cycle insertions always produce a bi component");
                let snapshot = capture
                    .snapshot
                    .expect("cycle insertions estimate their new component");
                Ok(ProbePlan::Sampled(Box::new(SampledProbe {
                    snapshot,
                    cost_edges: report.sampled_edge_count,
                    kind: SampledKind::Structural {
                        tree: clone,
                        cid,
                        case: report.case,
                    },
                })))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{EstimatorConfig, SamplingProvider};
    use flowmax_graph::{
        exact_expected_flow, GraphBuilder, Probability, Weight, DEFAULT_ENUMERATION_CAP,
    };

    fn exact_provider() -> SamplingProvider {
        SamplingProvider::new(EstimatorConfig::exact(), 7)
    }

    /// Q(0)-1 (0.8), 1-2 (0.5), 2-0 (0.4), 2-3 (0.9), weights = id.
    fn graph() -> ProbabilisticGraph {
        let mut b = GraphBuilder::new();
        for w in 0..4 {
            b.add_vertex(Weight::new(w as f64).unwrap());
        }
        b.add_edge(VertexId(0), VertexId(1), Probability::new(0.8).unwrap())
            .unwrap();
        b.add_edge(VertexId(1), VertexId(2), Probability::new(0.5).unwrap())
            .unwrap();
        b.add_edge(VertexId(2), VertexId(0), Probability::new(0.4).unwrap())
            .unwrap();
        b.add_edge(VertexId(2), VertexId(3), Probability::new(0.9).unwrap())
            .unwrap();
        b.build()
    }

    #[test]
    fn flow_matches_exact_enumeration_with_exact_estimator() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        for e in 0..4 {
            t.insert_edge(&g, EdgeId(e), &mut pr).unwrap();
        }
        let ftree_flow = t.expected_flow(&g, false);
        let exact = exact_expected_flow(
            &g,
            t.selected_edges(),
            VertexId(0),
            false,
            DEFAULT_ENUMERATION_CAP,
        )
        .unwrap();
        assert!(
            (ftree_flow - exact).abs() < 1e-9,
            "decomposition must be exact: {ftree_flow} vs {exact}"
        );
    }

    #[test]
    fn include_query_adds_its_weight() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(2));
        let mut pr = exact_provider();
        t.insert_edge(&g, EdgeId(3), &mut pr).unwrap();
        let without = t.expected_flow(&g, false);
        let with = t.expected_flow(&g, true);
        assert!(
            (with - without - 2.0).abs() < 1e-12,
            "W(Q)=2 must be the difference"
        );
    }

    #[test]
    fn leaf_probe_equals_commit() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        t.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        t.insert_edge(&g, EdgeId(1), &mut pr).unwrap();
        let base = t.expected_flow(&g, false);
        let probe = t
            .probe_edge(&g, EdgeId(3), base, false, 0.01, &mut pr)
            .unwrap();
        assert_eq!(probe.case, InsertCase::LeafMono);
        assert_eq!(probe.sampling_cost_edges, 0);
        assert_eq!(probe.lower, probe.flow);
        let mut t2 = t.clone();
        t2.insert_edge(&g, EdgeId(3), &mut pr).unwrap();
        let committed = t2.expected_flow(&g, false);
        assert!((probe.flow - committed).abs() < 1e-12);
    }

    #[test]
    fn structural_probe_equals_commit_with_exact_estimates() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        t.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        t.insert_edge(&g, EdgeId(1), &mut pr).unwrap();
        let base = t.expected_flow(&g, false);
        let probe = t
            .probe_edge(&g, EdgeId(2), base, false, 0.01, &mut pr)
            .unwrap();
        assert_eq!(probe.case, InsertCase::CycleAcross);
        assert!(probe.sampling_cost_edges > 0);
        let mut t2 = t.clone();
        t2.insert_edge(&g, EdgeId(2), &mut pr).unwrap();
        let committed = t2.expected_flow(&g, false);
        assert!((probe.flow - committed).abs() < 1e-12);
        // Probe must not have mutated the original.
        assert!((t.expected_flow(&g, false) - base).abs() < 1e-12);
        assert_eq!(t.edge_count(), 2);
    }

    #[test]
    fn iiia_probe_uses_override_without_mutation() {
        // Square + diagonal: insert square, probe diagonal.
        let mut b = GraphBuilder::new();
        b.add_vertices(4, Weight::ONE);
        let p = Probability::new(0.5).unwrap();
        b.add_edge(VertexId(0), VertexId(1), p).unwrap();
        b.add_edge(VertexId(1), VertexId(2), p).unwrap();
        b.add_edge(VertexId(2), VertexId(3), p).unwrap();
        b.add_edge(VertexId(3), VertexId(0), p).unwrap();
        b.add_edge(VertexId(1), VertexId(3), p).unwrap();
        let g = b.build();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        for e in 0..4 {
            t.insert_edge(&g, EdgeId(e), &mut pr).unwrap();
        }
        let base = t.expected_flow(&g, false);
        let probe = t
            .probe_edge(&g, EdgeId(4), base, false, 0.01, &mut pr)
            .unwrap();
        assert_eq!(probe.case, InsertCase::CycleInBi);
        assert!(probe.flow > base, "diagonal adds paths");
        let mut t2 = t.clone();
        t2.insert_edge(&g, EdgeId(4), &mut pr).unwrap();
        assert!((probe.flow - t2.expected_flow(&g, false)).abs() < 1e-12);
        assert_eq!(t.edge_count(), 4, "probe must not commit");
    }

    #[test]
    fn bounds_bracket_point_estimate_for_sampled_probes() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut mc = SamplingProvider::new(EstimatorConfig::monte_carlo(200), 3);
        t.insert_edge(&g, EdgeId(0), &mut mc).unwrap();
        t.insert_edge(&g, EdgeId(1), &mut mc).unwrap();
        let base = t.expected_flow(&g, false);
        let probe = t
            .probe_edge(&g, EdgeId(2), base, false, 0.01, &mut mc)
            .unwrap();
        assert!(probe.lower <= probe.flow && probe.flow <= probe.upper);
        assert!(
            probe.upper - probe.lower > 0.0,
            "sampled probe must have width"
        );
    }

    #[test]
    fn probe_rejects_bad_edges() {
        let g = graph();
        let mut t = FTree::new(&g, VertexId(0));
        let mut pr = exact_provider();
        t.insert_edge(&g, EdgeId(0), &mut pr).unwrap();
        assert!(matches!(
            t.probe_edge(&g, EdgeId(0), 0.0, false, 0.01, &mut pr),
            Err(CoreError::EdgeAlreadySelected(_))
        ));
        assert!(matches!(
            t.probe_edge(&g, EdgeId(3), 0.0, false, 0.01, &mut pr),
            Err(CoreError::DisconnectedEdge { .. })
        ));
    }

    #[test]
    fn empty_tree_flow_is_query_weight_only() {
        let g = graph();
        let t = FTree::new(&g, VertexId(3));
        assert_eq!(t.expected_flow(&g, false), 0.0);
        assert_eq!(t.expected_flow(&g, true), 3.0);
    }
}
